/// Table I reproduction: overall effectiveness/efficiency of PinSQL vs the
/// Top-SQL baselines (and the Corr-Lag causality heuristic) on a batch of
/// synthetic ADAC-style anomaly cases — plus the SynADAC v2 per-category
/// detection matrix and the detector-family ablation (screen / ewma / holt
/// / holt_winters / ensemble).
///
/// Environment knobs: PINSQL_BENCH_CASES (default 32), PINSQL_BENCH_SEED.
/// `--smoke` shrinks both batches for CI (checks still run, with a
/// proportionally relaxed drift-recall floor).
///
/// Exit code = number of violated hard checks.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "eval/detection_eval.h"
#include "eval/runner.h"

namespace {

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

const pinsql::eval::MethodScores* FindMethod(
    const std::vector<pinsql::eval::MethodScores>& scores,
    const std::string& name) {
  for (const auto& m : scores) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

int g_violations = 0;

void Check(bool ok, const char* what) {
  std::printf("  %s: %s\n", what, ok ? "OK" : "VIOLATED");
  if (!ok) ++g_violations;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  pinsql::eval::EvalOptions options;
  options.num_cases = EnvInt("PINSQL_BENCH_CASES", smoke ? 12 : 32);
  options.seed = static_cast<uint64_t>(EnvInt("PINSQL_BENCH_SEED", 42));
  options.num_threads = 4;

  std::printf(
      "TABLE I: overall results of identifying R-SQLs and H-SQLs\n"
      "(%d synthetic cases; paper reference: PinSQL R-SQL H@1=80.4, "
      "H-SQL H@1=97.6; Top-All R-SQL H@1=33.3, H-SQL H@1=66.1)\n\n",
      options.num_cases);

  const auto scores =
      pinsql::eval::RunOverallEvaluation(options,
                                         pinsql::core::DiagnoserOptions{});

  std::printf("%-8s | %6s %6s %6s %10s | %6s %6s %6s %10s\n", "Method",
              "R-H@1", "R-H@5", "R-MRR", "R-Time", "H-H@1", "H-H@5",
              "H-MRR", "H-Time");
  std::printf("---------+-----------------------------------+----------"
              "-------------------------\n");
  for (const auto& m : scores) {
    std::printf("%-8s | %6.1f %6.1f %6.2f %9.3fs | %6.1f %6.1f %6.2f "
                "%9.3fs\n",
                m.name.c_str(), m.rsql.hits_at_1, m.rsql.hits_at_5,
                m.rsql.mrr, m.mean_time_sec, m.hsql.hits_at_1,
                m.hsql.hits_at_5, m.hsql.mrr, m.mean_time_sec);
  }

  // Shape assertions the paper's conclusions rest on (by method name; the
  // result vector grows as baselines are added).
  const auto* pinsql = FindMethod(scores, "PinSQL");
  const auto* top_all = FindMethod(scores, "Top-All");
  const auto* corr_lag = FindMethod(scores, "Corr-Lag");
  std::printf("\nshape checks:\n");
  if (pinsql == nullptr || top_all == nullptr || corr_lag == nullptr) {
    Check(false, "PinSQL / Top-All / Corr-Lag rows present");
    return g_violations;
  }
  Check(pinsql->rsql.hits_at_1 > top_all->rsql.hits_at_1,
        "PinSQL R-SQL H@1 > Top-All R-SQL H@1");
  // Parity suffices on H-SQLs: the synthetic ground truth labels H-SQLs
  // by true session inflation, and total response time approximates the
  // session by Little's law, so Top-RT is structurally near-optimal here.
  // (The paper's DBA-labeled truth gave PinSQL a large H gap; the R gap
  // above is the reproduction headline.)
  Check(pinsql->hsql.hits_at_1 >= top_all->hsql.hits_at_1,
        "PinSQL H-SQL H@1 >= Top-All H-SQL H@1");
  // The causality heuristic sees the same inputs as PinSQL; structured
  // diagnosis must still win on root causes.
  Check(pinsql->rsql.hits_at_1 > corr_lag->rsql.hits_at_1,
        "PinSQL R-SQL H@1 > Corr-Lag R-SQL H@1");

  // ------------------------------------------------------------------
  // SynADAC v2: per-category detection matrix + detector-family ablation.
  // Every family replays the identical simulated session streams.
  pinsql::eval::DetectionEvalOptions det;
  det.cases_per_category = smoke ? 2 : 4;
  det.seed = options.seed + 17;
  det.num_threads = 4;

  const auto families = pinsql::eval::StandardDetectorFamilies();
  const auto ablation = pinsql::eval::RunDetectionAblation(det, families);

  std::printf("\nDETECTION MATRIX: per-category recall / precision / "
              "median latency (%d cases per category)\n\n",
              det.cases_per_category);
  std::printf("%-18s", "category");
  for (const auto& result : ablation) {
    std::printf(" | %20s", result.family.c_str());
  }
  std::printf("\n");
  for (size_t c = 0; c < det.categories.size(); ++c) {
    std::printf("%-18s",
                pinsql::workload::AnomalyTypeName(det.categories[c]));
    for (const auto& result : ablation) {
      const auto& cat = result.categories[c];
      const size_t trig = cat.detected + cat.false_triggers;
      const double precision =
          trig > 0 ? static_cast<double>(cat.detected) /
                         static_cast<double>(trig)
                   : 1.0;
      std::printf(" | R=%.2f P=%.2f L=%4.0f", cat.recall, precision,
                  cat.median_latency_sec);
    }
    std::printf("\n");
  }
  std::printf("%-18s", "legacy-false-trig");
  for (const auto& result : ablation) {
    std::printf(" | %20zu", result.legacy_false_triggers);
  }
  std::printf("\n%-18s", "legacy-recall");
  for (const auto& result : ablation) {
    std::printf(" | %20.2f", result.LegacyRecall());
  }
  std::printf("\n%-18s", "extended-recall");
  for (const auto& result : ablation) {
    std::printf(" | %20.2f", result.ExtendedRecall());
  }
  std::printf("\n");

  const auto* screen_result = &ablation.front();
  const auto* ensemble_result = &ablation.back();
  const auto* screen_drift =
      screen_result->Find(pinsql::workload::AnomalyType::kSlowDrift);
  const auto* ensemble_drift =
      ensemble_result->Find(pinsql::workload::AnomalyType::kSlowDrift);

  std::printf("\ndetection checks:\n");
  if (screen_drift == nullptr || ensemble_drift == nullptr) {
    Check(false, "slow_drift category present in ablation");
    return g_violations;
  }
  // The headline claim: the forecasting ensemble catches the hours-scale
  // creep the per-sample robust-z screen absorbs into its baseline...
  const double drift_floor = smoke ? 0.5 : 0.8;
  std::printf("  (ensemble slow-drift recall %.2f, floor %.2f; screen "
              "slow-drift recall %.2f)\n",
              ensemble_drift->recall, drift_floor, screen_drift->recall);
  Check(ensemble_drift->recall >= drift_floor,
        "ensemble slow-drift recall >= floor");
  Check(ensemble_drift->recall > screen_drift->recall,
        "ensemble slow-drift recall > screen-only");
  // ...without paying for it in false pages on the paper's categories.
  std::printf("  (legacy false triggers: ensemble %zu, screen %zu)\n",
              ensemble_result->legacy_false_triggers,
              screen_result->legacy_false_triggers);
  Check(ensemble_result->legacy_false_triggers <=
            screen_result->legacy_false_triggers,
        "ensemble legacy false triggers <= screen-only");
  // The ensemble never detects less than the screen alone anywhere
  // (first-to-confirm is a union of confirmation paths).
  Check(ensemble_result->LegacyRecall() >= screen_result->LegacyRecall(),
        "ensemble legacy recall >= screen-only");

  if (g_violations > 0) {
    std::printf("\n%d hard check(s) VIOLATED\n", g_violations);
  }
  return g_violations;
}
