/// Table I reproduction: overall effectiveness/efficiency of PinSQL vs the
/// Top-SQL baselines on a batch of synthetic ADAC-style anomaly cases
/// (mixed across the paper's root-cause categories).
///
/// Environment knobs: PINSQL_BENCH_CASES (default 32), PINSQL_BENCH_SEED.

#include <cstdio>
#include <cstdlib>

#include "eval/runner.h"

namespace {

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

}  // namespace

int main() {
  pinsql::eval::EvalOptions options;
  options.num_cases = EnvInt("PINSQL_BENCH_CASES", 32);
  options.seed = static_cast<uint64_t>(EnvInt("PINSQL_BENCH_SEED", 42));

  std::printf(
      "TABLE I: overall results of identifying R-SQLs and H-SQLs\n"
      "(%d synthetic cases; paper reference: PinSQL R-SQL H@1=80.4, "
      "H-SQL H@1=97.6; Top-All R-SQL H@1=33.3, H-SQL H@1=66.1)\n\n",
      options.num_cases);

  const auto scores =
      pinsql::eval::RunOverallEvaluation(options,
                                         pinsql::core::DiagnoserOptions{});

  std::printf("%-8s | %6s %6s %6s %10s | %6s %6s %6s %10s\n", "Method",
              "R-H@1", "R-H@5", "R-MRR", "R-Time", "H-H@1", "H-H@5",
              "H-MRR", "H-Time");
  std::printf("---------+-----------------------------------+----------"
              "-------------------------\n");
  for (const auto& m : scores) {
    std::printf("%-8s | %6.1f %6.1f %6.2f %9.3fs | %6.1f %6.1f %6.2f "
                "%9.3fs\n",
                m.name.c_str(), m.rsql.hits_at_1, m.rsql.hits_at_5,
                m.rsql.mrr, m.mean_time_sec, m.hsql.hits_at_1,
                m.hsql.hits_at_5, m.hsql.mrr, m.mean_time_sec);
  }

  // Shape assertions the paper's conclusions rest on.
  const auto& pinsql = scores[0];
  const auto& top_all = scores[4];
  std::printf("\nshape checks:\n");
  std::printf("  PinSQL R-SQL H@1 (%.1f) > Top-All R-SQL H@1 (%.1f): %s\n",
              pinsql.rsql.hits_at_1, top_all.rsql.hits_at_1,
              pinsql.rsql.hits_at_1 > top_all.rsql.hits_at_1 ? "OK"
                                                             : "VIOLATED");
  // Parity suffices on H-SQLs: the synthetic ground truth labels H-SQLs
  // by true session inflation, and total response time approximates the
  // session by Little's law, so Top-RT is structurally near-optimal here.
  // (The paper's DBA-labeled truth gave PinSQL a large H gap; the R gap
  // above is the reproduction headline.)
  std::printf("  PinSQL H-SQL H@1 (%.1f) >= Top-All H-SQL H@1 (%.1f): %s\n",
              pinsql.hsql.hits_at_1, top_all.hsql.hits_at_1,
              pinsql.hsql.hits_at_1 >= top_all.hsql.hits_at_1 ? "OK"
                                                              : "VIOLATED");
  return 0;
}
