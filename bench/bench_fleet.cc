/// Fleet-scale online diagnosis: hundreds to a thousand simulated
/// instances replayed behind one FleetService. Sweeps the fleet size and
/// reports ingest + detection throughput, trigger counts and detection
/// latency percentiles, then hard-checks the headline fleet guarantees at
/// the largest scale:
///
///   - byte-identical FleetResult fingerprints across {ingest shards 1 v 4,
///     diagnoser pool 1 v 8} and across repeated runs;
///   - a storm collapses into prioritized triage batches with zero
///     confirmed-trigger loss and concurrency never above the pool bound;
///   - the noisy-neighbor correlator flags the injected host.
///
/// Environment knobs: PINSQL_BENCH_FLEET_INSTANCES (largest sweep point,
/// default 1000), PINSQL_BENCH_FLEET_DURATION (simulated seconds, default
/// 420), PINSQL_BENCH_SEED. `--smoke` shrinks everything for CI.
/// Exit code = number of violated shape checks.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "eval/fleet_cases.h"
#include "fleet/fleet_replay.h"

namespace {

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

pinsql::fleet::FleetReplayOptions ReplayOptions() {
  pinsql::fleet::FleetReplayOptions options;
  options.fleet.ingestor.num_shards = 4;
  options.fleet.ingestor.window_sec = 900;
  options.fleet.scheduler.cooldown_sec = 120;
  options.fleet.scheduler.top_k = 3;
  options.fleet.pool.pool_size = 8;
  options.fleet.advance_workers = 4;
  options.num_ingest_workers = 2;
  return options;
}

int64_t Percentile(std::vector<int64_t> values, double p) {
  if (values.empty()) return -1;
  std::sort(values.begin(), values.end());
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(idx, values.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int max_instances =
      EnvInt("PINSQL_BENCH_FLEET_INSTANCES", smoke ? 30 : 1000);
  const int duration =
      EnvInt("PINSQL_BENCH_FLEET_DURATION", smoke ? 240 : 420);
  const uint64_t seed = static_cast<uint64_t>(EnvInt("PINSQL_BENCH_SEED", 7));

  std::vector<int> sweep;
  for (int n : {50, 200, 1000}) {
    if (n < max_instances) sweep.push_back(n);
  }
  sweep.push_back(max_instances);

  std::printf("Fleet-scale online diagnosis: sharded ingest -> per-instance "
              "detectors -> cross-instance correlator -> bounded diagnoser "
              "pool\n(%d simulated seconds per instance, seed %llu)\n\n",
              duration, static_cast<unsigned long long>(seed));
  std::printf("%9s | %9s %10s | %8s %8s | %6s %6s | %7s %7s | %6s\n",
              "instances", "records", "rec/s", "inst-s/s", "wall(s)",
              "trig", "diag", "lat-p50", "lat-p99", "pool^");
  std::printf("----------+----------------------+-------------------+"
              "--------------+-----------------+-------\n");

  for (int n : sweep) {
    pinsql::eval::FleetCaseOptions case_options;
    case_options.num_instances = static_cast<size_t>(n);
    case_options.seed = seed;
    case_options.duration_sec = duration;
    const auto fleet_case = pinsql::eval::GenerateFleetCase(case_options);
    size_t total_records = 0;
    for (const auto& log : fleet_case.logs) total_records += log.records.size();

    const auto t0 = std::chrono::steady_clock::now();
    const auto result = pinsql::fleet::RunFleetReplay(
        fleet_case.specs, fleet_case.logs, fleet_case.catalog,
        ReplayOptions());
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    std::vector<int64_t> latencies;
    for (const auto& [id, values] : result.latencies) {
      latencies.insert(latencies.end(), values.begin(), values.end());
    }
    const double instance_seconds = static_cast<double>(n) * duration;
    std::printf("%9d | %9zu %10.0f | %8.0f %8.2f | %6zu %6zu | %7lld %7lld "
                "| %6zu\n",
                n, total_records,
                static_cast<double>(total_records) / wall,
                instance_seconds / wall, wall, result.stats.triggers_accepted,
                result.stats.diagnoses_ok + result.stats.diagnoses_failed,
                static_cast<long long>(Percentile(latencies, 0.5)),
                static_cast<long long>(Percentile(latencies, 0.99)),
                result.stats.pool.max_observed_concurrency);
  }

  // --- Shape checks at the largest scale ---------------------------------
  std::printf("\nshape checks (%d instances):\n", max_instances);
  pinsql::eval::FleetCaseOptions case_options;
  case_options.num_instances = static_cast<size_t>(max_instances);
  case_options.seed = seed;
  case_options.duration_sec = duration;
  const auto fleet_case = pinsql::eval::GenerateFleetCase(case_options);

  const auto base_options = ReplayOptions();
  const auto base = pinsql::fleet::RunFleetReplay(
      fleet_case.specs, fleet_case.logs, fleet_case.catalog, base_options);
  const std::string fingerprint = base.Fingerprint();

  auto one_shard = base_options;
  one_shard.fleet.ingestor.num_shards = 1;
  auto serial_pool = base_options;
  serial_pool.fleet.pool.pool_size = 1;
  const bool shards_identical =
      pinsql::fleet::RunFleetReplay(fleet_case.specs, fleet_case.logs,
                                    fleet_case.catalog, one_shard)
          .Fingerprint() == fingerprint;
  const bool pool_identical =
      pinsql::fleet::RunFleetReplay(fleet_case.specs, fleet_case.logs,
                                    fleet_case.catalog, serial_pool)
          .Fingerprint() == fingerprint;
  const bool repeat_identical =
      pinsql::fleet::RunFleetReplay(fleet_case.specs, fleet_case.logs,
                                    fleet_case.catalog, base_options)
          .Fingerprint() == fingerprint;

  size_t deferred = 0;
  for (const auto& outcome : base.outcomes) {
    if (outcome.disposition ==
        pinsql::fleet::FleetOutcome::Disposition::kStormDeferred) {
      ++deferred;
    }
  }
  const bool no_loss =
      base.outcomes.size() == base.stats.triggers_accepted &&
      deferred == base.stats.storm_deferred;
  const bool bounded =
      base.stats.pool.max_observed_concurrency <=
      base_options.fleet.pool.pool_size;
  const bool triggered = base.stats.triggers_accepted > 0 &&
                         base.stats.diagnoses_ok > 0;
  bool neighbor_flagged = false;
  for (const auto& verdict : base.neighbors) {
    neighbor_flagged |= verdict.host_id == fleet_case.noisy_host_id;
  }

  // Storm run: a fleet-wide anomaly burst must collapse into triage
  // batches instead of flooding the pool, still with zero loss.
  auto storm_case_options = case_options;
  storm_case_options.num_instances =
      std::min<size_t>(case_options.num_instances, 200);
  storm_case_options.inject_noisy_host = false;
  storm_case_options.anomaly_fraction = 0.0;
  storm_case_options.inject_storm = true;
  storm_case_options.storm_fraction = 0.7;
  storm_case_options.storm_onset_offset_sec = duration / 2;
  storm_case_options.storm_duration_sec = std::min(60, duration / 4);
  const auto storm_case = pinsql::eval::GenerateFleetCase(storm_case_options);
  auto storm_options = base_options;
  storm_options.fleet.pool.pool_size = 4;
  storm_options.fleet.correlator.storm_min_instances = 8;
  storm_options.fleet.correlator.storm_window_sec = 20;
  storm_options.fleet.correlator.storm_triage_k = 4;
  const auto storm = pinsql::fleet::RunFleetReplay(
      storm_case.specs, storm_case.logs, storm_case.catalog, storm_options);
  const bool storm_detected = storm.stats.storms_detected > 0;
  const bool storm_collapsed = storm.stats.storm_deferred > 0;
  const bool storm_no_loss =
      storm.outcomes.size() == storm.stats.triggers_accepted;
  const bool storm_bounded = storm.stats.pool.max_observed_concurrency <=
                             storm_options.fleet.pool.pool_size;

  const struct {
    const char* name;
    bool ok;
  } checks[] = {
      {"fleet produced triggers and diagnoses", triggered},
      {"fingerprint identical at 1 vs 4 ingest shards", shards_identical},
      {"fingerprint identical at pool size 1 vs 8", pool_identical},
      {"fingerprint identical across repeated runs", repeat_identical},
      {"every accepted trigger accounted (zero loss)", no_loss},
      {"concurrent diagnoses never exceeded the pool bound", bounded},
      {"noisy-neighbor host flagged", neighbor_flagged},
      {"anomaly storm detected", storm_detected},
      {"storm collapsed into triage (deferrals > 0)", storm_collapsed},
      {"storm kept zero trigger loss", storm_no_loss},
      {"storm kept the pool bound", storm_bounded},
  };
  int violations = 0;
  for (const auto& check : checks) {
    std::printf("  %-52s %s\n", check.name, check.ok ? "OK" : "VIOLATED");
    violations += check.ok ? 0 : 1;
  }
  return violations;
}
