/// Fig. 6 reproduction: ablation study on identifying R-SQLs (a) and
/// H-SQLs (b). Each variant disables exactly one PinSQL component; every
/// variant runs against the same generated cases.
///
/// Paper reference: every ablated variant scores at or below full PinSQL
/// in H@1; removing the session estimator costs ~31.5 points on H-SQLs.
///
/// Environment knobs: PINSQL_BENCH_CASES (default 24), PINSQL_BENCH_SEED.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "eval/runner.h"

namespace {

using pinsql::core::DiagnoserOptions;
using pinsql::core::SessionEstimatorMode;

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

struct Variant {
  const char* name;
  DiagnoserOptions options;
};

std::vector<Variant> MakeVariants() {
  std::vector<Variant> variants;
  variants.push_back({"PinSQL (full)", {}});
  {
    Variant v{"w/o Estimate Session", {}};
    v.options.estimator.mode = SessionEstimatorMode::kResponseTime;
    variants.push_back(v);
  }
  {
    Variant v{"w/o Trend-level Score", {}};
    v.options.hsql.use_trend = false;
    variants.push_back(v);
  }
  {
    Variant v{"w/o Scale-level Score", {}};
    v.options.hsql.use_scale = false;
    variants.push_back(v);
  }
  {
    Variant v{"w/o Scale-trend-level Score", {}};
    v.options.hsql.use_scale_trend = false;
    variants.push_back(v);
  }
  {
    Variant v{"w/o Weighted Final Score", {}};
    v.options.hsql.use_weighted_final = false;
    variants.push_back(v);
  }
  {
    Variant v{"w/o Cumulative Threshold", {}};
    v.options.rsql.use_cumulative_threshold = false;
    variants.push_back(v);
  }
  {
    Variant v{"w/o History Trend Verification", {}};
    v.options.rsql.use_history_verification = false;
    variants.push_back(v);
  }
  {
    Variant v{"w/o Direct Cause SQL Ranking", {}};
    v.options.rsql.use_hsql_cluster_ranking = false;
    variants.push_back(v);
  }
  {
    // Extra ablation beyond the paper (DESIGN.md §4.4): drop the metric
    // helper nodes from the clustering graph.
    Variant v{"w/o Metric Helper Nodes", {}};
    v.options.rsql.use_metric_helper_nodes = false;
    variants.push_back(v);
  }
  return variants;
}

}  // namespace

int main() {
  pinsql::eval::EvalOptions eval_options;
  eval_options.num_cases = EnvInt("PINSQL_BENCH_CASES", 24);
  eval_options.seed = static_cast<uint64_t>(EnvInt("PINSQL_BENCH_SEED", 42));

  const std::vector<Variant> variants = MakeVariants();
  std::vector<pinsql::eval::MethodAccumulator> accumulators;
  accumulators.reserve(variants.size());
  for (const Variant& v : variants) {
    accumulators.emplace_back(v.name);
  }

  pinsql::eval::ForEachCase(
      eval_options,
      [&](size_t index, const pinsql::eval::AnomalyCaseData& data) {
        (void)index;
        const pinsql::core::DiagnosisInput input =
            pinsql::eval::MakeDiagnosisInput(data);
        for (size_t v = 0; v < variants.size(); ++v) {
          const pinsql::core::DiagnosisResult result =
              pinsql::core::Diagnose(input, variants[v].options).value();
          accumulators[v].AddCase(
              result.rsql.ranking,
              result.TopHsql(result.hsql_ranking.size()), data,
              result.total_seconds);
        }
      });

  std::printf("FIG 6: ablation on identifying R-SQLs (a) and H-SQLs (b)\n"
              "(%d cases; paper: every ablation <= full PinSQL in H@1)\n\n",
              eval_options.num_cases);
  std::printf("%-32s | %6s %6s %6s | %6s %6s %6s\n", "Variant", "R-H@1",
              "R-H@5", "R-MRR", "H-H@1", "H-H@5", "H-MRR");
  std::printf("---------------------------------+--------------------"
              "--+----------------------\n");
  double full_r = 0.0;
  double full_h = 0.0;
  bool shapes_ok = true;
  for (size_t v = 0; v < variants.size(); ++v) {
    const pinsql::eval::MethodScores s = accumulators[v].Summary();
    std::printf("%-32s | %6.1f %6.1f %6.2f | %6.1f %6.1f %6.2f\n",
                s.name.c_str(), s.rsql.hits_at_1, s.rsql.hits_at_5,
                s.rsql.mrr, s.hsql.hits_at_1, s.hsql.hits_at_5, s.hsql.mrr);
    if (v == 0) {
      full_r = s.rsql.hits_at_1;
      full_h = s.hsql.hits_at_1;
    } else if (s.rsql.hits_at_1 > full_r + 1e-9 &&
               s.hsql.hits_at_1 > full_h + 1e-9) {
      shapes_ok = false;
    }
  }
  std::printf("\nshape check: no ablation beats full PinSQL on both "
              "metrics simultaneously: %s\n",
              shapes_ok ? "OK" : "VIOLATED");
  return 0;
}
