/// Online end-to-end: the continuous diagnosis service replayed over
/// recorded streams. Each case feeds a generated anomaly day through
/// StreamIngestor -> OnlineAnomalyDetector -> DiagnosisScheduler ->
/// RepairSupervisor and scores the whole loop: trigger recall/precision
/// against the injected ground truth, detection latency, diagnosis
/// quality, and end-to-end time-to-repair.
///
/// Headline properties: recall >= 0.9 with zero duplicate triggers per
/// anomaly; median detection latency <= 5 simulated seconds; replay is
/// bit-deterministic across runs, ingest-thread counts and diagnoser
/// thread counts; a severity-0 action-fault injector is a no-op through
/// the online path; and ingest throughput scales from 1 to 4 producer
/// threads (hard-checked only when the host has >= 4 cores).
///
/// Environment knobs: PINSQL_BENCH_CASES (default 6), PINSQL_BENCH_SEED,
/// PINSQL_BENCH_THREADS (diagnoser threads), PINSQL_BENCH_INGEST_RECORDS
/// (per producer thread in the throughput sweep). `--smoke` shrinks
/// everything for CI.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "detect/forecast.h"
#include "eval/online_e2e.h"

namespace {

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  pinsql::eval::OnlineE2EOptions options;
  options.num_cases = EnvInt("PINSQL_BENCH_CASES", smoke ? 3 : 6);
  options.seed = static_cast<uint64_t>(EnvInt("PINSQL_BENCH_SEED", 7));
  options.replay.service.scheduler.diagnoser.num_threads =
      EnvInt("PINSQL_BENCH_THREADS", 2);
  options.replay.num_ingest_threads = 1;

  std::printf(
      "Online E2E: streaming ingest -> online trigger -> scheduled "
      "diagnosis -> supervised repair\n(%d replayed cases, %d diagnoser "
      "threads)\n\n",
      options.num_cases,
      options.replay.service.scheduler.diagnoser.num_threads);

  const auto summary = pinsql::eval::RunOnlineE2E(options);

  std::printf("%4s | %8s %7s %7s %7s | %6s %7s | %8s\n", "case", "detected",
              "lat(s)", "true", "false", "diag", "rsql-ok", "TTR(s)");
  std::printf("-----+------------------------------------+----------------+"
              "---------\n");
  for (size_t i = 0; i < summary.outcomes.size(); ++i) {
    const auto& out = summary.outcomes[i];
    char lat[24], ttr[24];
    if (out.detection_latency_sec >= 0) {
      std::snprintf(lat, sizeof(lat), "%7lld",
                    static_cast<long long>(out.detection_latency_sec));
    } else {
      std::snprintf(lat, sizeof(lat), "%7s", "-");
    }
    if (out.ttr_sec >= 0.0) {
      std::snprintf(ttr, sizeof(ttr), "%8.1f", out.ttr_sec);
    } else {
      std::snprintf(ttr, sizeof(ttr), "%8s", "-");
    }
    std::printf("%4zu | %8s %s %7zu %7zu | %6s %7s | %s\n", i,
                out.detected ? "yes" : "NO", lat, out.true_triggers,
                out.false_triggers, out.diagnosed ? "yes" : "NO",
                out.rsql_correct ? "yes" : "no", ttr);
  }
  std::printf("\nrecall %.2f  precision %.2f  duplicate triggers %zu  "
              "median latency %.1fs  mean TTR %.1fs\n\n",
              summary.recall, summary.precision, summary.duplicate_triggers,
              summary.median_detection_latency_sec, summary.mean_ttr_sec);

  // --- Replay determinism: same log, repeated / reshaped runs -----------
  pinsql::eval::OnlineE2EOptions det = options;
  det.num_cases = 1;
  const auto base = pinsql::eval::RunOnlineCase(det, 0);
  const auto repeat = pinsql::eval::RunOnlineCase(det, 0);
  pinsql::eval::OnlineE2EOptions det4 = det;
  det4.replay.num_ingest_threads = 4;
  const auto ingest4 = pinsql::eval::RunOnlineCase(det4, 0);
  pinsql::eval::OnlineE2EOptions detd4 = det;
  detd4.replay.service.scheduler.diagnoser.num_threads = 4;
  const auto diag4 = pinsql::eval::RunOnlineCase(detd4, 0);

  const bool repeat_identical = base.fingerprint == repeat.fingerprint;
  const bool ingest_identical = base.fingerprint == ingest4.fingerprint;
  const bool diag_identical = base.fingerprint == diag4.fingerprint;

  // --- Severity-0 action faults are invisible ---------------------------
  pinsql::eval::OnlineE2EOptions no_hook = det;
  no_hook.use_fault_hook = false;
  const auto hook_free = pinsql::eval::RunOnlineCase(no_hook, 0);
  const bool sev0_noop = base.fingerprint == hook_free.fingerprint;

  // --- Forecasting ensemble through the full online loop ----------------
  // The screen+forecaster ensemble must not regress the legacy pipeline's
  // recall on the standard cases, and its replays must stay bit-identical
  // across ingest-thread counts (the forecaster state is part of the
  // deterministic core, not a side channel).
  pinsql::eval::OnlineE2EOptions ens = options;
  ens.replay.service.detector.forecasters =
      pinsql::detect::DefaultEnsembleForecasters();
  const auto ens_summary = pinsql::eval::RunOnlineE2E(ens);
  std::printf("ensemble (screen + EWMA/Holt forecasters): recall %.2f  "
              "precision %.2f  duplicate triggers %zu\n\n",
              ens_summary.recall, ens_summary.precision,
              ens_summary.duplicate_triggers);
  pinsql::eval::OnlineE2EOptions ens_det = ens;
  ens_det.num_cases = 1;
  const auto ens_base = pinsql::eval::RunOnlineCase(ens_det, 0);
  pinsql::eval::OnlineE2EOptions ens_det4 = ens_det;
  ens_det4.replay.num_ingest_threads = 4;
  const auto ens_ingest4 = pinsql::eval::RunOnlineCase(ens_det4, 0);
  const bool ens_ingest_identical =
      ens_base.fingerprint == ens_ingest4.fingerprint;
  const bool ens_recall_ok = ens_summary.recall >= summary.recall;
  const bool ens_dup_ok = ens_summary.duplicate_triggers == 0;

  // --- Ingest throughput sweep ------------------------------------------
  const size_t per_thread = static_cast<size_t>(
      EnvInt("PINSQL_BENCH_INGEST_RECORDS", smoke ? 50'000 : 400'000));
  std::printf("ingest throughput (%zu records per producer):\n", per_thread);
  double rate1 = 0.0, rate4 = 0.0;
  for (int threads : {0, 1, 2, 4, 8}) {
    const auto point = pinsql::eval::RunIngestThroughput(threads, per_thread);
    if (point.threads == 0) {
      std::printf("  coop 1-core: %9.0f rec/s  (%.3fs, %zu backpressure "
                  "rejections)\n",
                  point.records_per_sec, point.seconds, point.dropped);
    } else {
      std::printf("  %d thread%s  : %9.0f rec/s  (%.3fs, %zu backpressure "
                  "rejections)\n",
                  point.threads, point.threads == 1 ? " " : "s",
                  point.records_per_sec, point.seconds, point.dropped);
    }
    if (threads == 1) rate1 = point.records_per_sec;
    if (threads == 4) rate4 = point.records_per_sec;
  }
  const unsigned cores = std::thread::hardware_concurrency();
  const bool scaling_ok = rate4 > rate1;
  const bool scaling_hard = cores >= 4;

  std::printf("\nshape checks:\n");
  const bool recall_ok = summary.recall >= 0.9;
  std::printf("  trigger recall >= 0.9 (%.2f): %s\n", summary.recall,
              recall_ok ? "OK" : "VIOLATED");
  const bool dup_ok = summary.duplicate_triggers == 0;
  std::printf("  zero duplicate triggers per anomaly (%zu): %s\n",
              summary.duplicate_triggers, dup_ok ? "OK" : "VIOLATED");
  const bool latency_ok = summary.median_detection_latency_sec >= 0.0 &&
                          summary.median_detection_latency_sec <= 5.0;
  std::printf("  median detection latency <= 5s (%.1fs): %s\n",
              summary.median_detection_latency_sec,
              latency_ok ? "OK" : "VIOLATED");
  const bool repaired_ok = summary.mean_ttr_sec >= 0.0;
  std::printf("  closed loop reached a supervised repair (mean TTR %.1fs): "
              "%s\n",
              summary.mean_ttr_sec, repaired_ok ? "OK" : "VIOLATED");
  std::printf("  replay bit-identical across repeated runs: %s\n",
              repeat_identical ? "OK" : "VIOLATED");
  std::printf("  replay bit-identical at 1 vs 4 ingest threads: %s\n",
              ingest_identical ? "OK" : "VIOLATED");
  std::printf("  replay bit-identical at 1 vs 4 diagnoser threads: %s\n",
              diag_identical ? "OK" : "VIOLATED");
  std::printf("  severity-0 action-fault injector is a no-op: %s\n",
              sev0_noop ? "OK" : "VIOLATED");
  std::printf("  ensemble recall >= legacy recall (%.2f vs %.2f): %s\n",
              ens_summary.recall, summary.recall,
              ens_recall_ok ? "OK" : "VIOLATED");
  std::printf("  ensemble zero duplicate triggers (%zu): %s\n",
              ens_summary.duplicate_triggers, ens_dup_ok ? "OK" : "VIOLATED");
  std::printf("  ensemble replay bit-identical at 1 vs 4 ingest threads: "
              "%s\n",
              ens_ingest_identical ? "OK" : "VIOLATED");
  if (scaling_hard) {
    std::printf("  ingest throughput scales 1 -> 4 threads: %s\n",
                scaling_ok ? "OK" : "VIOLATED");
  } else {
    std::printf("  ingest throughput scales 1 -> 4 threads: %s (only %u "
                "core%s available; not counted)\n",
                scaling_ok ? "OK" : "VIOLATED", cores,
                cores == 1 ? "" : "s");
  }

  return (recall_ok ? 0 : 1) + (dup_ok ? 0 : 1) + (latency_ok ? 0 : 1) +
         (repaired_ok ? 0 : 1) + (repeat_identical ? 0 : 1) +
         (ingest_identical ? 0 : 1) + (diag_identical ? 0 : 1) +
         (sev0_noop ? 0 : 1) + (ens_recall_ok ? 0 : 1) + (ens_dup_ok ? 0 : 1) +
         (ens_ingest_identical ? 0 : 1) +
         (scaling_hard && !scaling_ok ? 1 : 0);
}
