/// Table III reproduction: accuracy of the individual active-session
/// estimation. Compares three estimators against the monitor's sampled
/// active session over an anomaly window:
///   - Estimate by RT        (total response time per second / 1000)
///   - Estimate w/o buckets  (whole-second expectation)
///   - Estimate (K=10)       (the paper's bucketed method)
/// Paper reference: Pearson 0.54 / 0.92 / 0.96, MSE decreasing.

#include <cstdio>
#include <cstdlib>

#include "core/session_estimator.h"
#include "eval/case_generator.h"
#include "ts/stats.h"

namespace {

struct Row {
  const char* name;
  pinsql::core::SessionEstimatorOptions options;
};

}  // namespace

int main() {
  using pinsql::core::SessionEstimatorMode;

  // A poor-SQL case gives the session a wide dynamic range, which is what
  // separates the estimators.
  pinsql::eval::CaseGenOptions case_options;
  case_options.type = pinsql::workload::AnomalyType::kPoorSql;
  case_options.seed = 1234;
  const pinsql::eval::AnomalyCaseData data =
      pinsql::eval::GenerateCase(case_options);

  const pinsql::TimeSeries& observed = data.metrics.active_session;
  const int64_t ts = data.window_start_sec;
  const int64_t te = data.window_end_sec;

  Row rows[3] = {{"Estimate By RT", {}},
                 {"Estimate w/o buckets", {}},
                 {"Estimate (K=10)", {}}};
  rows[0].options.mode = SessionEstimatorMode::kResponseTime;
  rows[1].options.mode = SessionEstimatorMode::kNoBuckets;
  rows[2].options.mode = SessionEstimatorMode::kBucketed;
  rows[2].options.num_buckets = 10;

  std::printf("TABLE III: estimated active session vs monitor ground truth\n"
              "(window %llds, %zu log records; paper reference Pearson "
              "0.54 / 0.92 / 0.96)\n\n",
              static_cast<long long>(te - ts), data.logs.size());
  std::printf("%-22s %10s %14s\n", "Method", "Pearson", "MSE");
  std::printf("------------------------------------------------\n");

  double pearson[3] = {0, 0, 0};
  for (int i = 0; i < 3; ++i) {
    const pinsql::core::SessionEstimate est = pinsql::core::EstimateSessions(
        data.logs, observed, ts, te, rows[i].options);
    pearson[i] =
        pinsql::PearsonCorrelation(est.total.values(), observed.values());
    const double mse =
        pinsql::MeanSquaredError(est.total.values(), observed.values());
    std::printf("%-22s %10.3f %14.2f\n", rows[i].name, pearson[i], mse);
  }

  std::printf("\nshape checks:\n");
  std::printf("  bucketed > w/o buckets > by-RT (Pearson): %s\n",
              (pearson[2] >= pearson[1] && pearson[1] > pearson[0])
                  ? "OK"
                  : "VIOLATED");

  // Design-choice ablation (DESIGN.md §4.1): sweep the bucket count K.
  // K=1 equals the no-buckets expectation; returns diminish past ~10.
  std::printf("\nK sweep (bucket-count ablation):\n");
  std::printf("%6s %10s %14s\n", "K", "Pearson", "MSE");
  for (int k : {1, 2, 5, 10, 20, 50}) {
    pinsql::core::SessionEstimatorOptions options;
    options.mode = SessionEstimatorMode::kBucketed;
    options.num_buckets = k;
    const pinsql::core::SessionEstimate est = pinsql::core::EstimateSessions(
        data.logs, observed, ts, te, options);
    std::printf("%6d %10.4f %14.2f\n", k,
                pinsql::PearsonCorrelation(est.total.values(),
                                           observed.values()),
                pinsql::MeanSquaredError(est.total.values(),
                                         observed.values()));
  }
  return 0;
}
