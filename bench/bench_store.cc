/// Durable store microbench: WAL append throughput under each fsync
/// policy, and recovery (full-scan replay) time as a function of WAL
/// length. Runs on a throwaway temp directory; real disks will show the
/// fsync gap far more strongly than CI's tmpfs-backed /tmp.
///
/// Shape checks (hard, exit code = violations): every appended frame is
/// recovered byte-exactly under every policy; a torn tail is truncated on
/// the first scan and the second scan is clean; recovery touches every
/// byte the writer reported. Throughput ordering across fsync policies is
/// printed but not counted — it is hardware-dependent.
///
/// Environment knobs: PINSQL_BENCH_STORE_SECONDS (simulated seconds per
/// policy run, default 20000), PINSQL_BENCH_STORE_BATCH (records per
/// second, default 32). `--smoke` shrinks everything for CI.

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "store/env.h"
#include "store/wal.h"

namespace {

using pinsql::QueryLogRecord;
using pinsql::store::FsyncPolicy;
using pinsql::store::PosixEnv;
using pinsql::store::ScanWal;
using pinsql::store::SegmentFileName;
using pinsql::store::WalFrame;
using pinsql::store::WalOptions;
using pinsql::store::WalPosition;
using pinsql::store::WalScanStats;
using pinsql::store::WalWriter;

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

std::string MakeTempDir() {
  std::string tmpl = "/tmp/pinsql_bench_store_XXXXXX";
  if (mkdtemp(tmpl.data()) == nullptr) {
    std::perror("mkdtemp");
    std::exit(2);
  }
  return tmpl;
}

void RemoveTree(const std::string& dir) {
  auto files = PosixEnv()->ListDir(dir);
  if (files.ok()) {
    for (const auto& name : *files) PosixEnv()->DeleteFile(dir + "/" + name);
  }
  ::rmdir(dir.c_str());
}

double Seconds(std::chrono::steady_clock::time_point from,
               std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

struct AppendRun {
  double seconds = 0;
  uint64_t frames = 0;
  uint64_t bytes = 0;
  uint64_t fsyncs = 0;
};

/// Streams `sim_seconds` seconds of `batch` records + one sample each
/// through a fresh WAL under the given fsync policy.
AppendRun RunAppend(const std::string& dir, FsyncPolicy policy,
                    int sim_seconds, int batch) {
  WalOptions options;
  options.fsync = policy;
  auto writer = WalWriter::Open(PosixEnv(), dir, options, 1);
  if (!writer.ok()) {
    std::fprintf(stderr, "wal open: %s\n", writer.status().ToString().c_str());
    std::exit(2);
  }
  std::vector<QueryLogRecord> records(static_cast<size_t>(batch));
  const auto start = std::chrono::steady_clock::now();
  for (int sec = 0; sec < sim_seconds; ++sec) {
    for (int i = 0; i < batch; ++i) {
      records[static_cast<size_t>(i)].arrival_ms =
          100'000'000LL + sec * 1000 + i;
      records[static_cast<size_t>(i)].sql_id =
          1 + static_cast<uint64_t>((sec * 31 + i) % 64);
      records[static_cast<size_t>(i)].response_ms = 2.5;
      records[static_cast<size_t>(i)].examined_rows = 40;
    }
    (void)(*writer)->AppendRecordBatch(records);
    pinsql::online::PerfSample sample;
    sample.sec = 100'000 + sec;
    sample.active_session = 4.0;
    (void)(*writer)->AppendSample(sample);
  }
  (void)(*writer)->Sync();
  AppendRun run;
  run.seconds = Seconds(start, std::chrono::steady_clock::now());
  run.frames = (*writer)->stats().frames_appended;
  run.bytes = (*writer)->stats().bytes_written;
  run.fsyncs = (*writer)->stats().fsyncs;
  (void)(*writer)->Close();
  return run;
}

struct ScanRun {
  double seconds = 0;
  uint64_t frames = 0;
  uint64_t records = 0;
  WalScanStats stats;
};

ScanRun RunScan(const std::string& dir) {
  ScanRun run;
  const auto start = std::chrono::steady_clock::now();
  const auto status = ScanWal(PosixEnv(), dir, WalOptions(), WalPosition{},
                              [&run](const WalFrame& frame) {
                                ++run.frames;
                                run.records += frame.records.size();
                              },
                              &run.stats);
  run.seconds = Seconds(start, std::chrono::steady_clock::now());
  if (!status.ok()) {
    std::fprintf(stderr, "scan: %s\n", status.ToString().c_str());
    std::exit(2);
  }
  return run;
}

const char* PolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kEveryBatch:
      return "every-batch";
    case FsyncPolicy::kInterval:
      return "interval";
    case FsyncPolicy::kNever:
      return "never";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int sim_seconds =
      EnvInt("PINSQL_BENCH_STORE_SECONDS", smoke ? 1500 : 20'000);
  const int batch = EnvInt("PINSQL_BENCH_STORE_BATCH", 32);

  std::printf("Durable store: WAL append throughput and recovery scan\n");
  std::printf("(%d simulated seconds, %d records/sec, frame = batch+sample)"
              "\n\n",
              sim_seconds, batch);

  // --- Append throughput vs fsync policy ---------------------------------
  std::printf("%12s | %9s %9s %9s | %8s\n", "fsync", "MB/s", "frames/s",
              "fsyncs", "recovered");
  std::printf("-------------+-------------------------------+----------\n");
  bool recovered_ok = true;
  for (FsyncPolicy policy : {FsyncPolicy::kEveryBatch, FsyncPolicy::kInterval,
                             FsyncPolicy::kNever}) {
    const std::string dir = MakeTempDir();
    const AppendRun append = RunAppend(dir, policy, sim_seconds, batch);
    const ScanRun scan = RunScan(dir);
    const bool ok =
        scan.frames == append.frames &&
        scan.records ==
            static_cast<uint64_t>(sim_seconds) * static_cast<uint64_t>(batch) &&
        !scan.stats.seq_gap && scan.stats.frames_corrupt == 0;
    recovered_ok = recovered_ok && ok;
    std::printf("%12s | %9.1f %9.0f %9llu | %8s\n", PolicyName(policy),
                static_cast<double>(append.bytes) / 1e6 / append.seconds,
                static_cast<double>(append.frames) / append.seconds,
                static_cast<unsigned long long>(append.fsyncs),
                ok ? "all" : "LOST");
    RemoveTree(dir);
  }

  // --- Recovery time vs WAL length ---------------------------------------
  std::printf("\n%12s | %10s %10s %12s\n", "wal frames", "scan(ms)",
              "frames/ms", "records");
  std::printf("-------------+---------------------------------\n");
  bool scan_complete_ok = true;
  for (int scale : {1, 4, 16}) {
    const int secs = std::max(1, sim_seconds * scale / 16);
    const std::string dir = MakeTempDir();
    const AppendRun append = RunAppend(dir, FsyncPolicy::kNever, secs, batch);
    const ScanRun scan = RunScan(dir);
    scan_complete_ok = scan_complete_ok && scan.frames == append.frames;
    std::printf("%12llu | %10.2f %10.0f %12llu\n",
                static_cast<unsigned long long>(append.frames),
                scan.seconds * 1e3, scan.frames / (scan.seconds * 1e3),
                static_cast<unsigned long long>(scan.records));
    RemoveTree(dir);
  }

  // --- Torn tail: truncated on first scan, clean on the second -----------
  bool torn_ok = true;
  {
    const std::string dir = MakeTempDir();
    const AppendRun append =
        RunAppend(dir, FsyncPolicy::kNever, std::max(1, sim_seconds / 16),
                  batch);
    {
      std::ofstream f(dir + "/" + SegmentFileName(1),
                      std::ios::binary | std::ios::app);
      f.write("\x99\x00\x00\x00\x01", 5);  // half a frame header
    }
    const ScanRun first = RunScan(dir);
    torn_ok = torn_ok && first.stats.torn_tail_bytes_truncated > 0 &&
              first.frames == append.frames;
    const ScanRun second = RunScan(dir);
    torn_ok = torn_ok && second.stats.frames_corrupt == 0 &&
              second.stats.torn_tail_bytes_truncated == 0 &&
              second.frames == append.frames;
    RemoveTree(dir);
  }

  std::printf("\nshape checks:\n");
  std::printf("  every appended frame recovered under every policy: %s\n",
              recovered_ok ? "OK" : "VIOLATED");
  std::printf("  recovery scan complete at every WAL length: %s\n",
              scan_complete_ok ? "OK" : "VIOLATED");
  std::printf("  torn tail truncated once, clean thereafter: %s\n",
              torn_ok ? "OK" : "VIOLATED");

  return (recovered_ok ? 0 : 1) + (scan_complete_ok ? 0 : 1) +
         (torn_ok ? 0 : 1);
}
