/// Table II reproduction: averaged gains of the Query Optimization action
/// when aimed at PinSQL's R-SQLs vs at "slow SQLs" (the highest mean
/// response time template, as slow-query-log driven tooling would pick).
///
/// For every case the anomaly window is re-simulated with identical
/// arrivals after optimizing the chosen template (cost cut to 10 %), and
/// the template's mean tres / examined_rows before vs after give the gain.
///
/// Paper reference: R-SQLs 92.44 % tres gain / 91.17 % rows gain;
/// slow SQLs 82.59 % / 81.56 % — optimizing the root cause gains ~10
/// points more because slow SQLs are often merely slowed *by* the R-SQL.
///
/// Environment knobs: PINSQL_BENCH_CASES (default 12), PINSQL_BENCH_SEED.

#include <cstdio>
#include <cstdlib>

#include "dbsim/engine.h"
#include "eval/runner.h"
#include "pipeline/stream_aggregator.h"
#include "workload/arrivals.h"

namespace {

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

struct TemplateStats {
  double mean_tres_ms = 0.0;
  double mean_rows = 0.0;
  double executions = 0.0;
};

TemplateStats StatsFor(const pinsql::TemplateMetricsStore& metrics,
                       uint64_t sql_id, int64_t t0, int64_t t1) {
  TemplateStats out;
  const pinsql::TemplateSeries* tpl = metrics.Find(sql_id);
  if (tpl == nullptr) return out;
  out.executions = tpl->execution_count.Slice(t0, t1).Sum();
  if (out.executions <= 0.0) return out;
  out.mean_tres_ms =
      tpl->total_response_ms.Slice(t0, t1).Sum() / out.executions;
  out.mean_rows = tpl->examined_rows.Slice(t0, t1).Sum() / out.executions;
  return out;
}

/// Re-simulates the case's window with identical arrivals but the target
/// template optimized (cost cut to 10 %), and returns the target's
/// after-stats over the anomaly period.
TemplateStats ResimulateOptimized(const pinsql::eval::AnomalyCaseData& data,
                                  const pinsql::eval::CaseGenOptions& gen,
                                  uint64_t target) {
  pinsql::dbsim::Engine engine(gen.sim);
  pinsql::LogStore logs;
  engine.AttachLogStore(&logs);
  engine.SetCostMultiplier(target, 0.1, 0.1, 0.1);
  engine.AddArrivals(pinsql::workload::GenerateArrivals(
      data.workload, data.overrides, data.window_start_sec,
      data.window_end_sec, data.arrival_seed));
  engine.RunToCompletion();
  const auto metrics = pinsql::AggregateWindow(logs, data.window_start_sec,
                                               data.window_end_sec);
  return StatsFor(metrics, target, data.injected_as, data.injected_ae);
}

}  // namespace

int main() {
  pinsql::eval::EvalOptions options;
  options.num_cases = EnvInt("PINSQL_BENCH_CASES", 12);
  options.seed = static_cast<uint64_t>(EnvInt("PINSQL_BENCH_SEED", 42));

  double r_tres_gain = 0.0;
  double r_rows_gain = 0.0;
  int r_count = 0;
  double s_tres_gain = 0.0;
  double s_rows_gain = 0.0;
  int s_count = 0;

  pinsql::eval::ForEachCase(options, [&](size_t index,
                                         const pinsql::eval::AnomalyCaseData&
                                             data) {
    pinsql::eval::CaseGenOptions gen = options.case_options;
    gen.seed = options.seed + static_cast<uint64_t>(index) * 1000003ULL;
    gen.type = data.type;

    const pinsql::core::DiagnosisInput input =
        pinsql::eval::MakeDiagnosisInput(data);
    const pinsql::core::DiagnosisResult result =
        pinsql::core::Diagnose(input, pinsql::core::DiagnoserOptions{})
            .value();
    const auto window = pinsql::AggregateWindow(
        data.logs, data.window_start_sec, data.window_end_sec);

    // Slow-SQL pick: highest mean response time with non-trivial traffic.
    uint64_t slow_pick = 0;
    double slow_mean = 0.0;
    for (const pinsql::TemplateSeries* tpl : window.AllSorted()) {
      const TemplateStats st = StatsFor(window, tpl->sql_id,
                                        data.injected_as, data.injected_ae);
      if (st.executions >= 10.0 && st.mean_tres_ms > slow_mean) {
        slow_mean = st.mean_tres_ms;
        slow_pick = tpl->sql_id;
      }
    }

    auto evaluate = [&](uint64_t target, double* tres_gain,
                        double* rows_gain, int* count) {
      if (target == 0) return;
      const TemplateStats before = StatsFor(
          window, target, data.injected_as, data.injected_ae);
      if (before.executions < 5.0 || before.mean_tres_ms <= 0.0) return;
      const TemplateStats after = ResimulateOptimized(data, gen, target);
      if (after.executions <= 0.0) return;
      *tres_gain += 100.0 * (before.mean_tres_ms - after.mean_tres_ms) /
                    before.mean_tres_ms;
      *rows_gain += 100.0 *
                    (before.mean_rows - after.mean_rows) /
                    std::max(before.mean_rows, 1.0);
      ++*count;
    };

    if (!result.rsql.ranking.empty()) {
      evaluate(result.rsql.ranking[0], &r_tres_gain, &r_rows_gain, &r_count);
    }
    evaluate(slow_pick, &s_tres_gain, &s_rows_gain, &s_count);
  });

  std::printf("TABLE II: averaged gains of query optimization\n"
              "(paper reference: R-SQLs 92.44%%/91.17%%, "
              "slow SQLs 82.59%%/81.56%%)\n\n");
  std::printf("%-12s %12s %12s %18s\n", "Target", "#Optimized",
              "tres Gain", "#examined_rows Gain");
  std::printf("--------------------------------------------------------\n");
  const double rt = r_count > 0 ? r_tres_gain / r_count : 0.0;
  const double rr = r_count > 0 ? r_rows_gain / r_count : 0.0;
  const double st = s_count > 0 ? s_tres_gain / s_count : 0.0;
  const double sr = s_count > 0 ? s_rows_gain / s_count : 0.0;
  std::printf("%-12s %12d %11.2f%% %17.2f%%\n", "R-SQLs", r_count, rt, rr);
  std::printf("%-12s %12d %11.2f%% %17.2f%%\n", "Slow SQLs", s_count, st,
              sr);
  std::printf("\nshape check: optimizing R-SQLs gains more than slow SQLs "
              "(tres %.1f > %.1f): %s\n",
              rt, st, rt > st ? "OK" : "VIOLATED");
  return 0;
}
