/// ChaosADAC: robustness of the diagnosis chain under telemetry fault
/// injection. Replays the Table-I case batch at increasing fault severity
/// (gaps, blackouts, garbage values, log loss/duplication/reordering,
/// history truncation, clock skew) and reports the Hits@k / MRR
/// degradation curve. The headline property is *graceful* degradation:
/// accuracy declines with severity, no case ever crashes the binary, and
/// every degraded run says so in its DataQuality section.
///
/// Environment knobs: PINSQL_BENCH_CASES (default 24), PINSQL_BENCH_SEED,
/// PINSQL_BENCH_THREADS, PINSQL_BENCH_FAULT_SEED.

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "eval/chaos.h"

namespace {

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

}  // namespace

int main() {
  pinsql::eval::ChaosOptions options;
  options.eval.num_cases = EnvInt("PINSQL_BENCH_CASES", 24);
  options.eval.seed = static_cast<uint64_t>(EnvInt("PINSQL_BENCH_SEED", 42));
  options.eval.num_threads = EnvInt("PINSQL_BENCH_THREADS", 4);
  options.plan.seed =
      static_cast<uint64_t>(EnvInt("PINSQL_BENCH_FAULT_SEED", 7));
  options.severities = {0.0, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0};

  std::printf(
      "ChaosADAC: accuracy under telemetry fault injection\n"
      "(%d cases per severity, %d threads; all fault classes enabled)\n\n",
      options.eval.num_cases, options.eval.num_threads);

  const auto curve = pinsql::eval::RunChaosEvaluation(
      options, pinsql::core::DiagnoserOptions{});

  std::printf("%8s | %6s %6s %6s | %6s %6s | %6s %8s %5s | %s\n", "severity",
              "R-H@1", "R-H@5", "R-MRR", "H-H@1", "H-MRR", "fail",
              "degraded", "conf", "injected faults");
  std::printf("---------+----------------------+---------------+------------"
              "-----------+----------------\n");
  for (const auto& p : curve) {
    std::printf("%8.2f | %6.1f %6.1f %6.2f | %6.1f %6.2f | %4zu/%zu %5zu/%zu"
                " %5.2f | %s\n",
                p.severity, p.rsql.hits_at_1, p.rsql.hits_at_5, p.rsql.mrr,
                p.hsql.hits_at_1, p.hsql.mrr, p.failed, p.cases, p.degraded,
                p.cases, p.mean_confidence, p.injected.ToString().c_str());
  }

  // Shape checks: the curve should start at the clean score and decline
  // (roughly) monotonically. Small non-monotonic wobbles between adjacent
  // severities are expected at batch sizes this small; the checks bound
  // the wobble instead of demanding strict order.
  std::printf("\nshape checks:\n");
  const auto& clean = curve.front();
  const auto& worst = curve.back();
  std::printf("  severity 0 injected nothing: %s\n",
              clean.injected.total() == 0 ? "OK" : "VIOLATED");
  // Generated cases can legitimately carry degradation notes at severity 0
  // (detection can fire early enough that the delta_s lookback precedes
  // the available metrics), so only failures are forbidden clean.
  std::printf("  severity 0 had no failed cases: %s\n",
              clean.failed == 0 ? "OK" : "VIOLATED");
  std::printf("  worst severity degraded or failed every case: %s\n",
              worst.degraded + worst.failed == worst.cases ? "OK"
                                                          : "VIOLATED");
  std::printf("  R-SQL H@1 declines from clean to worst (%.1f -> %.1f): %s\n",
              clean.rsql.hits_at_1, worst.rsql.hits_at_1,
              worst.rsql.hits_at_1 <= clean.rsql.hits_at_1 ? "OK"
                                                           : "VIOLATED");
  bool rough_monotone = true;
  double running_max = curve.front().rsql.hits_at_1;
  for (size_t i = 1; i < curve.size(); ++i) {
    // "Roughly monotone decline" = no point sets a new high as severity
    // grows (two-case slack). Comparing against the running maximum rather
    // than the immediate predecessor keeps a single-case noisy dip from
    // flagging its neighbour's recovery as a rise — at batch sizes this
    // small the per-point binomial noise is ~1-2 cases.
    const double slack =
        curve[i].cases == 0
            ? 0.0
            : 200.0 / static_cast<double>(curve[i].cases);
    if (curve[i].rsql.hits_at_1 > running_max + slack) {
      rough_monotone = false;
    }
    running_max = std::max(running_max, curve[i].rsql.hits_at_1);
  }
  std::printf("  R-SQL H@1 curve roughly monotone: %s\n",
              rough_monotone ? "OK" : "VIOLATED");
  bool confidence_monotone = true;
  for (size_t i = 1; i < curve.size(); ++i) {
    if (curve[i].mean_confidence > curve[i - 1].mean_confidence + 0.05) {
      confidence_monotone = false;
    }
  }
  std::printf("  mean confidence declines with severity: %s\n",
              confidence_monotone ? "OK" : "VIOLATED");

  // Every run is fully seeded, so a violated shape is a code change, not a
  // flake: fail the process so CI notices.
  const int violations =
      (clean.injected.total() == 0 ? 0 : 1) + (clean.failed == 0 ? 0 : 1) +
      (worst.degraded + worst.failed == worst.cases ? 0 : 1) +
      (worst.rsql.hits_at_1 <= clean.rsql.hits_at_1 ? 0 : 1) +
      (rough_monotone ? 0 : 1) + (confidence_monotone ? 0 : 1);
  return violations;
}
