/// Fig. 8 reproduction: the real-world repairing case study. A compressed
/// "day" on one instance replays the paper's storyline:
///
///   t=A    a poor SQL deploys -> active session / CPU anomaly (red)
///   t=T1   the user manually throttles the Top-1 SQL by response time
///          (a victim, not the root cause) -> partial relief (yellow)
///   t=T2   throttling hurts the business, user lifts it -> anomaly
///          returns (orange)
///   t=T3   user enables PinSQL -> R-SQL identified, optimization
///          suggested (blue)
///   t=T4   optimization executed -> metrics recover
///
/// Paper reference: throttling the Top SQL does not resolve the anomaly
/// fundamentally; optimizing the R-SQL does.

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "baselines/top_sql.h"
#include "anomaly/phenomenon.h"
#include "core/diagnoser.h"
#include "dbsim/engine.h"
#include "dbsim/monitor.h"
#include "eval/runner.h"
#include "pipeline/stream_aggregator.h"
#include "repair/actions.h"
#include "repair/rule_engine.h"
#include "repair/supervisor.h"
#include "util/strings.h"
#include "workload/arrivals.h"
#include "workload/scenario.h"

namespace {

constexpr int64_t kDayStart = 0;
constexpr int64_t kAnomalyStart = 400;   // A
constexpr int64_t kThrottleOn = 900;     // T1
constexpr int64_t kThrottleOff = 1400;   // T2
constexpr int64_t kPinSqlRuns = 1900;    // T3
constexpr int64_t kOptimizeAt = 1950;    // T4
constexpr int64_t kDayEnd = 2500;

double MeanSession(const pinsql::dbsim::InstanceMetrics& m, int64_t t0,
                   int64_t t1) {
  return m.active_session.Slice(t0, t1).Mean();
}

}  // namespace

int main() {
  using pinsql::dbsim::Engine;
  using pinsql::workload::AnomalyType;

  pinsql::Rng rng(20220514);
  pinsql::workload::ScenarioParams params;
  pinsql::workload::Workload workload =
      pinsql::workload::MakeStandardWorkload(params, &rng);
  // A hot-row batch UPDATE deploys and keeps running until someone fixes
  // it (the override runs to day end). Its victims — locking reads
  // queueing on the hot rows — dominate the Top-RT page, so the user's
  // manual throttle hits a victim, exactly the paper's storyline.
  pinsql::workload::Injection injection =
      pinsql::workload::MakeInjection(AnomalyType::kRowLock, &workload,
                                      kAnomalyStart, kDayEnd, &rng);
  // Pin the case-study severity (the random draw can be mild; the paper's
  // case ran for hours with clearly elevated metrics).
  workload.templates.back().cpu_ms_mean = 400.0;
  workload.templates.back().row_groups_touched = 3;
  workload.templates.back().hot_group_limit = 4;
  injection.overrides[0].add_qps = 2.5;
  // Concentrate the victim table's key range so the numerous locking
  // reads all collide with the batch update's footprint: their aggregate
  // waiting time is what tops the Top-RT page.
  for (auto& table : workload.tables) {
    if (table.id == workload.templates.back().table_id) {
      table.hot_row_groups = 4;
    }
  }
  const uint64_t rsql_truth = injection.root_cause_ids[0];

  pinsql::LogStore logs;
  workload.RegisterTemplates(&logs);
  pinsql::dbsim::SimConfig sim;
  sim.cpu_cores = 8.0;
  Engine engine(sim);
  engine.AttachLogStore(&logs);
  // Supervised execution: with no fault hook (a perfect control plane)
  // every engine mutation is exactly the plain ActionExecutor sequence,
  // plus verification windows that confirm each action helped.
  pinsql::repair::SupervisorOptions sup_options;
  sup_options.seed = 20220514;
  pinsql::repair::RepairSupervisor supervisor(&engine, sup_options);
  engine.AddArrivals(pinsql::workload::GenerateArrivals(
      workload, injection.overrides, kDayStart, kDayEnd, 991));

  pinsql::Rng monitor_rng(7);
  auto metrics_until = [&](int64_t t_sec) {
    pinsql::Rng rng_copy = monitor_rng;  // deterministic offsets
    return pinsql::dbsim::ComputeInstanceMetrics(
        engine.completed(), kDayStart, t_sec, engine.EffectiveCores(),
        sim.io_capacity_ms_per_sec, &rng_copy);
  };
  // Advances the simulation to t_end in 100 s segments, feeding the
  // supervisor the active-session mean of each segment (throttle expiry,
  // verification windows, breaker cooldowns).
  auto run_supervised_until = [&](int64_t t_end) {
    int64_t t = static_cast<int64_t>(engine.now_ms() / 1000.0);
    while (t < t_end) {
      t = std::min<int64_t>(t + 100, t_end);
      engine.RunUntil(t * 1000.0);
      const auto m = metrics_until(t);
      supervisor.Tick(t * 1000.0, MeanSession(m, t - 100, t));
    }
  };

  // ---- Phase 1: anomaly untreated -----------------------------------------
  engine.RunUntil(kThrottleOn * 1000.0);

  // ---- Phase 2: user throttles the Top-1 SQL by response time -------------
  const auto window = pinsql::AggregateWindow(logs, kAnomalyStart,
                                              kThrottleOn);
  const auto top_rt = pinsql::baselines::RankTopSql(
      window, pinsql::baselines::TopSqlMetric::kResponseTime, kAnomalyStart,
      kThrottleOn);
  const uint64_t throttled_sql = top_rt[0];
  pinsql::repair::RepairAction throttle;
  throttle.type = pinsql::repair::ActionType::kThrottle;
  throttle.sql_id = throttled_sql;
  throttle.throttle_max_qps = 1.0;
  throttle.throttle_duration_sec = kThrottleOff - kThrottleOn;
  const auto at_throttle = metrics_until(kThrottleOn);
  supervisor.Apply(throttle, kThrottleOn * 1000.0,
                   MeanSession(at_throttle, kThrottleOn - 100, kThrottleOn));
  run_supervised_until(kThrottleOff);

  // ---- Phase 3: throttle expires, anomaly returns --------------------------
  run_supervised_until(kPinSqlRuns);

  // ---- Phase 4: PinSQL diagnoses and optimizes the R-SQL -------------------
  const pinsql::dbsim::InstanceMetrics so_far = metrics_until(kPinSqlRuns);
  pinsql::core::DiagnosisInput input;
  // No stored history in this scenario: the empty provider makes every
  // verification window vacuously clean.
  pinsql::core::MapHistoryProvider empty_history;
  input.history = &empty_history;
  input.logs = &logs;
  input.active_session = so_far.active_session;
  input.helper_metrics["cpu_usage"] = so_far.cpu_usage;
  input.helper_metrics["iops_usage"] = so_far.iops_usage;
  input.helper_metrics["row_lock_waits"] = so_far.row_lock_waits;
  input.helper_metrics["mdl_waits"] = so_far.mdl_waits;
  // Run the real detection pipeline: the session never returned to
  // baseline since t=A (the throttled phase was merely less bad), so the
  // perceived anomaly is one long case starting around t=A — which also
  // gives the verifier a clean pre-anomaly baseline.
  const std::map<std::string, const pinsql::TimeSeries*> monitored = {
      {"active_session", &so_far.active_session},
      {"cpu_usage", &so_far.cpu_usage},
      {"iops_usage", &so_far.iops_usage},
  };
  const auto phenomena = pinsql::anomaly::DetectPhenomena(
      monitored, pinsql::anomaly::PhenomenonConfig::Default());
  int64_t as = kThrottleOff;
  int64_t ae = kPinSqlRuns;
  pinsql::anomaly::ExtractAnomalyPeriod(phenomena, &as, &ae);
  input.anomaly_start_sec = std::max<int64_t>(as, kDayStart + 60);
  input.anomaly_end_sec = std::min<int64_t>(ae, kPinSqlRuns);
  const pinsql::core::DiagnosisResult diagnosis =
      pinsql::core::Diagnose(input, pinsql::core::DiagnoserOptions{})
          .value();
  const uint64_t pinpointed =
      diagnosis.rsql.ranking.empty() ? 0 : diagnosis.rsql.ranking[0];

  pinsql::repair::RepairAction optimize;
  optimize.type = pinsql::repair::ActionType::kOptimize;
  optimize.sql_id = pinpointed;
  optimize.optimize_cpu_factor = 0.08;
  optimize.optimize_rows_factor = 0.08;
  supervisor.Apply(optimize, kOptimizeAt * 1000.0,
                   MeanSession(so_far, kPinSqlRuns - 100, kPinSqlRuns));
  run_supervised_until(kDayEnd);
  engine.RunToCompletion();

  // ---- Report ---------------------------------------------------------------
  const pinsql::dbsim::InstanceMetrics day = metrics_until(kDayEnd);
  std::printf("FIG 8: repairing case study over a compressed day "
              "(%llds)\n\n",
              static_cast<long long>(kDayEnd - kDayStart));
  std::printf("timeline (100 s buckets): active session / cpu%%\n");
  for (int64_t t = kDayStart; t < kDayEnd; t += 100) {
    const double session = MeanSession(day, t, t + 100);
    const double cpu = day.cpu_usage.Slice(t, t + 100).Mean();
    std::string note;
    if (t == kAnomalyStart) note = "<- anomaly begins (red)";
    if (t == kThrottleOn) note = "<- user throttles Top-1 SQL (yellow)";
    if (t == kThrottleOff) note = "<- throttle lifted (orange)";
    if (t == kPinSqlRuns) note = "<- PinSQL diagnoses (blue)";
    if (t == kOptimizeAt - kOptimizeAt % 100 && note.empty()) {
      note = "<- optimization executed";
    }
    std::printf("  [%4lld,%4lld) session=%7.1f cpu=%5.1f%%  %s\n",
                static_cast<long long>(t), static_cast<long long>(t + 100),
                session, cpu, note.c_str());
  }

  const double baseline = MeanSession(day, 0, kAnomalyStart);
  const double untreated = MeanSession(day, kAnomalyStart + 50, kThrottleOn);
  const double throttled = MeanSession(day, kThrottleOn + 50, kThrottleOff);
  const double relapsed = MeanSession(day, kThrottleOff + 50, kPinSqlRuns);
  // Measured after the backlog drains (the convoy's queued work takes a
  // while to clear even once the root cause is cheap).
  const double repaired = MeanSession(day, kDayEnd - 200, kDayEnd);

  std::printf("\nphase means: baseline=%.1f anomaly=%.1f throttled=%.1f "
              "relapse=%.1f repaired=%.1f\n",
              baseline, untreated, throttled, relapsed, repaired);
  std::printf("PinSQL pinpointed %s (injected root cause %s): %s\n",
              pinsql::HashToHex(pinpointed).c_str(),
              pinsql::HashToHex(rsql_truth).c_str(),
              pinpointed == rsql_truth ? "CORRECT" : "WRONG");
  std::printf("user throttled %s (a %s)\n",
              pinsql::HashToHex(throttled_sql).c_str(),
              throttled_sql == rsql_truth ? "root cause, luckily"
                                          : "victim, not the root cause");
  std::printf("\nshape checks:\n");
  std::printf("  throttle gives partial relief (%.1f < %.1f): %s\n",
              throttled, untreated,
              throttled < untreated ? "OK" : "VIOLATED");
  std::printf("  anomaly returns after un-throttle (%.1f > %.1f): %s\n",
              relapsed, throttled, relapsed > throttled ? "OK" : "VIOLATED");
  std::printf("  optimization resolves it (%.1f << %.1f, near baseline "
              "%.1f): %s\n",
              repaired, relapsed, baseline,
              (repaired < 0.25 * relapsed &&
               repaired < 3.0 * baseline + 2.0)
                  ? "OK"
                  : "VIOLATED");
  std::printf("  both actions passed their verification windows "
              "(%zu verified, %zu rollbacks): %s\n",
              supervisor.stats().verified, supervisor.stats().rollbacks,
              (supervisor.stats().verified == 2 &&
               supervisor.stats().rollbacks == 0)
                  ? "OK"
                  : "VIOLATED");
  for (const pinsql::repair::RepairEvent& e : supervisor.events()) {
    std::printf("  audit: %s\n", e.ToString().c_str());
  }
  return 0;
}
