/// Serving-layer overload benchmark: a real HTTP/1.1 server fronting the
/// fleet, N well-behaved tenants streaming a per-second diagnosis workload
/// while one abusive tenant floods ingest at ~10x its admitted budget.
/// Reports per-tenant goodput and GET /v1/reports latency percentiles,
/// then hard-checks the serving guarantees:
///
///   - every well-behaved tenant keeps >= 90% ingest goodput under flood;
///   - the abusive tenant is mostly rejected, with Retry-After guidance;
///   - well-behaved tenants see zero admission drops, the abuser sees >0;
///   - GET /v1/reports p99 stays under a (sanitizer-aware) bound;
///   - tenant-1's streamed incident is diagnosed and served back;
///   - replay fingerprints over every accepted record stream are
///     byte-identical at 1 vs 4 ingest threads.
///
/// Environment knobs: PINSQL_BENCH_SERVE_TENANTS (well-behaved tenants,
/// default 3), PINSQL_BENCH_SERVE_FLOODS (flood requests, default 60),
/// PINSQL_BENCH_SERVE_P99_MS (report-read p99 bound). `--smoke` shrinks
/// everything for CI. Exit code = number of violated shape checks.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "faults/net_faults.h"
#include "fleet/fleet_service.h"
#include "online/replay.h"
#include "serve/server.h"
#include "util/json.h"

namespace pinsql::serve {
namespace {

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return -1.0;
  std::sort(values.begin(), values.end());
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(idx, values.size() - 1)];
}

// --- Minimal blocking HTTP client ----------------------------------------

int ConnectTo(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

struct ClientResponse {
  int status = 0;
  std::string body;
};

ClientResponse Request(uint16_t port, const std::string& method,
                       const std::string& target, const std::string& tenant,
                       const std::string& body = "") {
  ClientResponse response;
  const int fd = ConnectTo(port);
  if (fd < 0) return response;
  std::string wire = method + " " + target + " HTTP/1.1\r\n";
  if (!tenant.empty()) wire += "X-Pinsql-Tenant: " + tenant + "\r\n";
  if (!body.empty()) {
    wire += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  wire += "Connection: close\r\n\r\n" + body;
  size_t off = 0;
  while (off < wire.size()) {
    const ssize_t n =
        ::send(fd, wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return response;
    }
    off += static_cast<size_t>(n);
  }
  std::string buffer;
  char chunk[4096];
  while (true) {  // Connection: close framing — read to EOF.
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  if (buffer.size() >= 12 && buffer.compare(0, 5, "HTTP/") == 0) {
    response.status = std::atoi(buffer.c_str() + 9);
    const size_t header_end = buffer.find("\r\n\r\n");
    if (header_end != std::string::npos) {
      response.body = buffer.substr(header_end + 4);
    }
  }
  return response;
}

// --- Workload: one incident stream, plus flat baseline streams -----------

online::PerfSample Sample(int64_t sec, double session) {
  online::PerfSample s;
  s.sec = sec;
  s.active_session = session;
  s.cpu_usage = session * 0.05;
  s.iops_usage = session * 0.1;
  return s;
}

online::ReplayLog TenantStream(bool anomalous_tenant) {
  online::ReplayLog log;
  const int64_t t0 = 100'000;
  const int64_t onset = t0 + 200;
  const int64_t t1 = onset + 120;
  for (int64_t sec = t0; sec < t1; ++sec) {
    const bool anomalous = anomalous_tenant && sec >= onset;
    log.samples.push_back(Sample(sec, anomalous ? 380.0 : 4.0));
    uint64_t state = static_cast<uint64_t>(sec) * 2654435761ULL + 17;
    const int base = 6;
    const int extra = anomalous ? 40 : 0;
    for (int i = 0; i < base + extra; ++i) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      QueryLogRecord r;
      r.sql_id = i < base ? 1 + (state >> 33) % 4 : 9;
      r.arrival_ms = sec * 1000 + static_cast<int64_t>((state >> 13) % 1000);
      r.response_ms = i < base ? 2.0 : 450.0;
      r.examined_rows = i < base ? 20 : 500'000;
      log.records.push_back(r);
    }
  }
  return log;
}

std::string BatchBody(uint32_t instance,
                      const std::vector<QueryLogRecord>& records,
                      const std::vector<online::PerfSample>& samples) {
  Json root = Json::MakeObject();
  root.Set("instance", static_cast<int64_t>(instance));
  Json recs = Json::MakeArray();
  for (const auto& r : records) {
    Json item = Json::MakeObject();
    item.Set("arrival_ms", r.arrival_ms);
    item.Set("sql_id", static_cast<int64_t>(r.sql_id));
    item.Set("response_ms", r.response_ms);
    item.Set("examined_rows", r.examined_rows);
    recs.Append(std::move(item));
  }
  root.Set("records", std::move(recs));
  Json samps = Json::MakeArray();
  for (const auto& s : samples) {
    Json item = Json::MakeObject();
    item.Set("sec", s.sec);
    item.Set("active_session", s.active_session);
    item.Set("cpu_usage", s.cpu_usage);
    item.Set("iops_usage", s.iops_usage);
    samps.Append(std::move(item));
  }
  root.Set("samples", std::move(samps));
  return root.Dump();
}

void RegisterTemplates(fleet::FleetService* fleet, LogStore* catalog) {
  for (uint64_t id = 1; id <= 4; ++id) {
    TemplateCatalogEntry entry;
    entry.template_text = "SELECT * FROM t WHERE k = ?";
    entry.kind = sqltpl::StatementKind::kSelect;
    entry.tables = {"t"};
    fleet->RegisterTemplateFleetWide(id, entry);
    catalog->RegisterTemplate(id, entry);
  }
  TemplateCatalogEntry heavy;
  heavy.template_text = "SELECT * FROM big ORDER BY v";
  heavy.kind = sqltpl::StatementKind::kSelect;
  heavy.tables = {"big"};
  fleet->RegisterTemplateFleetWide(9, heavy);
  catalog->RegisterTemplate(9, heavy);
}

int RunBench(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int num_tenants =
      std::max(1, EnvInt("PINSQL_BENCH_SERVE_TENANTS", smoke ? 2 : 3));
  const int flood_requests =
      EnvInt("PINSQL_BENCH_SERVE_FLOODS", smoke ? 24 : 60);
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  const double default_p99_ms = 2000.0;
#else
  const double default_p99_ms = 500.0;
#endif
  const double p99_bound_ms =
      EnvInt("PINSQL_BENCH_SERVE_P99_MS", static_cast<int>(default_p99_ms));

  // One instance per well-behaved tenant, plus instance 99 for the abuser.
  std::vector<fleet::FleetInstanceSpec> specs;
  for (int t = 1; t <= num_tenants; ++t) {
    specs.push_back({static_cast<uint32_t>(t), 0});
  }
  specs.push_back({99, 1});
  fleet::FleetOptions foptions;
  auto fleet = std::make_unique<fleet::FleetService>(specs, foptions);
  LogStore catalog;
  RegisterTemplates(fleet.get(), &catalog);
  fleet->Start();

  ServerOptions soptions;
  soptions.capture_accepted = true;
  for (int t = 1; t <= num_tenants; ++t) {
    TenantQuota quota;
    quota.records_per_sec = 1e6;
    quota.record_burst = 1e6;
    quota.bytes_per_sec = 1e9;
    quota.byte_burst = 1e9;
    quota.queue_capacity_batches = 10'000;
    quota.weight = 4;
    quota.instances = {static_cast<uint32_t>(t)};
    soptions.admission.tenants["tenant-" + std::to_string(t)] = quota;
  }
  TenantQuota abuser;
  // Budget low enough that the flood exceeds it by >= 10x even when a
  // sanitizer slows the client's send rate to a crawl.
  abuser.records_per_sec = 100.0;
  abuser.record_burst = 500.0;
  abuser.bytes_per_sec = 1e6;
  abuser.byte_burst = 2e6;
  abuser.queue_capacity_batches = 16;
  abuser.weight = 1;
  abuser.instances = {99};
  soptions.admission.tenants["abuser"] = abuser;

  Server server(fleet.get(), soptions);
  if (const Status status = server.Start(); !status.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 status.message().c_str());
    return 1;
  }
  const uint16_t port = server.port();

  std::printf("Serving-layer overload bench: %d well-behaved tenants + 1 "
              "abusive tenant\n(flood: %d requests x 500 records against a "
              "%d rec/s budget; p99 bound %.0f ms)\n\n",
              num_tenants, flood_requests,
              static_cast<int>(abuser.records_per_sec), p99_bound_ms);

  // The abusive tenant floods from a background thread.
  faults::NetChaosOptions coptions;
  coptions.port = port;
  coptions.tenant = "abuser";
  coptions.instance_id = 99;
  coptions.flood_requests = flood_requests;
  coptions.flood_records_per_request = 500;
  faults::NetChaosStats flood_stats;
  std::atomic<bool> traffic_done{false};
  std::thread flooder([&] {
    faults::NetChaosClient client(coptions);
    flood_stats = client.RunTenantFlood();
  });

  // A reader polls GET /v1/reports throughout the flood, timing each read.
  std::vector<double> report_ms;
  std::thread reader([&] {
    while (!traffic_done.load(std::memory_order_relaxed) ||
           report_ms.size() < 50) {
      const auto t0 = std::chrono::steady_clock::now();
      const ClientResponse r =
          Request(port, "GET", "/v1/reports?limit=5", "tenant-1");
      const double ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count();
      if (r.status == 200) report_ms.push_back(ms);
      if (report_ms.size() > 100'000) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  // Well-behaved tenants stream their seconds concurrently with the flood.
  std::vector<online::ReplayLog> streams;
  for (int t = 1; t <= num_tenants; ++t) {
    streams.push_back(TenantStream(/*anomalous_tenant=*/t == 1));
  }
  std::vector<size_t> sent(num_tenants, 0), accepted(num_tenants, 0);
  std::vector<std::thread> agents;
  for (int t = 1; t <= num_tenants; ++t) {
    agents.emplace_back([&, t] {
      const online::ReplayLog& stream = streams[t - 1];
      const std::string tenant = "tenant-" + std::to_string(t);
      size_t cursor = 0;
      for (const online::PerfSample& sample : stream.samples) {
        std::vector<QueryLogRecord> second_records;
        const int64_t end_ms = (sample.sec + 1) * 1000;
        while (cursor < stream.records.size() &&
               stream.records[cursor].arrival_ms < end_ms) {
          second_records.push_back(stream.records[cursor]);
          ++cursor;
        }
        ++sent[t - 1];
        const ClientResponse response =
            Request(port, "POST", "/v1/ingest", tenant,
                    BatchBody(static_cast<uint32_t>(t), second_records,
                              {sample}));
        if (response.status == 202) ++accepted[t - 1];
      }
    });
  }
  for (auto& agent : agents) agent.join();
  flooder.join();
  traffic_done.store(true, std::memory_order_relaxed);
  reader.join();

  // Wait for tenant-1's incident diagnosis to surface.
  bool report_served = false;
  for (int attempt = 0; attempt < 500 && !report_served; ++attempt) {
    const ClientResponse r =
        Request(port, "GET", "/v1/reports?limit=5", "tenant-1");
    report_served =
        r.status == 200 && r.body.find("\"ok\":true") != std::string::npos;
    if (!report_served) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }

  std::printf("%10s | %7s %9s %9s | %s\n", "tenant", "sent", "accepted",
              "goodput", "admission drops");
  std::printf("-----------+-----------------------------+----------------\n");
  const auto tenants = server.tenant_stats();
  bool goodput_ok = true;
  bool good_drops_zero = true;
  for (int t = 1; t <= num_tenants; ++t) {
    const std::string name = "tenant-" + std::to_string(t);
    const TenantAdmissionStats& stats = tenants.at(name);
    const uint64_t drops = stats.dropped_rate_limited +
                           stats.dropped_over_quota + stats.dropped_shed;
    const double goodput =
        sent[t - 1] == 0
            ? 0.0
            : 100.0 * static_cast<double>(accepted[t - 1]) /
                  static_cast<double>(sent[t - 1]);
    goodput_ok &= accepted[t - 1] * 10 >= sent[t - 1] * 9;
    good_drops_zero &= drops == 0;
    std::printf("%10s | %7zu %9zu %8.1f%% | %llu\n", name.c_str(),
                sent[t - 1], accepted[t - 1], goodput,
                static_cast<unsigned long long>(drops));
  }
  const TenantAdmissionStats& abuser_stats = tenants.at("abuser");
  const uint64_t abuser_drops = abuser_stats.dropped_rate_limited +
                                abuser_stats.dropped_over_quota +
                                abuser_stats.dropped_shed;
  std::printf("%10s | %7d %9d %8s | %llu\n", "abuser", flood_stats.flood_sent,
              flood_stats.flood_accepted, "-",
              static_cast<unsigned long long>(abuser_drops));
  const double p50 = Percentile(report_ms, 0.5);
  const double p99 = Percentile(report_ms, 0.99);
  std::printf("\nGET /v1/reports during flood: %zu reads, p50 %.2f ms, "
              "p99 %.2f ms\n",
              report_ms.size(), p50, p99);

  // Graceful stop, then the determinism contract over the accepted set.
  server.Stop();
  const auto accepted_streams = server.accepted_streams();
  bool fingerprints_identical = !accepted_streams.empty();
  for (const auto& [instance, log] : accepted_streams) {
    online::ReplayOptions roptions;
    roptions.num_ingest_threads = 1;
    const std::string fp1 = online::RunReplay(log, catalog, roptions)
                                .Fingerprint();
    roptions.num_ingest_threads = 4;
    const std::string fp4 = online::RunReplay(log, catalog, roptions)
                                .Fingerprint();
    fingerprints_identical &= !fp1.empty() && fp1 == fp4;
  }
  fleet->Stop();

  const struct {
    const char* name;
    bool ok;
  } checks[] = {
      {"every well-behaved tenant kept >= 90% goodput", goodput_ok},
      {"well-behaved tenants saw zero admission drops", good_drops_zero},
      {"flood mostly rejected (rejected > accepted)",
       flood_stats.flood_rejected > flood_stats.flood_accepted},
      {"rejections carried Retry-After guidance",
       flood_stats.flood_retry_after > 0},
      {"abusive tenant charged for every drop", abuser_drops > 0},
      {"GET /v1/reports p99 within bound",
       !report_ms.empty() && p99 <= p99_bound_ms},
      {"tenant-1 incident diagnosed and served", report_served},
      {"accepted streams replay fingerprint-identical at 1 vs 4 threads",
       fingerprints_identical},
  };
  std::printf("\nshape checks:\n");
  int violations = 0;
  for (const auto& check : checks) {
    std::printf("  %-62s %s\n", check.name, check.ok ? "OK" : "VIOLATED");
    violations += check.ok ? 0 : 1;
  }
  return violations;
}

}  // namespace
}  // namespace pinsql::serve

int main(int argc, char** argv) {
  return pinsql::serve::RunBench(argc, argv);
}
