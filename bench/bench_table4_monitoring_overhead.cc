/// Table IV reproduction: QPS and QPS decline rate of MySQL Performance
/// Schema configurations under sysbench-style closed-loop stress tests
/// (read-only / read-write / write-only profiles, 32 threads, 20 tables).
///
/// This is the experiment motivating PinSQL's log-based session
/// estimation: built-in monitoring costs 8-30 % of throughput, so
/// production instances run with it off.
///
/// Paper reference declines: pfs 8.5-12.6 %, pfs+ins 8.0-17.7 %,
/// pfs+con 11.0-17.0 %, pfs+con+ins 26.2-30.4 %.

#include <cstdio>
#include <cstdlib>

#include "dbsim/closed_loop.h"
#include "dbsim/engine.h"

namespace {

using pinsql::Rng;
using pinsql::dbsim::ClosedLoopDriver;
using pinsql::dbsim::Engine;
using pinsql::dbsim::LockMode;
using pinsql::dbsim::MakeMdlKey;
using pinsql::dbsim::MakeRowKey;
using pinsql::dbsim::MonitoringConfig;
using pinsql::dbsim::QuerySpec;
using pinsql::dbsim::SimConfig;

constexpr int kTables = 20;
constexpr int kThreads = 32;
constexpr double kDurationMs = 20'000.0;

QuerySpec PointSelect(Rng* rng) {
  QuerySpec spec;
  spec.sql_id = 1;
  spec.cpu_ms = rng->Uniform(0.08, 0.16);
  spec.examined_rows = 1;
  const uint32_t table = static_cast<uint32_t>(rng->UniformInt(0, kTables - 1));
  spec.locks.push_back({MakeMdlKey(table), LockMode::kShared});
  return spec;
}

QuerySpec RangeSelect(Rng* rng) {
  QuerySpec spec;
  spec.sql_id = 2;
  spec.cpu_ms = rng->Uniform(0.3, 0.6);
  spec.examined_rows = 100;
  const uint32_t table = static_cast<uint32_t>(rng->UniformInt(0, kTables - 1));
  spec.locks.push_back({MakeMdlKey(table), LockMode::kShared});
  return spec;
}

QuerySpec IndexUpdate(Rng* rng) {
  QuerySpec spec;
  spec.sql_id = 3;
  spec.cpu_ms = rng->Uniform(0.15, 0.3);
  spec.examined_rows = 1;
  const uint32_t table = static_cast<uint32_t>(rng->UniformInt(0, kTables - 1));
  spec.locks.push_back({MakeMdlKey(table), LockMode::kShared});
  // 10M rows across 1024 row groups per table: low-conflict OLTP updates.
  spec.locks.push_back(
      {MakeRowKey(table, static_cast<uint32_t>(rng->UniformInt(0, 1023))),
       LockMode::kExclusive});
  return spec;
}

QuerySpec Insert(Rng* rng) {
  QuerySpec spec;
  spec.sql_id = 4;
  spec.cpu_ms = rng->Uniform(0.1, 0.2);
  spec.examined_rows = 1;
  const uint32_t table = static_cast<uint32_t>(rng->UniformInt(0, kTables - 1));
  spec.locks.push_back({MakeMdlKey(table), LockMode::kShared});
  return spec;
}

double RunQps(const char* profile, MonitoringConfig monitoring) {
  std::vector<std::pair<ClosedLoopDriver::SpecGenerator, double>> mix;
  const std::string name(profile);
  if (name == "read_only") {
    mix = {{PointSelect, 0.8}, {RangeSelect, 0.2}};
  } else if (name == "read_write") {
    mix = {{PointSelect, 0.56}, {RangeSelect, 0.14}, {IndexUpdate, 0.2},
           {Insert, 0.1}};
  } else {  // write_only
    mix = {{IndexUpdate, 0.65}, {Insert, 0.35}};
  }
  SimConfig config;
  config.cpu_cores = 4.0;
  config.monitoring = monitoring;
  Engine engine(config);
  ClosedLoopDriver driver(std::move(mix), kThreads, kDurationMs,
                          /*seed=*/1234);
  engine.SetArrivalDriver(&driver);
  engine.AddArrivals(driver.InitialArrivals(0));
  engine.RunToCompletion();
  size_t completed = 0;
  for (const auto& q : engine.completed()) {
    if (q.outcome == pinsql::dbsim::QueryOutcome::kCompleted) ++completed;
  }
  return static_cast<double>(completed) / (kDurationMs / 1000.0);
}

}  // namespace

int main() {
  const MonitoringConfig configs[] = {
      MonitoringConfig::kNormal, MonitoringConfig::kPfs,
      MonitoringConfig::kPfsIns, MonitoringConfig::kPfsCon,
      MonitoringConfig::kPfsConIns};
  const char* profiles[] = {"read_only", "read_write", "write_only"};

  std::printf("TABLE IV: QPS and decline rate of monitoring configs\n"
              "(%d closed-loop threads, %d tables, 4 cores; paper declines "
              "8.0-30.4%%)\n\n",
              kThreads, kTables);
  std::printf("%-12s | %10s %7s | %10s %7s | %10s %7s\n", "Config",
              "RO QPS", "dQPS%", "RW QPS", "dQPS%", "WO QPS", "dQPS%");
  std::printf("-------------+--------------------+--------------------+"
              "-------------------\n");

  double normal_qps[3] = {0, 0, 0};
  bool monotone_ok = true;
  double prev_decline_sum = -1.0;
  for (const MonitoringConfig config : configs) {
    double qps[3];
    double decline[3];
    double decline_sum = 0.0;
    for (int p = 0; p < 3; ++p) {
      qps[p] = RunQps(profiles[p], config);
      if (config == MonitoringConfig::kNormal) normal_qps[p] = qps[p];
      decline[p] = 100.0 * (normal_qps[p] - qps[p]) / normal_qps[p];
      decline_sum += decline[p];
    }
    std::printf("%-12s | %10.0f %6.2f%% | %10.0f %6.2f%% | %10.0f %6.2f%%\n",
                pinsql::dbsim::MonitoringConfigName(config), qps[0],
                decline[0], qps[1], decline[1], qps[2], decline[2]);
    if (config == MonitoringConfig::kNormal ||
        config == MonitoringConfig::kPfsConIns) {
      if (decline_sum < prev_decline_sum) monotone_ok = false;
    }
    prev_decline_sum = decline_sum;
  }

  const double worst = 100.0 * (normal_qps[0] - RunQps("read_only",
                                                       MonitoringConfig::
                                                           kPfsConIns)) /
                       normal_qps[0];
  std::printf("\nshape checks:\n");
  std::printf("  pfs+con+ins decline in the 20-35%% band (%.1f%%): %s\n",
              worst, (worst > 20.0 && worst < 35.0) ? "OK" : "VIOLATED");
  std::printf("  full instrumentation costs the most: %s\n",
              monotone_ok ? "OK" : "VIOLATED");
  return 0;
}
