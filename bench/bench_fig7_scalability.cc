/// Fig. 7 reproduction: scalability of PinSQL — computing time as a
/// function of (left) the number of SQL templates and (right) the anomaly
/// period length.
///
/// Paper reference: even the slowest cases stay under a minute; runtime
/// correlates with the anomaly period length more than with the template
/// count.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "eval/runner.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ts/stats.h"

namespace {

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

double RunOneCase(const pinsql::eval::CaseGenOptions& options,
                  bool use_injected_period, size_t* num_templates,
                  int64_t* anomaly_len) {
  const pinsql::eval::AnomalyCaseData data =
      pinsql::eval::GenerateCase(options);
  pinsql::core::DiagnosisInput input =
      pinsql::eval::MakeDiagnosisInput(data);
  if (use_injected_period) {
    // The sweep controls the anomaly length exactly; detection jitter
    // would blur the controlled variable.
    input.anomaly_start_sec = data.injected_as;
    input.anomaly_end_sec = data.injected_ae;
  }
  const pinsql::core::DiagnosisResult result =
      pinsql::core::Diagnose(input, pinsql::core::DiagnoserOptions{})
          .value();
  *num_templates = result.metrics.num_templates();
  *anomaly_len = input.anomaly_end_sec - input.anomaly_start_sec;
  return result.total_seconds;
}

/// `--trace` mode: diagnose one large case with span recording on and
/// print the per-stage profile instead of running the full sweeps. Used as
/// a fast CI smoke for the observability layer.
int RunTraceMode(uint64_t seed) {
  pinsql::eval::CaseGenOptions large;
  large.seed = seed + 991;
  large.type = pinsql::workload::AnomalyType::kRowLock;
  large.scenario.num_clusters = 28;
  large.scenario.num_tables = 28;
  large.scenario.min_cluster_qps = 360.0 / 28.0;
  large.scenario.max_cluster_qps = 760.0 / 28.0;
  large.anomaly_duration_sec = 480;
  const pinsql::eval::AnomalyCaseData data =
      pinsql::eval::GenerateCase(large);
  const pinsql::core::DiagnosisInput input =
      pinsql::eval::MakeDiagnosisInput(data);

  pinsql::obs::TraceRecorder recorder;
  pinsql::core::DiagnoserOptions options;
  options.num_threads = 4;
  options.trace = &recorder;
  const pinsql::core::DiagnosisResult result =
      pinsql::core::Diagnose(input, options).value();

  std::printf("PER-STAGE TRACE (num_threads=%d)\n", options.num_threads);
  std::printf("%s", result.trace.ToTable().c_str());
  if (pinsql::obs::kEnabled) {
    std::printf("\nSPAN SUMMARY (%zu events recorded)\n",
                recorder.event_count());
    std::printf("%s", recorder.SummaryTable().c_str());
  } else {
    std::printf("\n(span recording compiled out: PINSQL_DISABLE_OBS)\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t seed =
      static_cast<uint64_t>(EnvInt("PINSQL_BENCH_SEED", 7));
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) return RunTraceMode(seed);
  }

  std::printf("FIG 7 (left): computing time vs number of SQL templates\n");
  std::printf("%10s %12s %14s\n", "#templates", "anomaly(s)", "time(s)");
  std::vector<double> sizes;
  std::vector<double> times_by_size;
  for (int clusters : {3, 6, 12, 24, 40}) {
    pinsql::eval::CaseGenOptions options;
    options.seed = seed + static_cast<uint64_t>(clusters);
    options.type = pinsql::workload::AnomalyType::kRowLock;
    options.scenario.num_clusters = clusters;
    options.scenario.num_tables = std::max(10, clusters);
    // Keep total traffic roughly constant so only the template count
    // scales.
    options.scenario.min_cluster_qps = 180.0 / clusters;
    options.scenario.max_cluster_qps = 420.0 / clusters;
    size_t templates = 0;
    int64_t anomaly_len = 0;
    const double secs =
        RunOneCase(options, /*use_injected_period=*/false, &templates,
                   &anomaly_len);
    std::printf("%10zu %12lld %14.3f\n", templates,
                static_cast<long long>(anomaly_len), secs);
    sizes.push_back(static_cast<double>(templates));
    times_by_size.push_back(secs);
  }

  std::printf("\nFIG 7 (right): computing time vs anomaly period length\n");
  std::printf("%10s %12s %14s\n", "#templates", "anomaly(s)", "time(s)");
  std::vector<double> lengths;
  std::vector<double> times_by_length;
  double max_time = 0.0;
  for (int64_t duration : {120, 300, 600, 1200, 2400}) {
    pinsql::eval::CaseGenOptions options;
    // One seed for the whole sweep: identical workload and injection, so
    // the anomaly length is the only variable.
    options.seed = seed;
    options.type = pinsql::workload::AnomalyType::kBusinessSpike;
    options.anomaly_duration_sec = duration;
    size_t templates = 0;
    int64_t anomaly_len = 0;
    const double secs =
        RunOneCase(options, /*use_injected_period=*/true, &templates,
                   &anomaly_len);
    std::printf("%10zu %12lld %14.3f\n", templates,
                static_cast<long long>(anomaly_len), secs);
    lengths.push_back(static_cast<double>(anomaly_len));
    times_by_length.push_back(secs);
    max_time = std::max(max_time, secs);
  }

  // ---- Thread sweep (beyond the paper): parallel diagnosis engine -------
  // One large synthetic case, diagnosed repeatedly with the same input and
  // a varying DiagnoserOptions::num_threads. The parallel stages are
  // bit-identical to the serial ones (tests/parallel_equivalence_test.cc
  // proves it), so this axis measures pure speedup.
  std::printf("\nTHREAD SWEEP: end-to-end diagnosis time vs num_threads "
              "(large case)\n");
  std::printf("  hardware threads available: %u\n",
              std::thread::hardware_concurrency());
  pinsql::eval::CaseGenOptions large;
  large.seed = seed + 991;
  large.type = pinsql::workload::AnomalyType::kRowLock;
  large.scenario.num_clusters = 28;
  large.scenario.num_tables = 28;
  large.scenario.min_cluster_qps = 360.0 / 28.0;
  large.scenario.max_cluster_qps = 760.0 / 28.0;
  large.anomaly_duration_sec = 480;
  const pinsql::eval::AnomalyCaseData large_case =
      pinsql::eval::GenerateCase(large);
  const pinsql::core::DiagnosisInput large_input =
      pinsql::eval::MakeDiagnosisInput(large_case);

  std::printf("%10s %12s %10s\n", "threads", "time(s)", "speedup");
  double serial_time = 0.0;
  double best_speedup = 0.0;
  for (const int threads : {1, 2, 4, 8}) {
    pinsql::core::DiagnoserOptions options;
    options.num_threads = threads;
    // Best of 2 runs absorbs one-off warmup noise (page faults, pool
    // spin-up).
    double secs = 1e300;
    for (int rep = 0; rep < 2; ++rep) {
      const pinsql::core::DiagnosisResult result =
          pinsql::core::Diagnose(large_input, options).value();
      secs = std::min(secs, result.total_seconds);
    }
    if (threads == 1) serial_time = secs;
    const double speedup = serial_time / secs;
    best_speedup = std::max(best_speedup, speedup);
    std::printf("%10d %12.3f %9.2fx\n", threads, secs, speedup);
  }

  // Fleet mode: independent cases diagnosed concurrently by eval::Runner.
  std::printf("\nFLEET SWEEP: evaluation batch wall-clock vs fleet "
              "num_threads (12 cases)\n");
  std::printf("%10s %12s %10s\n", "threads", "time(s)", "speedup");
  double fleet_serial = 0.0;
  for (const int threads : {1, 4}) {
    pinsql::eval::EvalOptions eval_options;
    eval_options.num_cases = 12;
    eval_options.seed = seed;
    eval_options.num_threads = threads;
    const auto t0 = std::chrono::steady_clock::now();
    const auto scores =
        pinsql::eval::RunOverallEvaluation(eval_options,
                                           pinsql::core::DiagnoserOptions{});
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    (void)scores;
    if (threads == 1) fleet_serial = secs;
    std::printf("%10d %12.3f %9.2fx\n", threads, secs, fleet_serial / secs);
  }

  const double corr_length =
      pinsql::PearsonCorrelation(lengths, times_by_length);
  std::printf("\nshape checks:\n");
  std::printf("  slowest diagnosis %.2fs < 60s: %s\n", max_time,
              max_time < 60.0 ? "OK" : "VIOLATED");
  std::printf("  time correlates with anomaly length (corr=%.2f > 0.8): "
              "%s\n",
              corr_length, corr_length > 0.8 ? "OK" : "VIOLATED");
  std::printf("  8-thread diagnosis speedup %.2fx >= 2.5x: %s%s\n",
              best_speedup, best_speedup >= 2.5 ? "OK" : "VIOLATED",
              std::thread::hardware_concurrency() < 8
                  ? " (machine has < 8 hardware threads; rerun on a "
                    "multi-core host)"
                  : "");
  return 0;
}
