/// ClosedLoopChaos: robustness of the *repairing* side of the loop. Each
/// severity replays the same seeded anomaly cases (dbsim scenario ->
/// anomaly detection -> Diagnose() -> supervised repair -> recovery check)
/// with the repair control plane failing at that severity: transient
/// action failures, delayed application, partial application. The
/// supervisor answers with retries, breakers, verification windows and
/// rollbacks; this bench prints the recovery-rate / rollback-rate /
/// time-to-recover curve and enforces its shape.
///
/// Headline properties: severity 0 is a perfect control plane (no failed
/// attempt, no rollback, recovery identical to the unsupervised path);
/// recovery degrades roughly monotonically with severity; and every
/// lifecycle is accounted for in typed RepairEvent records — no action is
/// silently lost.
///
/// Environment knobs: PINSQL_BENCH_CASES (default 6), PINSQL_BENCH_SEED,
/// PINSQL_BENCH_THREADS, PINSQL_BENCH_FAULT_SEED.

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "eval/closed_loop_chaos.h"

namespace {

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

}  // namespace

int main() {
  pinsql::eval::ClosedLoopOptions options;
  options.num_cases = EnvInt("PINSQL_BENCH_CASES", 6);
  options.seed = static_cast<uint64_t>(EnvInt("PINSQL_BENCH_SEED", 42));
  options.num_threads = EnvInt("PINSQL_BENCH_THREADS", 4);
  options.plan.seed =
      static_cast<uint64_t>(EnvInt("PINSQL_BENCH_FAULT_SEED", 7));
  options.severities = {0.0, 0.25, 0.5, 0.75, 1.0};

  std::printf(
      "ClosedLoopChaos: supervised repair under action-fault injection\n"
      "(%d cases per severity, %d threads; retry/breaker/verify enabled)\n\n",
      options.num_cases, options.num_threads);

  const auto curve = pinsql::eval::RunClosedLoopChaos(options);

  std::printf("%8s | %7s %7s %8s %7s | %7s %7s %6s %6s %7s | %s\n",
              "severity", "recover", "diag-ok", "rollback", "TTR(s)",
              "applied", "partial", "failed", "reject", "breaker",
              "injected action faults");
  std::printf("---------+----------------------------------+---------------"
              "--------------------------+----------------\n");
  for (const auto& p : curve) {
    char ttr[32];
    if (p.mean_time_to_recover_sec >= 0.0) {
      std::snprintf(ttr, sizeof(ttr), "%7.0f", p.mean_time_to_recover_sec);
    } else {
      std::snprintf(ttr, sizeof(ttr), "%7s", "-");
    }
    std::printf("%8.2f | %4zu/%zu %4zu/%zu %5zu/%zu %s | %7zu %7zu %6zu "
                "%6zu %7zu | %s\n",
                p.severity, p.recovered, p.cases, p.diagnosed_correctly,
                p.cases, p.cases_with_rollback, p.cases, ttr,
                p.stats.applied, p.stats.partial_applications,
                p.stats.failed, p.stats.rejected, p.stats.breaker_opens,
                p.injected.ToString().c_str());
  }

  std::printf("\nshape checks:\n");
  const auto& clean = curve.front();
  const auto& worst = curve.back();

  const bool clean_uninjected = clean.injected.attempts_failed == 0 &&
                                clean.injected.applications_delayed == 0 &&
                                clean.injected.applications_partial == 0;
  std::printf("  severity 0 injected nothing: %s\n",
              clean_uninjected ? "OK" : "VIOLATED");
  const bool clean_supervision_invisible =
      clean.stats.failed == 0 && clean.stats.rollbacks == 0 &&
      clean.stats.breaker_opens == 0 && clean.stats.retries == 0;
  std::printf("  severity 0 supervision is invisible "
              "(no retry/failure/rollback/breaker): %s\n",
              clean_supervision_invisible ? "OK" : "VIOLATED");

  bool all_consistent = true;
  for (const auto& p : curve) {
    all_consistent = all_consistent && p.events_consistent == p.cases;
  }
  std::printf("  every action lifecycle accounted for in RepairEvents: %s\n",
              all_consistent ? "OK" : "VIOLATED");

  std::printf("  recovery at worst severity <= clean (%zu <= %zu): %s\n",
              worst.recovered, clean.recovered,
              worst.recovered <= clean.recovered ? "OK" : "VIOLATED");

  // Roughly monotone decline: no point may beat the running maximum by
  // more than one case (per-point binomial noise at these batch sizes).
  bool rough_monotone = true;
  size_t running_max = clean.recovered;
  for (size_t i = 1; i < curve.size(); ++i) {
    if (curve[i].recovered > running_max + 1) rough_monotone = false;
    running_max = std::max(running_max, curve[i].recovered);
  }
  std::printf("  recovery rate roughly monotone in severity: %s\n",
              rough_monotone ? "OK" : "VIOLATED");

  // Chaos must actually bite once severity is high: some attempt failed,
  // and the supervisor reacted (retry, rollback or breaker).
  const bool chaos_bites =
      worst.injected.attempts_failed + worst.injected.applications_partial +
          worst.injected.applications_delayed >
      0;
  const bool supervisor_reacted = worst.stats.retries +
                                      worst.stats.rollbacks +
                                      worst.stats.breaker_opens >
                                  0;
  std::printf("  worst severity injected faults and supervisor reacted: %s\n",
              chaos_bites && supervisor_reacted ? "OK" : "VIOLATED");

  const int violations = (clean_uninjected ? 0 : 1) +
                         (clean_supervision_invisible ? 0 : 1) +
                         (all_consistent ? 0 : 1) +
                         (worst.recovered <= clean.recovered ? 0 : 1) +
                         (rough_monotone ? 0 : 1) +
                         (chaos_bites && supervisor_reacted ? 0 : 1);
  return violations;
}
