/// Example: investigating a metadata-lock pile-up, the way an SRE would.
///
/// A batched online-DDL job takes exclusive metadata locks on a hot table;
/// every query touching the table piles up ("Waiting for table metadata
/// lock"), and the active session explodes — while the DDL itself executes
/// only a handful of times and is invisible on any Top-SQL page. This
/// walks the whole PinSQL investigation: metrics -> phenomena -> H-SQLs ->
/// clusters -> history verification -> the R-SQL.

#include <cstdio>

#include "baselines/top_sql.h"
#include "core/diagnoser.h"
#include "eval/case_generator.h"
#include "eval/runner.h"
#include "util/strings.h"

namespace {

std::string TemplateText(const pinsql::eval::AnomalyCaseData& data,
                         uint64_t sql_id, size_t max_len = 56) {
  const pinsql::TemplateCatalogEntry* entry = data.logs.FindTemplate(sql_id);
  std::string text = entry != nullptr ? entry->template_text : "<unknown>";
  if (text.size() > max_len) text = text.substr(0, max_len - 3) + "...";
  return text;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::stoull(argv[1]) : 2024;

  pinsql::eval::CaseGenOptions options;
  options.type = pinsql::workload::AnomalyType::kMdlLock;
  options.seed = seed;
  const pinsql::eval::AnomalyCaseData data =
      pinsql::eval::GenerateCase(options);

  std::printf("== Investigating a metadata-lock pile-up ==\n\n");
  std::printf("instance metrics around the anomaly:\n");
  const int64_t as = data.anomaly_start();
  const int64_t ae = data.anomaly_end();
  std::printf("  active session:  %.1f -> %.1f (peak %.0f)\n",
              data.metrics.active_session
                  .Slice(data.window_start_sec, as).Mean(),
              data.metrics.active_session.Slice(as, ae).Mean(),
              data.metrics.active_session.Slice(as, ae).Max());
  std::printf("  mdl waits/s:     %.2f -> %.2f\n",
              data.metrics.mdl_waits.Slice(data.window_start_sec, as).Mean(),
              data.metrics.mdl_waits.Slice(as, ae).Mean());
  std::printf("  row-lock waits/s:%.2f -> %.2f\n",
              data.metrics.row_lock_waits
                  .Slice(data.window_start_sec, as).Mean(),
              data.metrics.row_lock_waits.Slice(as, ae).Mean());
  std::printf("\ndetected phenomena:\n");
  for (const auto& p : data.phenomena) {
    std::printf("  %-28s [%lld, %lld) severity %.1f\n", p.rule.c_str(),
                static_cast<long long>(p.start_sec),
                static_cast<long long>(p.end_sec), p.severity);
  }

  // What a Top-SQL page would show: the blocked victims.
  const pinsql::core::DiagnosisInput input =
      pinsql::eval::MakeDiagnosisInput(data);
  const pinsql::StatusOr<pinsql::core::DiagnosisResult> status_or =
      pinsql::core::Diagnose(input, pinsql::core::DiagnoserOptions{});
  if (!status_or.ok()) {
    std::printf("diagnosis rejected: %s\n",
                status_or.status().ToString().c_str());
    return 1;
  }
  const pinsql::core::DiagnosisResult& result = *status_or;
  const auto tops = pinsql::baselines::RankAllTopSql(
      result.metrics, input.anomaly_start_sec, input.anomaly_end_sec);
  std::printf("\nTop-RT page (what a DBA sees first):\n");
  for (size_t i = 0; i < 3 && i < tops.by_response_time.size(); ++i) {
    std::printf("  %zu. %s\n", i + 1,
                TemplateText(data, tops.by_response_time[i]).c_str());
  }
  std::printf("  -> all victims waiting on the metadata lock, none the "
              "cause\n");

  std::printf("\nPinSQL H-SQLs (direct causes of the session spike):\n");
  for (size_t i = 0; i < 3 && i < result.hsql_ranking.size(); ++i) {
    std::printf("  %zu. impact=%+.2f  %s\n", i + 1,
                result.hsql_ranking[i].impact,
                TemplateText(data, result.hsql_ranking[i].sql_id).c_str());
  }

  std::printf("\nclustering: %zu clusters, %zu selected by the cumulative "
              "threshold, %zu verified against history%s\n",
              result.rsql.clusters.size(),
              result.rsql.selected_clusters.size(),
              result.rsql.verified.size(),
              result.rsql.verification_fallback
                  ? " (search widened: selected clusters held only stable "
                    "templates)"
                  : "");

  std::printf("\nPinSQL R-SQL ranking:\n");
  for (size_t i = 0; i < 3 && i < result.rsql.ranking.size(); ++i) {
    const uint64_t id = result.rsql.ranking[i];
    const bool is_truth = id == data.rsql_truth[0];
    std::printf("  %zu. %s %s\n", i + 1, TemplateText(data, id).c_str(),
                is_truth ? "  <== injected root cause" : "");
  }
  const int rank = pinsql::eval::RsqlRank(result.rsql.ranking, data);
  std::printf("\nroot cause found at rank %d; diagnosis took %.2fs "
              "(est %.2fs, verify %.2fs)\n",
              rank, result.total_seconds, result.estimate_seconds,
              result.verify_seconds);
  return rank == 1 ? 0 : 1;
}
