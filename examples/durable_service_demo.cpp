// Durable online service demo: survives kill -9.
//
// First run: opens a WAL-backed service under --data-dir, streams the
// first half of a synthetic incident, then hard-exits mid-ingest without
// any shutdown — exactly what `kill -9` (or a power cut with fsync on)
// leaves behind. Second run: recovers from the surviving WAL + checkpoint,
// streams the rest, and prints the diagnosis — identical to a run that
// never crashed.
//
//   ./build/examples/durable_service_demo --data-dir data/durable_demo
//   ./build/examples/durable_service_demo --data-dir data/durable_demo

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "online/replay.h"
#include "store/durable_service.h"

namespace {

using pinsql::QueryLogRecord;
using pinsql::TemplateCatalogEntry;

pinsql::online::ReplayLog SyntheticIncident() {
  pinsql::online::ReplayLog log;
  const int64_t t0 = 100'000;
  const int64_t onset = t0 + 200;
  const int64_t t1 = onset + 120;
  for (int64_t sec = t0; sec < t1; ++sec) {
    const bool anomalous = sec >= onset;
    pinsql::online::PerfSample s;
    s.sec = sec;
    s.active_session = anomalous ? 380.0 : 4.0;
    s.cpu_usage = s.active_session * 0.05;
    s.iops_usage = s.active_session * 0.1;
    log.samples.push_back(s);
    uint64_t state = static_cast<uint64_t>(sec) * 2654435761ULL + 17;
    const int count = anomalous ? 46 : 6;
    for (int i = 0; i < count; ++i) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      QueryLogRecord r;
      r.sql_id = i < 6 ? 1 + (state >> 33) % 4 : 9;
      r.arrival_ms = sec * 1000 + static_cast<int64_t>((state >> 13) % 1000);
      r.response_ms = i < 6 ? 2.0 : 450.0;
      r.examined_rows = i < 6 ? 20 : 500'000;
      log.records.push_back(r);
    }
  }
  return log;
}

void RegisterCatalog(pinsql::store::DurableOnlineService* service) {
  for (uint64_t id : {1, 2, 3, 4}) {
    TemplateCatalogEntry entry;
    entry.template_text = "SELECT * FROM t WHERE k = ?";
    entry.kind = pinsql::sqltpl::StatementKind::kSelect;
    entry.tables = {"t"};
    service->RegisterTemplate(id, entry);
  }
  TemplateCatalogEntry heavy;
  heavy.template_text = "SELECT * FROM big ORDER BY v";
  heavy.kind = pinsql::sqltpl::StatementKind::kSelect;
  heavy.tables = {"big"};
  service->RegisterTemplate(9, heavy);
}

}  // namespace

int main(int argc, char** argv) {
  std::string data_dir = "data/durable_demo";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--data-dir") == 0) data_dir = argv[i + 1];
  }

  pinsql::store::DurableServiceOptions options;
  options.service.scheduler.zero_timings = true;
  options.checkpoint_every_sec = 60;
  auto opened = pinsql::store::DurableOnlineService::Open(options, data_dir);
  if (!opened.ok()) {
    std::fprintf(stderr, "open %s: %s\n", data_dir.c_str(),
                 opened.status().ToString().c_str());
    return 1;
  }
  auto& service = *opened;
  RegisterCatalog(service.get());

  const auto& recovery = service->recovery();
  const int64_t already = service->stats().service.seconds_processed;
  if (already > 0) {
    std::printf("recovered %lld seconds of stream from %s\n",
                static_cast<long long>(already), data_dir.c_str());
    std::printf("  checkpoint: %s   WAL frames replayed: %llu   "
                "recovery: %.1f ms\n",
                recovery.checkpoint_loaded ? "loaded" : "none",
                static_cast<unsigned long long>(recovery.wal.frames_valid),
                recovery.recovery_ms);
  } else {
    std::printf("fresh data dir %s\n", data_dir.c_str());
  }

  const pinsql::online::ReplayLog log = SyntheticIncident();
  const int64_t resume_from = 100'000 + already;
  const int64_t crash_at = already == 0 ? 100'160 : INT64_MAX;
  size_t cursor = 0;
  int64_t fed = 0;
  for (const auto& sample : log.samples) {
    if (sample.sec >= crash_at) {
      std::printf("streamed %lld more seconds... simulating kill -9 "
                  "mid-ingest (no shutdown, no final checkpoint).\n"
                  "run the same command again to recover.\n",
                  static_cast<long long>(fed));
      std::fflush(stdout);
      std::_Exit(0);  // no destructors, no drain: a crash
    }
    while (cursor < log.records.size() &&
           log.records[cursor].arrival_ms / 1000 <= sample.sec) {
      if (log.records[cursor].arrival_ms / 1000 == sample.sec &&
          sample.sec >= resume_from) {
        service->IngestRecord(log.records[cursor]);
      }
      ++cursor;
    }
    if (sample.sec < resume_from) continue;
    service->IngestMetrics(sample);
    ++fed;
  }

  if (pinsql::Status status = service->Stop(); !status.ok()) {
    std::fprintf(stderr, "stop: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("streamed %lld more seconds, drained cleanly.\n",
              static_cast<long long>(fed));
  for (const auto& outcome : service->outcomes()) {
    std::printf("  trigger at sec %lld (severity %.1f): %s\n",
                static_cast<long long>(outcome.trigger.trigger_sec),
                outcome.trigger.severity,
                outcome.ok ? "diagnosed" : outcome.error.c_str());
  }
  if (service->outcomes().empty()) {
    std::printf("  no anomaly diagnosed (did the first run crash before "
                "feeding anything?)\n");
  } else {
    std::printf("the diagnosis above is byte-identical to a run that never "
                "crashed.\n");
  }
  return 0;
}
