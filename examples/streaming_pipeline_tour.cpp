/// Example: a tour of the data-collection substrate (paper Sec. IV-A).
///
/// Raw SQL statements are fingerprinted into templates, published as query
/// -log records to a Kafka-like topic, folded by the Flink-like aggregator
/// into per-template 1 s / 1 min metric series, archived in the LogStore
/// with retention, and finally fed to the active-session estimator. This
/// is the plumbing every PinSQL diagnosis runs on.

#include <cstdio>

#include "core/session_estimator.h"
#include "pipeline/message_queue.h"
#include "pipeline/stream_aggregator.h"
#include "sqltpl/fingerprint.h"
#include "util/rng.h"
#include "util/strings.h"

int main() {
  std::printf("== PinSQL collection pipeline tour ==\n\n");

  // 1. Fingerprint raw statements into templates (Definition II.3).
  const char* raw_statements[] = {
      "SELECT * FROM user_table WHERE uid = 123456",
      "SELECT * FROM user_table WHERE uid = 654321",
      "UPDATE sales SET total = total + 17 WHERE region IN (3, 7, 9)",
      "UPDATE sales SET total = total + 2 WHERE region IN (1)",
      "SELECT o.id, c.name FROM orders o JOIN customers c ON o.cid = c.id "
      "WHERE o.status = 'open' LIMIT 20",
  };
  std::printf("fingerprinting %zu raw statements:\n",
              std::size(raw_statements));
  for (const char* sql : raw_statements) {
    const auto info = pinsql::sqltpl::Fingerprint(sql);
    std::printf("  %s  [%s]  %s\n", info.sql_id_hex.c_str(),
                pinsql::sqltpl::StatementKindName(info.kind),
                info.template_text.c_str());
  }
  const uint64_t select_id =
      pinsql::sqltpl::SqlId(raw_statements[0]);
  const uint64_t update_id =
      pinsql::sqltpl::SqlId(raw_statements[2]);
  std::printf("  -> literals differ, templates collide: %s\n\n",
              select_id == pinsql::sqltpl::SqlId(raw_statements[1])
                  ? "yes"
                  : "BUG");

  // 2. Collectors publish per-query records to a partitioned topic.
  pinsql::pipeline::Topic<pinsql::QueryLogRecord> topic("query_logs", 4);
  pinsql::Rng rng(5);
  const int64_t window_sec = 120;
  for (int64_t sec = 0; sec < window_sec; ++sec) {
    const int selects = static_cast<int>(rng.Poisson(40));
    for (int i = 0; i < selects; ++i) {
      pinsql::QueryLogRecord rec;
      rec.arrival_ms = sec * 1000 + rng.UniformInt(0, 999);
      rec.response_ms = rng.LogNormalWithMean(8.0, 0.5);
      rec.sql_id = select_id;
      rec.examined_rows = rng.UniformInt(1, 200);
      topic.Publish(rec.sql_id, rec);
    }
    const int updates = static_cast<int>(rng.Poisson(6));
    for (int i = 0; i < updates; ++i) {
      pinsql::QueryLogRecord rec;
      rec.arrival_ms = sec * 1000 + rng.UniformInt(0, 999);
      rec.response_ms = rng.LogNormalWithMean(25.0, 0.5);
      rec.sql_id = update_id;
      rec.examined_rows = rng.UniformInt(50, 3000);
      topic.Publish(rec.sql_id, rec);
    }
  }
  std::printf("published %zu records across %zu partitions\n",
              topic.TotalSize(), topic.num_partitions());

  // 3. The streaming aggregator drains the topic into per-template series
  //    and archives raw records.
  pinsql::LogStore archive;
  pinsql::StreamAggregator aggregator(&topic, 0, window_sec);
  aggregator.AttachLogStore(&archive);
  const size_t consumed = aggregator.PumpAll();
  std::printf("aggregator consumed %zu records into %zu template series\n",
              consumed, aggregator.metrics().num_templates());
  const pinsql::TemplateSeries* select_series =
      aggregator.metrics().Find(select_id);
  std::printf("  SELECT template: %.0f executions, %.1f ms total RT in "
              "second 0\n",
              select_series->execution_count.Sum(),
              select_series->total_response_ms[0]);

  // 4. Minute-granularity view (the long-retention storage format).
  const auto per_minute = aggregator.metrics().Resample(60);
  const pinsql::TemplateSeries* minute_series = per_minute.Find(select_id);
  std::printf("  1-min resample: %zu buckets, first bucket %.0f "
              "executions\n",
              minute_series->execution_count.size(),
              minute_series->execution_count[0]);

  // 5. Retention trimming (paper: raw logs expire after three days).
  const size_t dropped = archive.TrimBefore(60 * 1000);
  std::printf("retention trim dropped %zu records older than t=60s; %zu "
              "remain\n",
              dropped, archive.size());

  // 6. The estimator consumes the archived logs + the monitor's sampled
  //    session to produce per-template active sessions.
  pinsql::TimeSeries observed(60, 1, static_cast<size_t>(window_sec - 60));
  for (size_t i = 0; i < observed.size(); ++i) {
    observed[i] = 0.5;  // a quiet instance
  }
  const auto estimate = pinsql::core::EstimateSessions(
      archive, observed, 60, window_sec,
      pinsql::core::SessionEstimatorOptions{});
  std::printf("\nestimated active sessions over [60, %lld):\n",
              static_cast<long long>(window_sec));
  for (const auto& [sql_id, series] : estimate.per_template) {
    std::printf("  %s mean individual session %.3f\n",
                pinsql::HashToHex(sql_id).c_str(), series.Mean());
  }
  std::printf("  instance total %.3f (observed %.3f)\n",
              estimate.total.Mean(), observed.Mean());
  return 0;
}
