/// Quickstart: simulate one anomalous cloud-database instance, let PinSQL
/// detect the anomaly and pinpoint the root-cause SQL template, and print
/// the resulting rankings next to the ground truth.
///
///   $ ./build/examples/quickstart [anomaly_type] [seed]
///     anomaly_type: business_spike | poor_sql | mdl_lock | row_lock |
///                   flash_sale_flood | slow_drift | cache_stampede |
///                   replication_lag | migration_storm | compound
///
/// This exercises the whole public API: workload synthesis, the DB
/// simulator, the collection/aggregation pipeline, anomaly detection, the
/// session estimator, H-SQL and R-SQL identification, and repair
/// suggestions.

#include <cstdio>
#include <string>

#include "core/diagnoser.h"
#include "eval/case_generator.h"
#include "eval/runner.h"
#include "repair/rule_engine.h"
#include "util/strings.h"

namespace {

using pinsql::HashToHex;
using pinsql::workload::AnomalyType;

AnomalyType ParseType(const std::string& name) {
  for (AnomalyType type : pinsql::workload::AllAnomalyTypes()) {
    if (name == pinsql::workload::AnomalyTypeName(type)) return type;
  }
  return AnomalyType::kBusinessSpike;
}

void PrintTemplate(const pinsql::eval::AnomalyCaseData& data, uint64_t sql_id,
                   double score) {
  const pinsql::TemplateCatalogEntry* entry = data.logs.FindTemplate(sql_id);
  std::string text = entry != nullptr ? entry->template_text : "<unknown>";
  if (text.size() > 64) text = text.substr(0, 61) + "...";
  std::printf("    %s  score=%+.3f  %s\n", HashToHex(sql_id).c_str(), score,
              text.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const AnomalyType type =
      ParseType(argc > 1 ? argv[1] : "row_lock");
  const uint64_t seed = argc > 2 ? std::stoull(argv[2]) : 4242;

  std::printf("== PinSQL quickstart: injecting a '%s' anomaly ==\n\n",
              pinsql::workload::AnomalyTypeName(type));

  // 1. Simulate an instance with an injected anomaly.
  pinsql::eval::CaseGenOptions options;
  options.type = type;
  options.seed = seed;
  const pinsql::eval::AnomalyCaseData data =
      pinsql::eval::GenerateCase(options);

  std::printf("simulated %zu query-log records over %lld s, %zu templates\n",
              data.logs.size(),
              static_cast<long long>(data.window_end_sec -
                                     data.window_start_sec),
              data.logs.catalog().size());
  std::printf("injected anomaly: [%lld, %lld)\n",
              static_cast<long long>(data.injected_as),
              static_cast<long long>(data.injected_ae));
  if (data.detected) {
    std::printf("detected anomaly: [%lld, %lld) via %zu phenomena\n",
                static_cast<long long>(data.detected_as),
                static_cast<long long>(data.detected_ae),
                data.phenomena.size());
    for (const auto& p : data.phenomena) {
      std::printf("  - %s severity=%.1f\n", p.rule.c_str(), p.severity);
    }
  } else {
    std::printf("detection MISSED; falling back to injected period\n");
  }

  const pinsql::TimeSeries pre = data.metrics.active_session.Slice(
      data.window_start_sec, data.injected_as);
  const pinsql::TimeSeries during = data.metrics.active_session.Slice(
      data.injected_as, data.injected_ae);
  std::printf("active session mean: %.1f before, %.1f during (max %.0f); "
              "cpu %.0f%% -> %.0f%%\n",
              pre.Mean(), during.Mean(), during.Max(),
              data.metrics.cpu_usage.Slice(data.window_start_sec,
                                           data.injected_as).Mean(),
              data.metrics.cpu_usage.Slice(data.injected_as,
                                           data.injected_ae).Mean());

  // 2. Diagnose.
  const pinsql::core::DiagnosisInput input =
      pinsql::eval::MakeDiagnosisInput(data);
  pinsql::core::DiagnoserOptions diag_options;
  const pinsql::StatusOr<pinsql::core::DiagnosisResult> status_or =
      pinsql::core::Diagnose(input, diag_options);
  if (!status_or.ok()) {
    std::printf("diagnosis rejected: %s\n",
                status_or.status().ToString().c_str());
    return 1;
  }
  const pinsql::core::DiagnosisResult& result = *status_or;

  std::printf("\nground truth R-SQLs:\n");
  for (uint64_t id : data.rsql_truth) PrintTemplate(data, id, 0.0);

  std::printf("\ntop-5 H-SQLs (impact):\n");
  for (size_t i = 0; i < result.hsql_ranking.size() && i < 5; ++i) {
    PrintTemplate(data, result.hsql_ranking[i].sql_id,
                  result.hsql_ranking[i].impact);
  }
  std::printf("\ntop-5 R-SQLs:\n");
  for (size_t i = 0; i < result.rsql.ranking.size() && i < 5; ++i) {
    PrintTemplate(data, result.rsql.ranking[i], 0.0);
  }
  const int r_rank = pinsql::eval::RsqlRank(result.rsql.ranking, data);
  const int h_rank =
      pinsql::eval::HsqlRank(result.TopHsql(result.hsql_ranking.size()), data);
  std::printf("\nR-SQL first-hit rank: %d   H-SQL first-hit rank: %d\n",
              r_rank, h_rank);
  std::printf("stage times: estimate=%.2fs hsql=%.2fs rsql=%.2fs total=%.2fs\n",
              result.estimate_seconds, result.hsql_seconds,
              result.verify_seconds, result.total_seconds);
  std::printf("clusters=%zu selected=%zu verified=%zu fallback=%d\n",
              result.rsql.clusters.size(),
              result.rsql.selected_clusters.size(),
              result.rsql.verified.size(),
              result.rsql.verification_fallback ? 1 : 0);

  // 3. Repair suggestions for the pinpointed R-SQLs.
  const pinsql::repair::RepairRuleEngine rules =
      pinsql::repair::RepairRuleEngine::Default();
  const auto suggestions =
      rules.Suggest(data.phenomena, result.rsql.ranking, result.metrics,
                    input.anomaly_start_sec, input.anomaly_end_sec);
  std::printf("\nrepair suggestions (%zu):\n", suggestions.size());
  for (const auto& s : suggestions) {
    std::printf("  [%s] %s\n", s.matched_rule.c_str(),
                s.action.ToString().c_str());
  }
  return 0;
}
