// Serving demo: a durable fleet diagnosis server behind the HTTP/JSON API.
//
// Default mode runs the whole story in one process: a WAL-backed
// FleetService fronted by the serve::Server, tenant "acme" (instance 1)
// streaming a real incident second by second while tenant "noisy"
// (instance 2) floods ingest at ~10x its admitted budget. It then prints
// the per-tenant goodput table and the diagnosis report fetched back over
// HTTP — the abusive tenant is rate-limited with Retry-After guidance
// while acme's incident is diagnosed undisturbed.
//
//   ./build/examples/serve_demo
//
// Two-process mode (the README quickstart): run the server in one
// terminal, then drive it from a second process — the bundled client, or
// curl against the printed endpoints.
//
//   ./build/examples/serve_demo --serve --port 8080
//   ./build/examples/serve_demo --client --port 8080
//
// The server persists accepted records under --data-dir, so restarting it
// recovers the fleet state journaled by previous runs.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "faults/net_faults.h"
#include "fleet/fleet_service.h"
#include "serve/server.h"
#include "util/json.h"

namespace {

using pinsql::Json;
using pinsql::QueryLogRecord;
using pinsql::TemplateCatalogEntry;

// --- Tiny blocking HTTP client -------------------------------------------

struct Reply {
  int status = 0;
  std::string body;
};

Reply Request(uint16_t port, const std::string& method,
              const std::string& target, const std::string& tenant,
              const std::string& body = "") {
  Reply reply;
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return reply;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return reply;
  }
  std::string wire = method + " " + target + " HTTP/1.1\r\n";
  if (!tenant.empty()) wire += "X-Pinsql-Tenant: " + tenant + "\r\n";
  if (!body.empty()) {
    wire += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  wire += "Connection: close\r\n\r\n" + body;
  size_t off = 0;
  while (off < wire.size()) {
    const ssize_t n =
        ::send(fd, wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return reply;
    }
    off += static_cast<size_t>(n);
  }
  std::string buffer;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  if (buffer.size() >= 12 && buffer.compare(0, 5, "HTTP/") == 0) {
    reply.status = std::atoi(buffer.c_str() + 9);
    const size_t header_end = buffer.find("\r\n\r\n");
    if (header_end != std::string::npos) {
      reply.body = buffer.substr(header_end + 4);
    }
  }
  return reply;
}

// --- The incident acme streams -------------------------------------------

std::string SecondBody(int64_t sec, bool anomalous) {
  Json root = Json::MakeObject();
  root.Set("instance", 1);
  Json records = Json::MakeArray();
  uint64_t state = static_cast<uint64_t>(sec) * 2654435761ULL + 17;
  const int count = anomalous ? 46 : 6;
  for (int i = 0; i < count; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    Json r = Json::MakeObject();
    r.Set("sql_id", i < 6 ? static_cast<int64_t>(1 + (state >> 33) % 4)
                          : static_cast<int64_t>(9));
    r.Set("arrival_ms", sec * 1000 + static_cast<int64_t>((state >> 13) %
                                                          1000));
    r.Set("response_ms", i < 6 ? 2.0 : 450.0);
    r.Set("examined_rows", i < 6 ? 20 : 500'000);
    records.Append(std::move(r));
  }
  root.Set("records", std::move(records));
  Json samples = Json::MakeArray();
  Json sample = Json::MakeObject();
  const double session = anomalous ? 380.0 : 4.0;
  sample.Set("sec", sec);
  sample.Set("active_session", session);
  sample.Set("cpu_usage", session * 0.05);
  sample.Set("iops_usage", session * 0.1);
  samples.Append(std::move(sample));
  root.Set("samples", std::move(samples));
  return root.Dump();
}

int RunClient(uint16_t port) {
  std::printf("Streaming a 320-second incident as tenant \"acme\" "
              "(instance 1)...\n");
  const int64_t t0 = 100'000;
  const int64_t onset = t0 + 200;
  int sent = 0, accepted = 0;
  for (int64_t sec = t0; sec < onset + 120; ++sec) {
    ++sent;
    const Reply reply = Request(port, "POST", "/v1/ingest", "acme",
                                SecondBody(sec, sec >= onset));
    if (reply.status == 202) ++accepted;
  }
  std::printf("  %d/%d seconds accepted\n", accepted, sent);
  if (accepted == 0) {
    std::fprintf(stderr, "nothing accepted — is the server running?\n");
    return 1;
  }
  std::printf("Polling GET /v1/reports for the diagnosis...\n");
  for (int attempt = 0; attempt < 500; ++attempt) {
    const Reply reply = Request(port, "GET", "/v1/reports?limit=1", "acme");
    if (reply.status == 200 &&
        reply.body.find("\"ok\":true") != std::string::npos) {
      std::printf("\nDiagnosis served over HTTP:\n%s\n", reply.body.c_str());
      return 0;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  std::fprintf(stderr, "no diagnosis surfaced\n");
  return 1;
}

// --- Server assembly ------------------------------------------------------

struct Demo {
  std::unique_ptr<pinsql::fleet::FleetService> fleet;
  std::unique_ptr<pinsql::serve::Server> server;
};

Demo StartServer(const std::string& data_dir, uint16_t port) {
  Demo demo;
  pinsql::fleet::FleetOptions foptions;
  foptions.data_dir = data_dir;  // journaled: restarts recover state
  demo.fleet = std::make_unique<pinsql::fleet::FleetService>(
      std::vector<pinsql::fleet::FleetInstanceSpec>{{1, 0}, {2, 0}},
      foptions);
  for (uint64_t id : {1, 2, 3, 4}) {
    TemplateCatalogEntry entry;
    entry.template_text = "SELECT * FROM t WHERE k = ?";
    entry.kind = pinsql::sqltpl::StatementKind::kSelect;
    entry.tables = {"t"};
    demo.fleet->RegisterTemplateFleetWide(id, entry);
  }
  TemplateCatalogEntry heavy;
  heavy.template_text = "SELECT * FROM big ORDER BY v";
  heavy.kind = pinsql::sqltpl::StatementKind::kSelect;
  heavy.tables = {"big"};
  demo.fleet->RegisterTemplateFleetWide(9, heavy);
  demo.fleet->Start();

  pinsql::serve::ServerOptions soptions;
  soptions.port = port;
  pinsql::serve::TenantQuota acme;
  acme.records_per_sec = 100'000.0;
  acme.record_burst = 200'000.0;
  acme.bytes_per_sec = 64.0 * 1024 * 1024;
  acme.byte_burst = 128.0 * 1024 * 1024;
  acme.queue_capacity_batches = 4096;
  acme.weight = 4;
  acme.instances = {1};
  soptions.admission.tenants["acme"] = acme;
  pinsql::serve::TenantQuota noisy;
  noisy.records_per_sec = 1000.0;  // the flood offers ~10x this
  noisy.record_burst = 2000.0;
  noisy.bytes_per_sec = 512.0 * 1024;
  noisy.byte_burst = 1024.0 * 1024;
  noisy.queue_capacity_batches = 16;
  noisy.weight = 1;
  noisy.instances = {2};
  soptions.admission.tenants["noisy"] = noisy;

  demo.server = std::make_unique<pinsql::serve::Server>(demo.fleet.get(),
                                                        soptions);
  if (const pinsql::Status status = demo.server->Start(); !status.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 status.message().c_str());
    demo.fleet->Stop();
    demo.fleet.reset();
    demo.server.reset();
  }
  return demo;
}

void PrintTenantTable(const pinsql::serve::Server& server) {
  std::printf("\n%8s | %10s %10s | %12s %10s %6s\n", "tenant", "admitted",
              "delivered", "rate-limited", "over-quota", "shed");
  std::printf("---------+-----------------------+"
              "-------------------------------\n");
  for (const auto& [name, stats] : server.tenant_stats()) {
    std::printf("%8s | %10llu %10llu | %12llu %10llu %6llu\n", name.c_str(),
                static_cast<unsigned long long>(stats.records_admitted),
                static_cast<unsigned long long>(stats.records_delivered),
                static_cast<unsigned long long>(stats.dropped_rate_limited),
                static_cast<unsigned long long>(stats.dropped_over_quota),
                static_cast<unsigned long long>(stats.dropped_shed));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string data_dir = "data/serve_demo";
  uint16_t port = 0;  // ephemeral unless --port is given
  bool serve_only = false, client_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--serve") == 0) serve_only = true;
    if (std::strcmp(argv[i], "--client") == 0) client_only = true;
    if (std::strcmp(argv[i], "--data-dir") == 0 && i + 1 < argc) {
      data_dir = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = static_cast<uint16_t>(std::atoi(argv[i + 1]));
    }
  }

  if (client_only) {
    if (port == 0) {
      std::fprintf(stderr, "--client requires --port\n");
      return 1;
    }
    return RunClient(port);
  }

  Demo demo = StartServer(data_dir, port);
  if (!demo.server) return 1;
  std::printf("Fleet diagnosis server on http://127.0.0.1:%u "
              "(journal: %s)\n",
              demo.server->port(), data_dir.c_str());

  if (serve_only) {
    std::printf(
        "\nEndpoints (tenant header required on ingest/reads):\n"
        "  curl -s http://127.0.0.1:%u/v1/healthz\n"
        "  curl -s -H 'X-Pinsql-Tenant: acme' "
        "http://127.0.0.1:%u/v1/reports\n"
        "  ./build/examples/serve_demo --client --port %u\n"
        "\nPress ENTER (or close stdin) to stop.\n",
        demo.server->port(), demo.server->port(), demo.server->port());
    std::getchar();
    demo.server->Stop();
    PrintTenantTable(*demo.server);
    demo.fleet->Stop();
    return 0;
  }

  // Self-contained mode: the abusive tenant floods from one thread while
  // acme streams its incident from another — then fetch the report back.
  std::printf("Tenant \"noisy\" floods at ~10x budget while \"acme\" "
              "streams an incident...\n");
  pinsql::faults::NetChaosOptions coptions;
  coptions.port = demo.server->port();
  coptions.tenant = "noisy";
  coptions.instance_id = 2;
  coptions.flood_requests = 30;
  coptions.flood_records_per_request = 400;
  pinsql::faults::NetChaosStats flood_stats;
  std::thread flooder([&] {
    pinsql::faults::NetChaosClient client(coptions);
    flood_stats = client.RunTenantFlood();
  });
  const int rc = RunClient(demo.server->port());
  flooder.join();

  std::printf("\nFlood outcome: %d sent, %d accepted, %d rejected "
              "(%d carried Retry-After)\n",
              flood_stats.flood_sent, flood_stats.flood_accepted,
              flood_stats.flood_rejected, flood_stats.flood_retry_after);
  PrintTenantTable(*demo.server);
  demo.server->Stop();
  demo.fleet->Stop();
  return rc;
}
