/// Example: a planned business surge handled by AutoScale instead of
/// throttling (paper Sec. VII: "increased SQL traffic is a phenomenon
/// known in advance by the business department, where we should not apply
/// throttling").
///
/// PinSQL pinpoints the surging template; a user-supplied JSON rule config
/// (the Fig. 5 mechanism) maps the active-session anomaly to an AutoScale
/// action, which is then executed against the live instance — and the
/// example re-simulates the surge on the scaled-up instance to show the
/// session recovering without rejecting a single query.

#include <cstdio>

#include "core/diagnoser.h"
#include "dbsim/engine.h"
#include "dbsim/monitor.h"
#include "eval/case_generator.h"
#include "eval/runner.h"
#include "repair/rule_engine.h"
#include "repair/supervisor.h"
#include "util/strings.h"
#include "workload/arrivals.h"

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::stoull(argv[1]) : 31337;

  pinsql::eval::CaseGenOptions options;
  options.type = pinsql::workload::AnomalyType::kBusinessSpike;
  options.seed = seed;
  const pinsql::eval::AnomalyCaseData data =
      pinsql::eval::GenerateCase(options);

  std::printf("== Business surge: diagnose, then AutoScale ==\n\n");
  const double before_mean = data.metrics.active_session
                                 .Slice(data.injected_as, data.injected_ae)
                                 .Mean();
  std::printf("surge active session: %.1f (baseline %.1f)\n", before_mean,
              data.metrics.active_session
                  .Slice(data.window_start_sec, data.injected_as)
                  .Mean());

  // 1. Pinpoint the surging template.
  const pinsql::core::DiagnosisInput input =
      pinsql::eval::MakeDiagnosisInput(data);
  const pinsql::StatusOr<pinsql::core::DiagnosisResult> status_or =
      pinsql::core::Diagnose(input, pinsql::core::DiagnoserOptions{});
  if (!status_or.ok()) {
    std::printf("diagnosis rejected: %s\n",
                status_or.status().ToString().c_str());
    return 1;
  }
  const pinsql::core::DiagnosisResult& result = *status_or;
  if (result.rsql.ranking.empty()) {
    std::printf("no R-SQL found\n");
    return 1;
  }
  const uint64_t rsql = result.rsql.ranking[0];
  std::printf("PinSQL R-SQL: %s (%s)\n", pinsql::HashToHex(rsql).c_str(),
              rsql == data.rsql_truth[0] ? "matches injected surge"
                                         : "NOT the injected surge");

  // 2. The business expects this traffic: configure AutoScale, not
  //    throttling (user-editable JSON, paper Fig. 5).
  const auto rules = pinsql::repair::RepairRuleEngine::FromJsonText(R"({
    "rules": [
      {"anomaly": "active_session.spike",
       "template_feature": "execution_count.sudden_increase",
       "action": "autoscale",
       "params": {"add_cores": 8, "io_factor": 3},
       "auto_execute": true,
       "notify": ["dingtalk"]},
      {"anomaly": "active_session.level_shift",
       "template_feature": "execution_count.sudden_increase",
       "action": "autoscale",
       "params": {"add_cores": 8, "io_factor": 3},
       "auto_execute": true}
    ]})");
  if (!rules.ok()) {
    std::printf("config error: %s\n", rules.status().ToString().c_str());
    return 1;
  }
  const auto suggestions =
      rules->Suggest(data.phenomena, result.rsql.ranking, result.metrics,
                     input.anomaly_start_sec, input.anomaly_end_sec);
  std::printf("\nsuggestions from the rule config:\n");
  for (const auto& s : suggestions) {
    std::printf("  [%s] %s%s\n", s.matched_rule.c_str(),
                s.action.ToString().c_str(),
                s.auto_execute ? "  (auto-execute)" : "");
  }
  if (suggestions.empty()) {
    std::printf("  (none — anomaly did not match the configured rules)\n");
    return 1;
  }

  // 3. Replay the same surge on a scaled-up instance. Auto-executed
  //    actions go through the RepairSupervisor: guardrails can refuse an
  //    over-sized scale-up, and the verification window decides afterwards
  //    whether the scaling actually absorbed the surge.
  pinsql::dbsim::Engine engine(options.sim);
  pinsql::LogStore logs;
  engine.AttachLogStore(&logs);
  pinsql::repair::SupervisorOptions sup_options;
  sup_options.seed = seed;
  pinsql::repair::RepairSupervisor supervisor(&engine, sup_options);
  for (const auto& s : suggestions) {
    if (!s.auto_execute) continue;
    const auto outcome = supervisor.Apply(s.action, 0.0, before_mean);
    if (!outcome.ok()) {
      std::printf("  supervisor refused: %s\n",
                  outcome.status().ToString().c_str());
    }
  }
  engine.AddArrivals(pinsql::workload::GenerateArrivals(
      data.workload, data.overrides, data.window_start_sec,
      data.window_end_sec, data.arrival_seed));
  engine.RunToCompletion();
  pinsql::Rng monitor_rng(1);
  const auto after = pinsql::dbsim::ComputeInstanceMetrics(
      engine.completed(), data.window_start_sec, data.window_end_sec,
      engine.EffectiveCores(), options.sim.io_capacity_ms_per_sec,
      &monitor_rng);
  const double after_mean =
      after.active_session.Slice(data.injected_as, data.injected_ae).Mean();
  std::printf("\nsurge active session after scaling %0.f -> %0.f cores: "
              "%.1f -> %.1f (throttled queries: %zu)\n",
              options.sim.cpu_cores, engine.cpu_cores(), before_mean,
              after_mean, engine.throttled_count());
  std::printf("%s\n", after_mean < before_mean
                          ? "AutoScale absorbed the surge."
                          : "surge unchanged (already CPU-light)");

  // 4. Settle the verification window against the post-replay sessions:
  //    an ineffective scale-up is rolled back automatically.
  supervisor.Tick(1000.0 * static_cast<double>(data.window_end_sec),
                  after_mean);
  std::printf("\nsupervised repair audit trail:\n");
  for (const auto& event : supervisor.events()) {
    std::printf("  %s\n", event.ToString().c_str());
  }
  return 0;
}
