
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table3_session_estimation.cc" "bench/CMakeFiles/bench_table3_session_estimation.dir/bench_table3_session_estimation.cc.o" "gcc" "bench/CMakeFiles/bench_table3_session_estimation.dir/bench_table3_session_estimation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/pinsql_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/pinsql_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pinsql_core.dir/DependInfo.cmake"
  "/root/repo/build/src/repair/CMakeFiles/pinsql_repair.dir/DependInfo.cmake"
  "/root/repo/build/src/anomaly/CMakeFiles/pinsql_anomaly.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pinsql_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/pinsql_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/dbsim/CMakeFiles/pinsql_dbsim.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/pinsql_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/logstore/CMakeFiles/pinsql_logstore.dir/DependInfo.cmake"
  "/root/repo/build/src/sqltpl/CMakeFiles/pinsql_sqltpl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pinsql_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
