# Empty dependencies file for bench_table2_optimization_gain.
# This may be replaced when dependencies are built.
