file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_repair_case.dir/bench_fig8_repair_case.cc.o"
  "CMakeFiles/bench_fig8_repair_case.dir/bench_fig8_repair_case.cc.o.d"
  "bench_fig8_repair_case"
  "bench_fig8_repair_case.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_repair_case.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
