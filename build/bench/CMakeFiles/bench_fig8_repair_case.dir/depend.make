# Empty dependencies file for bench_fig8_repair_case.
# This may be replaced when dependencies are built.
