file(REMOVE_RECURSE
  "CMakeFiles/sqltpl_test.dir/sqltpl_test.cc.o"
  "CMakeFiles/sqltpl_test.dir/sqltpl_test.cc.o.d"
  "sqltpl_test"
  "sqltpl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqltpl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
