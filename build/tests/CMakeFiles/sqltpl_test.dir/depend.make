# Empty dependencies file for sqltpl_test.
# This may be replaced when dependencies are built.
