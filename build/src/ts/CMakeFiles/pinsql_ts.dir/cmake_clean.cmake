file(REMOVE_RECURSE
  "CMakeFiles/pinsql_ts.dir/stats.cc.o"
  "CMakeFiles/pinsql_ts.dir/stats.cc.o.d"
  "CMakeFiles/pinsql_ts.dir/time_series.cc.o"
  "CMakeFiles/pinsql_ts.dir/time_series.cc.o.d"
  "CMakeFiles/pinsql_ts.dir/tukey.cc.o"
  "CMakeFiles/pinsql_ts.dir/tukey.cc.o.d"
  "libpinsql_ts.a"
  "libpinsql_ts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pinsql_ts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
