# Empty compiler generated dependencies file for pinsql_ts.
# This may be replaced when dependencies are built.
