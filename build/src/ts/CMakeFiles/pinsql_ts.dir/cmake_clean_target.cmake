file(REMOVE_RECURSE
  "libpinsql_ts.a"
)
