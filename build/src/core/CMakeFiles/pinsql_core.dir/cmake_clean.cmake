file(REMOVE_RECURSE
  "CMakeFiles/pinsql_core.dir/diagnoser.cc.o"
  "CMakeFiles/pinsql_core.dir/diagnoser.cc.o.d"
  "CMakeFiles/pinsql_core.dir/hsql.cc.o"
  "CMakeFiles/pinsql_core.dir/hsql.cc.o.d"
  "CMakeFiles/pinsql_core.dir/report.cc.o"
  "CMakeFiles/pinsql_core.dir/report.cc.o.d"
  "CMakeFiles/pinsql_core.dir/rsql.cc.o"
  "CMakeFiles/pinsql_core.dir/rsql.cc.o.d"
  "CMakeFiles/pinsql_core.dir/session_estimator.cc.o"
  "CMakeFiles/pinsql_core.dir/session_estimator.cc.o.d"
  "libpinsql_core.a"
  "libpinsql_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pinsql_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
