file(REMOVE_RECURSE
  "libpinsql_core.a"
)
