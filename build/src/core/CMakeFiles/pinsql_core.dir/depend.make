# Empty dependencies file for pinsql_core.
# This may be replaced when dependencies are built.
