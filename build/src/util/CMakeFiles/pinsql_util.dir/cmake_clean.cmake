file(REMOVE_RECURSE
  "CMakeFiles/pinsql_util.dir/json.cc.o"
  "CMakeFiles/pinsql_util.dir/json.cc.o.d"
  "CMakeFiles/pinsql_util.dir/status.cc.o"
  "CMakeFiles/pinsql_util.dir/status.cc.o.d"
  "CMakeFiles/pinsql_util.dir/strings.cc.o"
  "CMakeFiles/pinsql_util.dir/strings.cc.o.d"
  "libpinsql_util.a"
  "libpinsql_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pinsql_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
