# Empty dependencies file for pinsql_util.
# This may be replaced when dependencies are built.
