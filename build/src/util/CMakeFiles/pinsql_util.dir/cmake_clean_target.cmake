file(REMOVE_RECURSE
  "libpinsql_util.a"
)
