file(REMOVE_RECURSE
  "libpinsql_sqltpl.a"
)
