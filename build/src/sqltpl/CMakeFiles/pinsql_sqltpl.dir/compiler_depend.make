# Empty compiler generated dependencies file for pinsql_sqltpl.
# This may be replaced when dependencies are built.
