file(REMOVE_RECURSE
  "CMakeFiles/pinsql_sqltpl.dir/fingerprint.cc.o"
  "CMakeFiles/pinsql_sqltpl.dir/fingerprint.cc.o.d"
  "CMakeFiles/pinsql_sqltpl.dir/tokenizer.cc.o"
  "CMakeFiles/pinsql_sqltpl.dir/tokenizer.cc.o.d"
  "libpinsql_sqltpl.a"
  "libpinsql_sqltpl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pinsql_sqltpl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
