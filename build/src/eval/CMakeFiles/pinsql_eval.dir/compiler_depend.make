# Empty compiler generated dependencies file for pinsql_eval.
# This may be replaced when dependencies are built.
