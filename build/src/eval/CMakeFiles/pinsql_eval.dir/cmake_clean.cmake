file(REMOVE_RECURSE
  "CMakeFiles/pinsql_eval.dir/case_generator.cc.o"
  "CMakeFiles/pinsql_eval.dir/case_generator.cc.o.d"
  "CMakeFiles/pinsql_eval.dir/metrics.cc.o"
  "CMakeFiles/pinsql_eval.dir/metrics.cc.o.d"
  "CMakeFiles/pinsql_eval.dir/runner.cc.o"
  "CMakeFiles/pinsql_eval.dir/runner.cc.o.d"
  "libpinsql_eval.a"
  "libpinsql_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pinsql_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
