file(REMOVE_RECURSE
  "libpinsql_eval.a"
)
