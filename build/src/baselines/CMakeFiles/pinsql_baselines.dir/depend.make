# Empty dependencies file for pinsql_baselines.
# This may be replaced when dependencies are built.
