file(REMOVE_RECURSE
  "libpinsql_baselines.a"
)
