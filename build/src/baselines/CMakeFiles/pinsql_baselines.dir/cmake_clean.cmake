file(REMOVE_RECURSE
  "CMakeFiles/pinsql_baselines.dir/top_sql.cc.o"
  "CMakeFiles/pinsql_baselines.dir/top_sql.cc.o.d"
  "libpinsql_baselines.a"
  "libpinsql_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pinsql_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
