file(REMOVE_RECURSE
  "CMakeFiles/pinsql_logstore.dir/log_store.cc.o"
  "CMakeFiles/pinsql_logstore.dir/log_store.cc.o.d"
  "libpinsql_logstore.a"
  "libpinsql_logstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pinsql_logstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
