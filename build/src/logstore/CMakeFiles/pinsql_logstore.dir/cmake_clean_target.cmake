file(REMOVE_RECURSE
  "libpinsql_logstore.a"
)
