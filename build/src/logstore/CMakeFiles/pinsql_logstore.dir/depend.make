# Empty dependencies file for pinsql_logstore.
# This may be replaced when dependencies are built.
