file(REMOVE_RECURSE
  "libpinsql_workload.a"
)
