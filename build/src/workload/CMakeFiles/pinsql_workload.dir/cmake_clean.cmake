file(REMOVE_RECURSE
  "CMakeFiles/pinsql_workload.dir/arrivals.cc.o"
  "CMakeFiles/pinsql_workload.dir/arrivals.cc.o.d"
  "CMakeFiles/pinsql_workload.dir/scenario.cc.o"
  "CMakeFiles/pinsql_workload.dir/scenario.cc.o.d"
  "CMakeFiles/pinsql_workload.dir/workload.cc.o"
  "CMakeFiles/pinsql_workload.dir/workload.cc.o.d"
  "libpinsql_workload.a"
  "libpinsql_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pinsql_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
