# Empty dependencies file for pinsql_workload.
# This may be replaced when dependencies are built.
