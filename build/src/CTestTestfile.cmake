# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("ts")
subdirs("sqltpl")
subdirs("logstore")
subdirs("pipeline")
subdirs("dbsim")
subdirs("workload")
subdirs("anomaly")
subdirs("core")
subdirs("repair")
subdirs("baselines")
subdirs("eval")
