
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/anomaly/detectors.cc" "src/anomaly/CMakeFiles/pinsql_anomaly.dir/detectors.cc.o" "gcc" "src/anomaly/CMakeFiles/pinsql_anomaly.dir/detectors.cc.o.d"
  "/root/repo/src/anomaly/pettitt.cc" "src/anomaly/CMakeFiles/pinsql_anomaly.dir/pettitt.cc.o" "gcc" "src/anomaly/CMakeFiles/pinsql_anomaly.dir/pettitt.cc.o.d"
  "/root/repo/src/anomaly/phenomenon.cc" "src/anomaly/CMakeFiles/pinsql_anomaly.dir/phenomenon.cc.o" "gcc" "src/anomaly/CMakeFiles/pinsql_anomaly.dir/phenomenon.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ts/CMakeFiles/pinsql_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pinsql_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
