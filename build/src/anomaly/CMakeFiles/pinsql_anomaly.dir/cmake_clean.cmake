file(REMOVE_RECURSE
  "CMakeFiles/pinsql_anomaly.dir/detectors.cc.o"
  "CMakeFiles/pinsql_anomaly.dir/detectors.cc.o.d"
  "CMakeFiles/pinsql_anomaly.dir/pettitt.cc.o"
  "CMakeFiles/pinsql_anomaly.dir/pettitt.cc.o.d"
  "CMakeFiles/pinsql_anomaly.dir/phenomenon.cc.o"
  "CMakeFiles/pinsql_anomaly.dir/phenomenon.cc.o.d"
  "libpinsql_anomaly.a"
  "libpinsql_anomaly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pinsql_anomaly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
