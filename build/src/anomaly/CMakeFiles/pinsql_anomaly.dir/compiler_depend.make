# Empty compiler generated dependencies file for pinsql_anomaly.
# This may be replaced when dependencies are built.
