file(REMOVE_RECURSE
  "libpinsql_anomaly.a"
)
