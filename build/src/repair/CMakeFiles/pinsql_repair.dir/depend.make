# Empty dependencies file for pinsql_repair.
# This may be replaced when dependencies are built.
