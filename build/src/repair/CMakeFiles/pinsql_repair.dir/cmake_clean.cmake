file(REMOVE_RECURSE
  "CMakeFiles/pinsql_repair.dir/actions.cc.o"
  "CMakeFiles/pinsql_repair.dir/actions.cc.o.d"
  "CMakeFiles/pinsql_repair.dir/rule_engine.cc.o"
  "CMakeFiles/pinsql_repair.dir/rule_engine.cc.o.d"
  "libpinsql_repair.a"
  "libpinsql_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pinsql_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
