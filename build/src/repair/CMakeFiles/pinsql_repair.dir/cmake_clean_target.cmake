file(REMOVE_RECURSE
  "libpinsql_repair.a"
)
