file(REMOVE_RECURSE
  "CMakeFiles/pinsql_dbsim.dir/closed_loop.cc.o"
  "CMakeFiles/pinsql_dbsim.dir/closed_loop.cc.o.d"
  "CMakeFiles/pinsql_dbsim.dir/engine.cc.o"
  "CMakeFiles/pinsql_dbsim.dir/engine.cc.o.d"
  "CMakeFiles/pinsql_dbsim.dir/lock_manager.cc.o"
  "CMakeFiles/pinsql_dbsim.dir/lock_manager.cc.o.d"
  "CMakeFiles/pinsql_dbsim.dir/monitor.cc.o"
  "CMakeFiles/pinsql_dbsim.dir/monitor.cc.o.d"
  "libpinsql_dbsim.a"
  "libpinsql_dbsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pinsql_dbsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
