
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dbsim/closed_loop.cc" "src/dbsim/CMakeFiles/pinsql_dbsim.dir/closed_loop.cc.o" "gcc" "src/dbsim/CMakeFiles/pinsql_dbsim.dir/closed_loop.cc.o.d"
  "/root/repo/src/dbsim/engine.cc" "src/dbsim/CMakeFiles/pinsql_dbsim.dir/engine.cc.o" "gcc" "src/dbsim/CMakeFiles/pinsql_dbsim.dir/engine.cc.o.d"
  "/root/repo/src/dbsim/lock_manager.cc" "src/dbsim/CMakeFiles/pinsql_dbsim.dir/lock_manager.cc.o" "gcc" "src/dbsim/CMakeFiles/pinsql_dbsim.dir/lock_manager.cc.o.d"
  "/root/repo/src/dbsim/monitor.cc" "src/dbsim/CMakeFiles/pinsql_dbsim.dir/monitor.cc.o" "gcc" "src/dbsim/CMakeFiles/pinsql_dbsim.dir/monitor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/logstore/CMakeFiles/pinsql_logstore.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/pinsql_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/sqltpl/CMakeFiles/pinsql_sqltpl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pinsql_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
