file(REMOVE_RECURSE
  "libpinsql_dbsim.a"
)
