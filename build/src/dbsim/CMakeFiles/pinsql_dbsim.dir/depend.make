# Empty dependencies file for pinsql_dbsim.
# This may be replaced when dependencies are built.
