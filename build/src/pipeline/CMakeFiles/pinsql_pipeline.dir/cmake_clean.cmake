file(REMOVE_RECURSE
  "CMakeFiles/pinsql_pipeline.dir/stream_aggregator.cc.o"
  "CMakeFiles/pinsql_pipeline.dir/stream_aggregator.cc.o.d"
  "CMakeFiles/pinsql_pipeline.dir/template_metrics.cc.o"
  "CMakeFiles/pinsql_pipeline.dir/template_metrics.cc.o.d"
  "libpinsql_pipeline.a"
  "libpinsql_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pinsql_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
