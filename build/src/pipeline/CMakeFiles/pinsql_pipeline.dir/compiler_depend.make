# Empty compiler generated dependencies file for pinsql_pipeline.
# This may be replaced when dependencies are built.
