file(REMOVE_RECURSE
  "libpinsql_pipeline.a"
)
