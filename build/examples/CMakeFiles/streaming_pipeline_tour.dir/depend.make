# Empty dependencies file for streaming_pipeline_tour.
# This may be replaced when dependencies are built.
