file(REMOVE_RECURSE
  "CMakeFiles/streaming_pipeline_tour.dir/streaming_pipeline_tour.cpp.o"
  "CMakeFiles/streaming_pipeline_tour.dir/streaming_pipeline_tour.cpp.o.d"
  "streaming_pipeline_tour"
  "streaming_pipeline_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_pipeline_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
