file(REMOVE_RECURSE
  "CMakeFiles/lock_contention_investigation.dir/lock_contention_investigation.cpp.o"
  "CMakeFiles/lock_contention_investigation.dir/lock_contention_investigation.cpp.o.d"
  "lock_contention_investigation"
  "lock_contention_investigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_contention_investigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
