# Empty dependencies file for lock_contention_investigation.
# This may be replaced when dependencies are built.
