# Empty compiler generated dependencies file for business_spike_autoscale.
# This may be replaced when dependencies are built.
