file(REMOVE_RECURSE
  "CMakeFiles/business_spike_autoscale.dir/business_spike_autoscale.cpp.o"
  "CMakeFiles/business_spike_autoscale.dir/business_spike_autoscale.cpp.o.d"
  "business_spike_autoscale"
  "business_spike_autoscale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/business_spike_autoscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
