#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "dbsim/engine.h"
#include "faults/action_faults.h"
#include "online/replay.h"
#include "online/service.h"
#include "pipeline/template_metrics.h"
#include "repair/supervisor.h"

namespace pinsql::online {
namespace {

QueryLogRecord Rec(int64_t arrival_ms, uint64_t sql_id, double response = 2.0,
                   int64_t rows = 10) {
  QueryLogRecord r;
  r.arrival_ms = arrival_ms;
  r.sql_id = sql_id;
  r.response_ms = response;
  r.examined_rows = rows;
  return r;
}

PerfSample Sample(int64_t sec, double session) {
  PerfSample s;
  s.sec = sec;
  s.active_session = session;
  s.cpu_usage = session * 0.05;
  s.iops_usage = session * 0.1;
  return s;
}

/// Deterministic pseudo-random record stream (no library RNG so the test
/// is hermetic across platforms).
std::vector<QueryLogRecord> SyntheticRecords(int64_t t0_sec, int64_t t1_sec,
                                             int per_sec, uint64_t seed) {
  std::vector<QueryLogRecord> records;
  uint64_t state = seed * 6364136223846793005ULL + 1442695040888963407ULL;
  for (int64_t sec = t0_sec; sec < t1_sec; ++sec) {
    for (int i = 0; i < per_sec; ++i) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      QueryLogRecord r;
      r.sql_id = 1 + (state >> 33) % 7;
      r.arrival_ms = sec * 1000 + static_cast<int64_t>((state >> 17) % 1000);
      r.response_ms = 1.0 + static_cast<double>((state >> 7) % 50);
      r.examined_rows = static_cast<int64_t>(state % 200);
      records.push_back(r);
    }
  }
  return records;
}

// --- StreamIngestor ------------------------------------------------------

TEST(StreamIngestorTest, SnapshotMatchesBatchAggregation) {
  const int64_t t0 = 5000, t1 = 5120;
  const auto records = SyntheticRecords(t0, t1, 13, 42);

  IngestorOptions options;
  options.window_sec = 600;
  StreamIngestor ingestor(options);
  ASSERT_TRUE(ingestor.IngestMetrics(Sample(t1, 5.0)));
  for (const auto& r : records) ASSERT_TRUE(ingestor.IngestRecord(r));
  ingestor.Pump();

  // Batch reference: the offline aggregation over the same records.
  TemplateMetricsStore batch(t0, t1, 1);
  for (const auto& r : records) batch.Accumulate(r);

  const TemplateMetricsStore snap = ingestor.SnapshotTemplates(t0, t1);
  ASSERT_EQ(snap.num_templates(), batch.num_templates());
  for (const uint64_t sql_id : batch.SqlIdsSorted()) {
    const TemplateSeries* b = batch.Find(sql_id);
    const TemplateSeries* s = snap.Find(sql_id);
    ASSERT_NE(s, nullptr) << "template " << sql_id << " missing";
    // Bit-equality, not approximate: each ring cell is the same sequential
    // per-template fold the batch store performs.
    EXPECT_EQ(s->execution_count.values(), b->execution_count.values());
    EXPECT_EQ(s->total_response_ms.values(), b->total_response_ms.values());
    EXPECT_EQ(s->examined_rows.values(), b->examined_rows.values());
  }
}

TEST(StreamIngestorTest, BackpressureDropsAreCounted) {
  IngestorOptions options;
  options.num_shards = 1;
  options.shard_queue_capacity = 8;
  StreamIngestor ingestor(options);
  size_t accepted = 0, rejected = 0;
  for (int i = 0; i < 20; ++i) {
    if (ingestor.IngestRecord(Rec(1000 + i, 1))) {
      ++accepted;
    } else {
      ++rejected;
    }
  }
  EXPECT_EQ(accepted, 8u);
  EXPECT_EQ(rejected, 12u);
  const IngestStats stats = ingestor.stats();
  // records_enqueued counts every offer; backpressure drops are the slice
  // of it that never made a queue.
  EXPECT_EQ(stats.records_enqueued, 20u);
  EXPECT_EQ(stats.records_dropped_backpressure, 12u);
  EXPECT_EQ(stats.records_staged, 8u);
  ingestor.Pump();
  EXPECT_EQ(ingestor.stats().records_folded, 8u);
}

TEST(StreamIngestorTest, LateRecordsAreDroppedAndCounted) {
  IngestorOptions options;
  options.window_sec = 600;
  options.late_grace_sec = 60;
  StreamIngestor ingestor(options);
  ASSERT_TRUE(ingestor.IngestMetrics(Sample(10'000, 5.0)));
  // Older than watermark - grace: dropped at fold time, with the drop
  // accounted (nothing leaves the pipeline silently).
  ASSERT_TRUE(ingestor.IngestRecord(Rec(9'000'000, 1)));
  ASSERT_TRUE(ingestor.IngestRecord(Rec(9'990'000, 2)));
  ingestor.Pump();
  const IngestStats stats = ingestor.stats();
  EXPECT_EQ(stats.records_dropped_late, 1u);
  EXPECT_EQ(stats.records_folded, 1u);
}

TEST(StreamIngestorTest, StaleMetricSamplesAreDropped) {
  IngestorOptions options;
  options.window_sec = 100;
  StreamIngestor ingestor(options);
  ASSERT_TRUE(ingestor.IngestMetrics(Sample(1000, 5.0)));
  EXPECT_FALSE(ingestor.IngestMetrics(Sample(900, 4.0)));  // outside window
  EXPECT_TRUE(ingestor.IngestMetrics(Sample(950, 4.0)));   // inside window
  EXPECT_EQ(ingestor.stats().metric_samples_dropped, 1u);
  ASSERT_TRUE(ingestor.watermark_sec().has_value());
  EXPECT_EQ(*ingestor.watermark_sec(), 1000);
  ASSERT_TRUE(ingestor.SampleAt(950).has_value());
  EXPECT_DOUBLE_EQ(ingestor.SampleAt(950)->active_session, 4.0);
}

TEST(StreamIngestorTest, WindowFloorBoundaryRetainsFloorDropsBelow) {
  IngestorOptions options;
  options.window_sec = 100;
  options.late_grace_sec = 99;  // grace horizon == the whole retained ring
  StreamIngestor ingestor(options);
  ASSERT_TRUE(ingestor.IngestMetrics(Sample(1000, 5.0)));
  ASSERT_TRUE(ingestor.window_floor_sec().has_value());
  const int64_t floor = *ingestor.window_floor_sec();
  EXPECT_EQ(floor, 1000 - 100 + 1);

  // A sample at exactly the floor is the oldest retained instant; one
  // second older misses the rings and is counted as dropped.
  EXPECT_TRUE(ingestor.IngestMetrics(Sample(floor, 2.0)));
  ASSERT_TRUE(ingestor.SampleAt(floor).has_value());
  EXPECT_DOUBLE_EQ(ingestor.SampleAt(floor)->active_session, 2.0);
  EXPECT_FALSE(ingestor.IngestMetrics(Sample(floor - 1, 3.0)));
  EXPECT_FALSE(ingestor.SampleAt(floor - 1).has_value());
  EXPECT_EQ(ingestor.stats().metric_samples_dropped, 1u);

  // Same boundary for records: the floor second folds, floor - 1 is late.
  ASSERT_TRUE(ingestor.IngestRecord(Rec(floor * 1000, 7)));
  ASSERT_TRUE(ingestor.IngestRecord(Rec((floor - 1) * 1000, 7)));
  ingestor.Pump();
  const IngestStats stats = ingestor.stats();
  EXPECT_EQ(stats.records_folded, 1u);
  EXPECT_EQ(stats.records_dropped_late, 1u);

  // Snapshots at the floor agree with window_floor_sec(): both the metric
  // and the template view see the floor second's data.
  const WindowMetrics metrics = ingestor.SnapshotMetrics(floor, floor + 1);
  ASSERT_EQ(metrics.active_session.values().size(), 1u);
  EXPECT_DOUBLE_EQ(metrics.active_session.values()[0], 2.0);
  const TemplateMetricsStore snap =
      ingestor.SnapshotTemplates(floor, floor + 1);
  const TemplateSeries* tpl = snap.Find(7);
  ASSERT_NE(tpl, nullptr);
  EXPECT_DOUBLE_EQ(tpl->execution_count.values()[0], 1.0);
}

TEST(StreamIngestorTest, NegativeFloorSecondsAreWellDefined) {
  // Early in a stream the window floor is negative; ring indexing and
  // snapshots must still be well-defined (C++ % truncates toward zero, so
  // a naive sec % window on a negative second indexes out of bounds).
  IngestorOptions options;
  options.window_sec = 100;
  options.late_grace_sec = 99;
  StreamIngestor ingestor(options);
  ASSERT_TRUE(ingestor.IngestMetrics(Sample(10, 5.0)));
  ASSERT_TRUE(ingestor.window_floor_sec().has_value());
  const int64_t floor = *ingestor.window_floor_sec();
  ASSERT_LT(floor, 0);
  EXPECT_TRUE(ingestor.IngestMetrics(Sample(floor, 1.0)));
  EXPECT_FALSE(ingestor.IngestMetrics(Sample(floor - 1, 1.0)));
  ASSERT_TRUE(ingestor.SampleAt(floor).has_value());
  ASSERT_TRUE(ingestor.IngestRecord(Rec(floor * 1000, 3)));
  ingestor.Pump();
  EXPECT_EQ(ingestor.stats().records_folded, 1u);
  const TemplateMetricsStore snap =
      ingestor.SnapshotTemplates(floor, floor + 1);
  const TemplateSeries* tpl = snap.Find(3);
  ASSERT_NE(tpl, nullptr);
  EXPECT_DOUBLE_EQ(tpl->execution_count.values()[0], 1.0);
  const WindowMetrics metrics = ingestor.SnapshotMetrics(floor, floor + 2);
  EXPECT_DOUBLE_EQ(metrics.active_session.values()[0], 1.0);
}

TEST(StreamIngestorTest, StatsAreAConsistentCutUnderConcurrentProducers) {
  IngestorOptions options;
  options.num_shards = 4;
  options.shard_queue_capacity = 64;  // force real backpressure
  options.late_grace_sec = 50;
  StreamIngestor ingestor(options);
  ASSERT_TRUE(ingestor.IngestMetrics(Sample(1000, 5.0)));

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 20000;
  std::atomic<int> producers_done{0};
  std::vector<std::thread> threads;
  threads.reserve(kProducers + 1);
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p]() {
      for (int i = 0; i < kPerProducer; ++i) {
        // Mix of on-time and late records across every shard; some drop as
        // late, some as backpressure — every path must stay accounted.
        const int64_t sec = i % 7 == 0 ? 900 : 1000;
        ingestor.IngestRecord(Rec(sec * 1000 + i % 1000, 1 + (p + i) % 7));
        ingestor.IngestRecord(Rec(sec * 1000 + i % 1000, 1 + i % 7));
      }
      producers_done.fetch_add(1);
    });
  }
  threads.emplace_back([&]() {
    while (producers_done.load() < kProducers) ingestor.Pump();
    ingestor.Pump();
  });

  // Hammer the snapshot while producers and the pumper race: the
  // consistent-cut invariant must hold in every single snapshot, not just
  // at quiescence.
  while (producers_done.load() < kProducers) {
    const IngestStats stats = ingestor.stats();
    ASSERT_EQ(stats.records_enqueued,
              stats.records_folded + stats.records_dropped_late +
                  stats.records_dropped_backpressure + stats.records_staged)
        << "torn ingest stats cut";
  }
  for (std::thread& thread : threads) thread.join();
  ingestor.Pump();

  const IngestStats final_stats = ingestor.stats();
  EXPECT_EQ(final_stats.records_staged, 0u);
  EXPECT_EQ(final_stats.records_enqueued,
            final_stats.records_folded + final_stats.records_dropped_late +
                final_stats.records_dropped_backpressure);
  EXPECT_EQ(final_stats.records_enqueued,
            static_cast<size_t>(kProducers) * kPerProducer * 2);
  EXPECT_GT(final_stats.records_dropped_late, 0u) << "late path not exercised";
}

// --- OnlineAnomalyDetector -----------------------------------------------

TEST(OnlineDetectorTest, FiresExactlyOncePerSustainedRun) {
  OnlineDetectorOptions options;
  OnlineAnomalyDetector detector(options);
  int64_t sec = 0;
  std::optional<AnomalyTrigger> trigger;
  for (int i = 0; i < 120; ++i) {
    auto t = detector.Observe(sec++, 5.0 + (i % 2) * 0.5);
    ASSERT_FALSE(t.has_value());
  }
  const int64_t onset = sec;
  size_t fired = 0;
  for (int i = 0; i < 120; ++i) {
    auto t = detector.Observe(sec++, 400.0);
    if (t.has_value()) {
      ++fired;
      trigger = t;
    }
  }
  EXPECT_EQ(fired, 1u) << "a sustained run must fire exactly one trigger";
  ASSERT_TRUE(trigger.has_value());
  EXPECT_EQ(trigger->onset_sec, onset);
  EXPECT_GE(trigger->trigger_sec, onset);
  EXPECT_LE(trigger->trigger_sec - trigger->onset_sec, 5);
  EXPECT_GT(trigger->severity, options.screen.threshold);
  EXPECT_LE(trigger->pettitt_p, options.pettitt_alpha);
  ASSERT_EQ(detector.latencies_sec().size(), 1u);
  EXPECT_EQ(detector.latencies_sec()[0],
            trigger->trigger_sec - trigger->onset_sec);
}

TEST(OnlineDetectorTest, ShortBlipsDoNotTrigger) {
  OnlineDetectorOptions options;
  OnlineAnomalyDetector detector(options);
  int64_t sec = 0;
  size_t fired = 0;
  for (int i = 0; i < 400; ++i) {
    // 1-2 sample spikes on a noisy baseline: below confirm_run_len.
    double v = 5.0 + (i % 3);
    if (i > 150 && i % 97 < 2) v = 60.0;
    if (detector.Observe(sec++, v).has_value()) ++fired;
  }
  EXPECT_EQ(fired, 0u);
}

TEST(OnlineDetectorTest, TelemetryGapsAreCarriedNotTriggered) {
  OnlineDetectorOptions options;
  OnlineAnomalyDetector detector(options);
  const double nan = std::nan("");
  int64_t sec = 0;
  detector.Observe(sec++, nan);  // before any finite sample
  for (int i = 0; i < 80; ++i) {
    const double v = (i % 7 == 3) ? nan : 5.0;
    EXPECT_FALSE(detector.Observe(sec++, v).has_value());
  }
  const OnlineDetectorStats stats = detector.stats();
  EXPECT_EQ(stats.gaps_skipped, 1u);
  EXPECT_GT(stats.gaps_carried, 0u);
  EXPECT_EQ(stats.triggers, 0u);
}

// --- DiagnosisScheduler --------------------------------------------------

AnomalyTrigger MakeTrigger(int64_t onset, int64_t trig) {
  AnomalyTrigger t;
  t.onset_sec = onset;
  t.trigger_sec = trig;
  t.severity = 10.0;
  t.pettitt_p = 0.01;
  return t;
}

TEST(SchedulerTest, CooldownSuppressesSameIncident) {
  IngestorOptions ingest_options;
  StreamIngestor ingestor(ingest_options);
  LogStore archive;
  SchedulerOptions options;
  options.cooldown_sec = 300;
  DiagnosisScheduler scheduler(&ingestor, &archive, options);

  EXPECT_TRUE(scheduler.OnTrigger(MakeTrigger(1000, 1003)));
  // Re-detection of the same incident inside the cooldown horizon.
  EXPECT_FALSE(scheduler.OnTrigger(MakeTrigger(1200, 1203)));
  // Screen activity keeps the incident's horizon open...
  scheduler.NoteAnomalousActivity(1400);
  EXPECT_FALSE(scheduler.OnTrigger(MakeTrigger(1600, 1603)));
  // ...but a trigger past the horizon is a new incident.
  EXPECT_TRUE(scheduler.OnTrigger(MakeTrigger(2000, 2003)));
  EXPECT_EQ(scheduler.stats().triggers_accepted, 2u);
  EXPECT_EQ(scheduler.stats().triggers_suppressed, 2u);
  EXPECT_EQ(scheduler.pending(), 2u);
}

TEST(SchedulerTest, ActivityBeforeAnyTriggerDoesNotSuppressIt) {
  IngestorOptions ingest_options;
  StreamIngestor ingestor(ingest_options);
  LogStore archive;
  DiagnosisScheduler scheduler(&ingestor, &archive, SchedulerOptions{});
  // The screen flags a few seconds before Pettitt confirms; that activity
  // must not anchor the cooldown against the confirming trigger itself.
  scheduler.NoteAnomalousActivity(998);
  scheduler.NoteAnomalousActivity(999);
  EXPECT_TRUE(scheduler.OnTrigger(MakeTrigger(998, 1000)));
}

TEST(SchedulerTest, CooldownIsPerInstance) {
  IngestorOptions ingest_options;
  StreamIngestor ingestor(ingest_options);
  LogStore archive;
  SchedulerOptions options;
  options.cooldown_sec = 300;
  DiagnosisScheduler scheduler(&ingestor, &archive, options);

  const auto trigger_for = [](uint32_t instance_id, int64_t onset,
                              int64_t trig) {
    AnomalyTrigger t = MakeTrigger(onset, trig);
    t.instance_id = instance_id;
    return t;
  };

  // Instance 1's incident must not anchor a cooldown against instance 2:
  // in a fleet, one instance's open incident says nothing about another's.
  EXPECT_TRUE(scheduler.OnTrigger(trigger_for(1, 1000, 1003)));
  EXPECT_TRUE(scheduler.OnTrigger(trigger_for(2, 1010, 1013)));
  // Re-detections inside each instance's own horizon stay suppressed.
  EXPECT_FALSE(scheduler.OnTrigger(trigger_for(1, 1200, 1203)));
  EXPECT_FALSE(scheduler.OnTrigger(trigger_for(2, 1200, 1203)));
  // Screen activity on instance 1 extends only instance 1's horizon.
  scheduler.NoteAnomalousActivity(1400, /*instance_id=*/1);
  EXPECT_FALSE(scheduler.OnTrigger(trigger_for(1, 1650, 1653)));
  EXPECT_TRUE(scheduler.OnTrigger(trigger_for(2, 1650, 1653)));
  EXPECT_EQ(scheduler.stats().triggers_accepted, 3u);
  EXPECT_EQ(scheduler.stats().triggers_suppressed, 3u);
}

TEST(SchedulerTest, OpenWindowFloorCoversPendingDiagnoses) {
  IngestorOptions ingest_options;
  StreamIngestor ingestor(ingest_options);
  LogStore archive;
  SchedulerOptions options;
  options.cooldown_sec = 0;
  DiagnosisScheduler scheduler(&ingestor, &archive, options);
  EXPECT_FALSE(scheduler.open_window_floor_ms().has_value());
  ASSERT_TRUE(scheduler.OnTrigger(MakeTrigger(5000, 5004)));
  ASSERT_TRUE(scheduler.OnTrigger(MakeTrigger(9000, 9004)));
  const auto floor = scheduler.open_window_floor_ms();
  ASSERT_TRUE(floor.has_value());
  EXPECT_EQ(*floor, (5000 - options.diagnoser.delta_s_sec) * 1000);
}

TEST(SchedulerTest, RetentionNeverTrimsAnOpenDiagnosisWindow) {
  // A trigger is in flight whose lookback window starts exactly at the
  // 3-day retention edge. TrimExpiredKeeping with the scheduler's floor
  // must keep every record the pending diagnosis will scan — including the
  // record at the exact edge — while still retiring everything older.
  IngestorOptions ingest_options;
  StreamIngestor ingestor(ingest_options);
  LogStore archive;
  SchedulerOptions options;
  DiagnosisScheduler scheduler(&ingestor, &archive, options);

  const int64_t now_ms = LogStore::kRetentionMs + 500'000'000;
  const int64_t edge_ms = now_ms - LogStore::kRetentionMs;
  const int64_t onset_sec = edge_ms / 1000 + options.diagnoser.delta_s_sec;
  ASSERT_TRUE(
      scheduler.OnTrigger(MakeTrigger(onset_sec, onset_sec + 3)));
  const auto floor = scheduler.open_window_floor_ms();
  ASSERT_TRUE(floor.has_value());
  ASSERT_EQ(*floor, edge_ms);

  archive.Append(Rec(edge_ms - 2000, 1));  // expired, outside any window
  archive.Append(Rec(edge_ms - 1, 2));     // expired by 1 ms
  archive.Append(Rec(edge_ms, 3));         // exact 3-day edge: retained
  archive.Append(Rec(edge_ms + 1000, 4));  // inside the open window
  EXPECT_EQ(archive.TrimExpiredKeeping(now_ms, *floor), 2u);
  const auto kept = archive.SnapshotRange(0, now_ms + 1);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].sql_id, 3u);
  EXPECT_EQ(kept[1].sql_id, 4u);

  // With the floor *before* the retention horizon, the floor wins: records
  // older than 3 days that a pending diagnosis still needs survive.
  LogStore older;
  older.Append(Rec(edge_ms - 10'000, 7));
  EXPECT_EQ(older.TrimExpiredKeeping(now_ms, edge_ms - 10'000), 0u);
  EXPECT_EQ(older.size(), 1u);
}

TEST(SchedulerTest, OpenWindowFloorSurvivesAStateRoundTrip) {
  // Restart regression for the durable service: a pending diagnosis is
  // checkpointed via ExportState and restored via ImportState in a fresh
  // process. The restored scheduler must report the same retention floor,
  // and TrimExpiredKeeping with that floor must keep every record the
  // still-pending diagnosis will scan — exactly as before the restart.
  IngestorOptions ingest_options;
  StreamIngestor ingestor(ingest_options);
  LogStore archive;
  SchedulerOptions options;
  DiagnosisScheduler scheduler(&ingestor, &archive, options);

  const int64_t now_ms = LogStore::kRetentionMs + 500'000'000;
  const int64_t edge_ms = now_ms - LogStore::kRetentionMs;
  const int64_t onset_sec = edge_ms / 1000 + options.diagnoser.delta_s_sec;
  ASSERT_TRUE(scheduler.OnTrigger(MakeTrigger(onset_sec, onset_sec + 3)));
  const auto floor = scheduler.open_window_floor_ms();
  ASSERT_TRUE(floor.has_value());

  // "Restart": a brand-new scheduler over a recovered archive.
  StreamIngestor recovered_ingestor(ingest_options);
  LogStore recovered_archive;
  recovered_archive.Append(Rec(edge_ms - 1, 2));     // expired by 1 ms
  recovered_archive.Append(Rec(edge_ms, 3));         // window start: retained
  recovered_archive.Append(Rec(edge_ms + 1000, 4));  // inside the window
  DiagnosisScheduler restored(&recovered_ingestor, &recovered_archive,
                              options);
  restored.ImportState(scheduler.ExportState());
  EXPECT_EQ(restored.pending(), 1u);
  const auto restored_floor = restored.open_window_floor_ms();
  ASSERT_TRUE(restored_floor.has_value());
  EXPECT_EQ(*restored_floor, *floor);

  EXPECT_EQ(recovered_archive.TrimExpiredKeeping(now_ms, *restored_floor),
            1u);
  const auto kept = recovered_archive.SnapshotRange(0, now_ms + 1);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].sql_id, 3u);
  EXPECT_EQ(kept[1].sql_id, 4u);
}

// --- OnlineService lifecycle ---------------------------------------------

TEST(OnlineServiceTest, GracefulDrainUnderRacingProducers) {
  ServiceOptions options;
  options.ingestor.window_sec = 3600;
  options.background_pump = true;
  OnlineService service(options);
  service.Start();

  constexpr int kProducers = 3;
  constexpr int kPerProducer = 2000;
  std::atomic<size_t> accepted{0};
  std::vector<std::thread> producers;
  for (int tid = 0; tid < kProducers; ++tid) {
    producers.emplace_back([&, tid]() {
      for (int i = 0; i < kPerProducer; ++i) {
        QueryLogRecord r = Rec(1'000'000 + (i % 600) * 1000 + tid,
                               1 + static_cast<uint64_t>(i % 5));
        if (service.IngestRecord(r)) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::thread metronome([&]() {
    for (int64_t sec = 1000; sec < 1040; ++sec) {
      service.IngestMetrics(Sample(sec, 5.0));
      service.Advance();
    }
  });
  for (auto& t : producers) t.join();
  metronome.join();
  service.Stop();
  EXPECT_FALSE(service.running());

  // Drain accounting closes: every accepted record was folded or dropped
  // with a counted reason; every watermark second was processed.
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.ingest.records_enqueued,
            accepted.load() + stats.ingest.records_dropped_backpressure);
  EXPECT_EQ(stats.ingest.records_folded + stats.ingest.records_dropped_late,
            accepted.load());
  EXPECT_EQ(stats.seconds_processed, 40);
  EXPECT_EQ(stats.detector.samples, 40u);

  service.Stop();  // idempotent
  EXPECT_EQ(service.stats().seconds_processed, 40);
}

TEST(OnlineServiceTest, StopNeverHalfAppliesABatch) {
  // Producers hammer AppendBatch while the main thread Stop()s mid-stream.
  // Every batch must be all-or-nothing with respect to the drain: accepted
  // batches are fully offered to the ingestor before the drain's final cut
  // (so nothing is stranded staged), and batches that lose the race are
  // rejected whole and counted.
  ServiceOptions options;
  options.ingestor.window_sec = 3600;
  options.background_pump = true;
  OnlineService service(options);
  service.Start();

  constexpr int kProducers = 4;
  constexpr int kBatchesPerProducer = 400;
  constexpr int kRecordsPerBatch = 7;
  std::atomic<size_t> accepted_records{0};
  std::atomic<size_t> rejected_records{0};
  std::atomic<size_t> rejected_batches{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> producers;
  for (int tid = 0; tid < kProducers; ++tid) {
    producers.emplace_back([&, tid]() {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int b = 0; b < kBatchesPerProducer; ++b) {
        std::vector<QueryLogRecord> records;
        records.reserve(kRecordsPerBatch);
        const int64_t sec = 2000 + b % 50;
        for (int i = 0; i < kRecordsPerBatch; ++i) {
          records.push_back(
              Rec(sec * 1000 + (b * kRecordsPerBatch + i) % 1000 + tid,
                  1 + static_cast<uint64_t>(i % 5)));
        }
        std::vector<PerfSample> samples;
        if (b % 10 == tid % 10) samples.push_back(Sample(sec, 5.0));
        if (service.AppendBatch(records, samples)) {
          accepted_records.fetch_add(records.size(),
                                     std::memory_order_relaxed);
        } else {
          rejected_records.fetch_add(records.size(),
                                     std::memory_order_relaxed);
          rejected_batches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  // Stop while the producers are mid-flight; the gate decides each batch.
  service.Stop();
  for (auto& t : producers) t.join();
  EXPECT_FALSE(service.running());

  const ServiceStats stats = service.stats();
  // All-or-nothing: the records of every accepted batch reached the
  // ingestor (enqueued or counted as backpressure drops) — no partial
  // batches on either side of the cut.
  EXPECT_EQ(stats.ingest.records_enqueued, accepted_records.load());
  EXPECT_EQ(stats.records_rejected_stopped, rejected_records.load());
  EXPECT_EQ(stats.batches_rejected_stopped, rejected_batches.load());
  // The drain's cut is complete: nothing an accepted batch contributed is
  // still staged, and the consistent-cut invariant closes.
  EXPECT_EQ(stats.ingest.records_staged, 0u);
  EXPECT_EQ(stats.ingest.records_folded + stats.ingest.records_dropped_late +
                stats.ingest.records_dropped_backpressure,
            stats.ingest.records_enqueued);

  // After Stop, producer calls reject cleanly and are counted.
  EXPECT_FALSE(service.IngestRecord(Rec(3'000'000, 1)));
  EXPECT_FALSE(service.IngestMetrics(Sample(3000, 5.0)));
  EXPECT_FALSE(service.AppendBatch({Rec(3'000'000, 1)}, {}));
  const ServiceStats after = service.stats();
  EXPECT_EQ(after.records_rejected_stopped,
            rejected_records.load() + 2);
  EXPECT_GE(after.samples_rejected_stopped, 1u);
}

// --- Replay determinism --------------------------------------------------

/// A synthetic incident: flat baseline, then template 9 floods the
/// instance and active sessions jump two orders of magnitude.
ReplayLog SyntheticIncident() {
  ReplayLog log;
  const int64_t t0 = 100'000;
  const int64_t onset = t0 + 200;
  const int64_t t1 = onset + 120;
  for (int64_t sec = t0; sec < t1; ++sec) {
    const bool anomalous = sec >= onset;
    log.samples.push_back(Sample(sec, anomalous ? 380.0 : 4.0));
    uint64_t state = static_cast<uint64_t>(sec) * 2654435761ULL + 17;
    const int base = 6;
    const int extra = anomalous ? 40 : 0;
    for (int i = 0; i < base + extra; ++i) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      QueryLogRecord r;
      r.sql_id = i < base ? 1 + (state >> 33) % 4 : 9;
      r.arrival_ms = sec * 1000 + static_cast<int64_t>((state >> 13) % 1000);
      r.response_ms = i < base ? 2.0 : 450.0;
      r.examined_rows = i < base ? 20 : 500'000;
      log.records.push_back(r);
    }
  }
  return log;
}

LogStore SyntheticCatalog() {
  LogStore catalog;
  for (uint64_t id = 1; id <= 4; ++id) {
    TemplateCatalogEntry entry;
    entry.template_text = "SELECT * FROM t WHERE k = ?";
    entry.kind = sqltpl::StatementKind::kSelect;
    entry.tables = {"t"};
    catalog.RegisterTemplate(id, entry);
  }
  TemplateCatalogEntry heavy;
  heavy.template_text = "SELECT * FROM big ORDER BY v";
  heavy.kind = sqltpl::StatementKind::kSelect;
  heavy.tables = {"big"};
  catalog.RegisterTemplate(9, heavy);
  return catalog;
}

TEST(ReplayTest, BitIdenticalAcrossRunsAndIngestThreads) {
  const ReplayLog log = SyntheticIncident();
  const LogStore catalog = SyntheticCatalog();
  ReplayOptions options;
  options.service.scheduler.diagnoser.num_threads = 2;

  const ReplayResult base = RunReplay(log, catalog, options);
  ASSERT_FALSE(base.outcomes.empty()) << "the incident must trigger";
  EXPECT_EQ(base.outcomes.size(), 1u) << "one incident, one diagnosis";
  ASSERT_EQ(base.detection_latencies_sec.size(), 1u);
  EXPECT_LE(base.detection_latencies_sec[0], 5);

  const ReplayResult repeat = RunReplay(log, catalog, options);
  EXPECT_EQ(base.Fingerprint(), repeat.Fingerprint());

  ReplayOptions threaded = options;
  threaded.num_ingest_threads = 4;
  const ReplayResult ingest4 = RunReplay(log, catalog, threaded);
  EXPECT_EQ(base.Fingerprint(), ingest4.Fingerprint());

  ReplayOptions diag4 = options;
  diag4.service.scheduler.diagnoser.num_threads = 4;
  const ReplayResult d4 = RunReplay(log, catalog, diag4);
  EXPECT_EQ(base.Fingerprint(), d4.Fingerprint());
}

TEST(ReplayTest, SeverityZeroActionFaultInjectorIsNoOp) {
  const ReplayLog log = SyntheticIncident();
  const LogStore catalog = SyntheticCatalog();
  ReplayOptions options;

  const auto run = [&](bool with_hook) {
    dbsim::SimConfig sim;
    dbsim::Engine engine(sim);
    faults::ActionFaultPlan plan;  // severity 0
    plan.seed = 99;
    faults::ActionFaultInjector hook(plan);
    repair::SupervisorOptions sup_options;
    sup_options.seed = 5;
    sup_options.verify.enabled = false;
    repair::RepairSupervisor supervisor(&engine, sup_options,
                                        with_hook ? &hook : nullptr);
    return RunReplay(log, catalog, options, &supervisor).Fingerprint();
  };
  EXPECT_EQ(run(true), run(false));
}

}  // namespace
}  // namespace pinsql::online
