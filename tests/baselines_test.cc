#include <gtest/gtest.h>

#include "baselines/top_sql.h"
#include "eval/metrics.h"

namespace pinsql {
namespace {

QueryLogRecord Rec(int64_t arrival_ms, uint64_t sql_id, double response,
                   int64_t rows) {
  QueryLogRecord r;
  r.arrival_ms = arrival_ms;
  r.sql_id = sql_id;
  r.response_ms = response;
  r.examined_rows = rows;
  return r;
}

TemplateMetricsStore MakeMetrics() {
  // Template 1: many executions, cheap.  Template 2: few executions, slow.
  // Template 3: medium executions, huge examined rows.
  TemplateMetricsStore metrics(0, 100);
  for (int64_t t = 0; t < 100; ++t) {
    for (int k = 0; k < 50; ++k) {
      metrics.Accumulate(Rec(t * 1000 + k, 1, 1.0, 10));
    }
    metrics.Accumulate(Rec(t * 1000 + 500, 2, 500.0, 100));
    for (int k = 0; k < 5; ++k) {
      metrics.Accumulate(Rec(t * 1000 + 600 + k, 3, 10.0, 50'000));
    }
  }
  return metrics;
}

TEST(TopSqlTest, RanksByExecutionCount) {
  const auto ranking = baselines::RankTopSql(
      MakeMetrics(), baselines::TopSqlMetric::kExecutionCount, 0, 100);
  ASSERT_EQ(ranking.size(), 3u);
  EXPECT_EQ(ranking[0], 1u);
}

TEST(TopSqlTest, RanksByResponseTime) {
  const auto ranking = baselines::RankTopSql(
      MakeMetrics(), baselines::TopSqlMetric::kResponseTime, 0, 100);
  EXPECT_EQ(ranking[0], 2u);  // 500 ms/s beats 50 ms/s and 50 x 1 ms
}

TEST(TopSqlTest, RanksByExaminedRows) {
  const auto ranking = baselines::RankTopSql(
      MakeMetrics(), baselines::TopSqlMetric::kExaminedRows, 0, 100);
  EXPECT_EQ(ranking[0], 3u);
}

TEST(TopSqlTest, AnomalyWindowRestrictsScoring) {
  TemplateMetricsStore metrics(0, 100);
  // Template 1 dominates before the window, template 2 inside it.
  for (int64_t t = 0; t < 50; ++t) {
    for (int k = 0; k < 100; ++k) {
      metrics.Accumulate(Rec(t * 1000 + k, 1, 1.0, 1));
    }
  }
  for (int64_t t = 50; t < 100; ++t) {
    for (int k = 0; k < 10; ++k) {
      metrics.Accumulate(Rec(t * 1000 + k, 2, 1.0, 1));
    }
    metrics.Accumulate(Rec(t * 1000 + 999, 1, 1.0, 1));
  }
  const auto ranking = baselines::RankTopSql(
      metrics, baselines::TopSqlMetric::kExecutionCount, 50, 100);
  EXPECT_EQ(ranking[0], 2u);
}

TEST(TopSqlTest, AllRankingsProduced) {
  const auto all = baselines::RankAllTopSql(MakeMetrics(), 0, 100);
  EXPECT_EQ(all.by_execution.size(), 3u);
  EXPECT_EQ(all.by_response_time.size(), 3u);
  EXPECT_EQ(all.by_examined_rows.size(), 3u);
  EXPECT_EQ(all.by_execution[0], 1u);
  EXPECT_EQ(all.by_response_time[0], 2u);
  EXPECT_EQ(all.by_examined_rows[0], 3u);
}

TEST(TopSqlTest, MetricNames) {
  EXPECT_STREQ(
      baselines::TopSqlMetricName(baselines::TopSqlMetric::kExecutionCount),
      "Top-EN");
  EXPECT_STREQ(
      baselines::TopSqlMetricName(baselines::TopSqlMetric::kResponseTime),
      "Top-RT");
  EXPECT_STREQ(
      baselines::TopSqlMetricName(baselines::TopSqlMetric::kExaminedRows),
      "Top-ER");
}

// -------------------------------------------------------------- Metrics

TEST(RankMetricsTest, FirstHitRank) {
  const std::vector<uint64_t> ranking = {5, 9, 2, 7};
  EXPECT_EQ(eval::FirstHitRank(ranking, {9}), 2);
  EXPECT_EQ(eval::FirstHitRank(ranking, {7, 2}), 3);
  EXPECT_EQ(eval::FirstHitRank(ranking, {5}), 1);
  EXPECT_EQ(eval::FirstHitRank(ranking, {100}), 0);
  EXPECT_EQ(eval::FirstHitRank({}, {1}), 0);
}

TEST(RankMetricsTest, AccumulatorComputesHitsAndMrr) {
  eval::RankAccumulator acc;
  acc.Add(1);   // hits@1, @5, rr = 1
  acc.Add(3);   // hits@5, rr = 1/3
  acc.Add(10);  // rr = 1/10
  acc.Add(0);   // miss
  const eval::RankMetrics m = acc.Summary();
  EXPECT_EQ(m.cases, 4u);
  EXPECT_DOUBLE_EQ(m.hits_at_1, 25.0);
  EXPECT_DOUBLE_EQ(m.hits_at_5, 50.0);
  EXPECT_NEAR(m.mrr, (1.0 + 1.0 / 3.0 + 0.1) / 4.0, 1e-12);
}

TEST(RankMetricsTest, EmptyAccumulator) {
  const eval::RankMetrics m = eval::RankAccumulator().Summary();
  EXPECT_EQ(m.cases, 0u);
  EXPECT_DOUBLE_EQ(m.mrr, 0.0);
}

}  // namespace
}  // namespace pinsql
