#include <gtest/gtest.h>

#include <vector>

#include "baselines/causal_corr.h"
#include "baselines/top_sql.h"
#include "eval/metrics.h"

namespace pinsql {
namespace {

QueryLogRecord Rec(int64_t arrival_ms, uint64_t sql_id, double response,
                   int64_t rows) {
  QueryLogRecord r;
  r.arrival_ms = arrival_ms;
  r.sql_id = sql_id;
  r.response_ms = response;
  r.examined_rows = rows;
  return r;
}

TemplateMetricsStore MakeMetrics() {
  // Template 1: many executions, cheap.  Template 2: few executions, slow.
  // Template 3: medium executions, huge examined rows.
  TemplateMetricsStore metrics(0, 100);
  for (int64_t t = 0; t < 100; ++t) {
    for (int k = 0; k < 50; ++k) {
      metrics.Accumulate(Rec(t * 1000 + k, 1, 1.0, 10));
    }
    metrics.Accumulate(Rec(t * 1000 + 500, 2, 500.0, 100));
    for (int k = 0; k < 5; ++k) {
      metrics.Accumulate(Rec(t * 1000 + 600 + k, 3, 10.0, 50'000));
    }
  }
  return metrics;
}

TEST(TopSqlTest, RanksByExecutionCount) {
  const auto ranking = baselines::RankTopSql(
      MakeMetrics(), baselines::TopSqlMetric::kExecutionCount, 0, 100);
  ASSERT_EQ(ranking.size(), 3u);
  EXPECT_EQ(ranking[0], 1u);
}

TEST(TopSqlTest, RanksByResponseTime) {
  const auto ranking = baselines::RankTopSql(
      MakeMetrics(), baselines::TopSqlMetric::kResponseTime, 0, 100);
  EXPECT_EQ(ranking[0], 2u);  // 500 ms/s beats 50 ms/s and 50 x 1 ms
}

TEST(TopSqlTest, RanksByExaminedRows) {
  const auto ranking = baselines::RankTopSql(
      MakeMetrics(), baselines::TopSqlMetric::kExaminedRows, 0, 100);
  EXPECT_EQ(ranking[0], 3u);
}

TEST(TopSqlTest, AnomalyWindowRestrictsScoring) {
  TemplateMetricsStore metrics(0, 100);
  // Template 1 dominates before the window, template 2 inside it.
  for (int64_t t = 0; t < 50; ++t) {
    for (int k = 0; k < 100; ++k) {
      metrics.Accumulate(Rec(t * 1000 + k, 1, 1.0, 1));
    }
  }
  for (int64_t t = 50; t < 100; ++t) {
    for (int k = 0; k < 10; ++k) {
      metrics.Accumulate(Rec(t * 1000 + k, 2, 1.0, 1));
    }
    metrics.Accumulate(Rec(t * 1000 + 999, 1, 1.0, 1));
  }
  const auto ranking = baselines::RankTopSql(
      metrics, baselines::TopSqlMetric::kExecutionCount, 50, 100);
  EXPECT_EQ(ranking[0], 2u);
}

TEST(TopSqlTest, AllRankingsProduced) {
  const auto all = baselines::RankAllTopSql(MakeMetrics(), 0, 100);
  EXPECT_EQ(all.by_execution.size(), 3u);
  EXPECT_EQ(all.by_response_time.size(), 3u);
  EXPECT_EQ(all.by_examined_rows.size(), 3u);
  EXPECT_EQ(all.by_execution[0], 1u);
  EXPECT_EQ(all.by_response_time[0], 2u);
  EXPECT_EQ(all.by_examined_rows[0], 3u);
}

TEST(TopSqlTest, MetricNames) {
  EXPECT_STREQ(
      baselines::TopSqlMetricName(baselines::TopSqlMetric::kExecutionCount),
      "Top-EN");
  EXPECT_STREQ(
      baselines::TopSqlMetricName(baselines::TopSqlMetric::kResponseTime),
      "Top-RT");
  EXPECT_STREQ(
      baselines::TopSqlMetricName(baselines::TopSqlMetric::kExaminedRows),
      "Top-ER");
}

// -------------------------------------------------------------- Metrics

TEST(RankMetricsTest, FirstHitRank) {
  const std::vector<uint64_t> ranking = {5, 9, 2, 7};
  EXPECT_EQ(eval::FirstHitRank(ranking, {9}), 2);
  EXPECT_EQ(eval::FirstHitRank(ranking, {7, 2}), 3);
  EXPECT_EQ(eval::FirstHitRank(ranking, {5}), 1);
  EXPECT_EQ(eval::FirstHitRank(ranking, {100}), 0);
  EXPECT_EQ(eval::FirstHitRank({}, {1}), 0);
}

TEST(RankMetricsTest, AccumulatorComputesHitsAndMrr) {
  eval::RankAccumulator acc;
  acc.Add(1);   // hits@1, @5, rr = 1
  acc.Add(3);   // hits@5, rr = 1/3
  acc.Add(10);  // rr = 1/10
  acc.Add(0);   // miss
  const eval::RankMetrics m = acc.Summary();
  EXPECT_EQ(m.cases, 4u);
  EXPECT_DOUBLE_EQ(m.hits_at_1, 25.0);
  EXPECT_DOUBLE_EQ(m.hits_at_5, 50.0);
  EXPECT_NEAR(m.mrr, (1.0 + 1.0 / 3.0 + 0.1) / 4.0, 1e-12);
}

TEST(RankMetricsTest, EmptyAccumulator) {
  const eval::RankMetrics m = eval::RankAccumulator().Summary();
  EXPECT_EQ(m.cases, 0u);
  EXPECT_DOUBLE_EQ(m.mrr, 0.0);
}

// --- Corr-Lag (PerfCE-spirit causality baseline) ---------------------------

/// Three steady templates plus template 9, whose response time explodes at
/// t=300; the symptom follows 10 seconds later. Only template 9 *leads*
/// the symptom — the steady templates have nothing to add.
TemplateMetricsStore CausalMetrics() {
  TemplateMetricsStore metrics(0, 600);
  for (int64_t t = 0; t < 600; ++t) {
    for (int k = 0; k < 20; ++k) {
      metrics.Accumulate(Rec(t * 1000 + k, 1, 2.0, 10));
    }
    metrics.Accumulate(Rec(t * 1000 + 400, 2, 15.0, 200));
    metrics.Accumulate(Rec(t * 1000 + 500, 3, 5.0, 50));
    const bool hot = t >= 300;
    metrics.Accumulate(Rec(t * 1000 + 700, 9, hot ? 800.0 : 2.0, 100));
  }
  return metrics;
}

TimeSeries CausalSymptom() {
  std::vector<double> values;
  values.reserve(600);
  for (int64_t t = 0; t < 600; ++t) {
    const double base = 4.0 + 0.3 * static_cast<double>(t % 7);
    values.push_back(t >= 310 ? base + 60.0 : base);
  }
  return TimeSeries(0, 1, values);
}

TEST(CorrLagTest, TemplateLeadingTheSymptomRanksFirst) {
  const auto scores =
      baselines::ScoreCausalCorr(CausalMetrics(), CausalSymptom());
  ASSERT_EQ(scores.size(), 4u);
  EXPECT_EQ(scores[0].sql_id, 9u);
  EXPECT_GT(scores[0].score, scores[1].score);
  EXPECT_GT(scores[0].best_corr, 0.8);
  EXPECT_GE(scores[0].best_lag, 0);
  for (const auto& s : scores) {
    EXPECT_GE(s.granger_gain, 0.0);
    EXPECT_LE(s.granger_gain, 1.0);
  }
  const auto ranking =
      baselines::RankCausalCorr(CausalMetrics(), CausalSymptom());
  ASSERT_FALSE(ranking.empty());
  EXPECT_EQ(ranking[0], 9u);
}

TEST(CorrLagTest, DeterministicAcrossRunsAndTiesBreakBySqlId) {
  const auto a = baselines::ScoreCausalCorr(CausalMetrics(), CausalSymptom());
  const auto b = baselines::ScoreCausalCorr(CausalMetrics(), CausalSymptom());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].sql_id, b[i].sql_id);
    EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
    EXPECT_DOUBLE_EQ(a[i].granger_gain, b[i].granger_gain);
    EXPECT_DOUBLE_EQ(a[i].best_corr, b[i].best_corr);
    EXPECT_EQ(a[i].best_lag, b[i].best_lag);
  }
  // A symptom with no structure gives every template the same nothing;
  // the ordering contract is then ascending sql_id.
  TemplateMetricsStore flat(0, 600);
  for (int64_t t = 0; t < 600; ++t) {
    flat.Accumulate(Rec(t * 1000 + 1, 4, 2.0, 10));
    flat.Accumulate(Rec(t * 1000 + 2, 6, 2.0, 10));
    flat.Accumulate(Rec(t * 1000 + 3, 5, 2.0, 10));
  }
  const TimeSeries constant(0, 1, std::vector<double>(600, 5.0));
  const auto tied = baselines::RankCausalCorr(flat, constant);
  ASSERT_EQ(tied.size(), 3u);
  EXPECT_EQ(tied[0], 4u);
  EXPECT_EQ(tied[1], 5u);
  EXPECT_EQ(tied[2], 6u);
}

}  // namespace
}  // namespace pinsql
