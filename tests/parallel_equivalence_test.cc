// Equivalence property suite for the parallel diagnosis engine: for
// randomized workloads, every parallel path (Diagnose with num_threads>1,
// ParallelStreamAggregator, parallel AggregateWindow) must produce output
// *identical* — bit-for-bit, not approximately — to its serial
// counterpart. All randomness is seeded explicitly so failures reproduce.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/diagnoser.h"
#include "core/report.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "eval/case_generator.h"
#include "eval/runner.h"
#include "pipeline/message_queue.h"
#include "pipeline/stream_aggregator.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace pinsql {
namespace {

void ExpectSeriesEq(const TimeSeries& a, const TimeSeries& b) {
  ASSERT_EQ(a.start_time(), b.start_time());
  ASSERT_EQ(a.interval_sec(), b.interval_sec());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    // EXPECT_EQ on doubles: bit-identical is the contract, not "close".
    ASSERT_EQ(a[i], b[i]) << "series diverges at index " << i;
  }
}

void ExpectStoresEq(const TemplateMetricsStore& a,
                    const TemplateMetricsStore& b) {
  ASSERT_EQ(a.start_sec(), b.start_sec());
  ASSERT_EQ(a.end_sec(), b.end_sec());
  ASSERT_EQ(a.interval_sec(), b.interval_sec());
  ASSERT_EQ(a.SqlIdsSorted(), b.SqlIdsSorted());
  for (const uint64_t id : a.SqlIdsSorted()) {
    const TemplateSeries* sa = a.Find(id);
    const TemplateSeries* sb = b.Find(id);
    ASSERT_NE(sa, nullptr);
    ASSERT_NE(sb, nullptr);
    ExpectSeriesEq(sa->execution_count, sb->execution_count);
    ExpectSeriesEq(sa->total_response_ms, sb->total_response_ms);
    ExpectSeriesEq(sa->examined_rows, sb->examined_rows);
  }
  ExpectSeriesEq(a.TotalResponseAcrossTemplates(),
                 b.TotalResponseAcrossTemplates());
}

void ExpectDiagnosisEq(const core::DiagnosisResult& serial,
                       const core::DiagnosisResult& parallel) {
  // H-SQL ranking: ids and every score component, in order.
  ASSERT_EQ(serial.hsql_ranking.size(), parallel.hsql_ranking.size());
  for (size_t i = 0; i < serial.hsql_ranking.size(); ++i) {
    const core::HsqlScore& s = serial.hsql_ranking[i];
    const core::HsqlScore& p = parallel.hsql_ranking[i];
    ASSERT_EQ(s.sql_id, p.sql_id) << "H-SQL rank " << i;
    ASSERT_EQ(s.impact, p.impact) << "H-SQL rank " << i;
    ASSERT_EQ(s.trend, p.trend) << "H-SQL rank " << i;
    ASSERT_EQ(s.scale, p.scale) << "H-SQL rank " << i;
    ASSERT_EQ(s.scale_trend, p.scale_trend) << "H-SQL rank " << i;
  }

  // R-SQL stage: ranking, clusters, selection, verification.
  EXPECT_EQ(serial.rsql.ranking, parallel.rsql.ranking);
  EXPECT_EQ(serial.rsql.clusters, parallel.rsql.clusters);
  EXPECT_EQ(serial.rsql.selected_clusters, parallel.rsql.selected_clusters);
  EXPECT_EQ(serial.rsql.verified, parallel.rsql.verified);
  EXPECT_EQ(serial.rsql.verification_fallback,
            parallel.rsql.verification_fallback);

  // Session estimate and aggregated window metrics.
  ExpectSeriesEq(serial.estimate.total, parallel.estimate.total);
  ASSERT_EQ(serial.estimate.per_template.size(),
            parallel.estimate.per_template.size());
  for (const auto& [id, series] : serial.estimate.per_template) {
    const auto it = parallel.estimate.per_template.find(id);
    ASSERT_NE(it, parallel.estimate.per_template.end())
        << "template " << id << " missing from parallel estimate";
    ExpectSeriesEq(series, it->second);
  }
  ExpectStoresEq(serial.metrics, parallel.metrics);
}

eval::CaseGenOptions SmallCase(uint64_t seed, workload::AnomalyType type) {
  eval::CaseGenOptions options;
  options.seed = seed;
  options.type = type;
  options.pre_anomaly_sec = 300;
  options.anomaly_duration_sec = 150;
  options.post_anomaly_sec = 30;
  options.scenario.num_clusters = 4;
  return options;
}

class DiagnoseEquivalenceTest
    : public ::testing::TestWithParam<workload::AnomalyType> {};

TEST_P(DiagnoseEquivalenceTest, ParallelMatchesSerialExactly) {
  const eval::AnomalyCaseData data =
      eval::GenerateCase(SmallCase(/*seed=*/20260807, GetParam()));
  const core::DiagnosisInput input = eval::MakeDiagnosisInput(data);

  core::DiagnoserOptions serial_options;
  serial_options.num_threads = 1;
  const StatusOr<core::DiagnosisResult> serial =
      core::Diagnose(input, serial_options);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  for (const int threads : {2, 4, 8}) {
    SCOPED_TRACE("num_threads=" + std::to_string(threads));
    core::DiagnoserOptions parallel_options;
    parallel_options.num_threads = threads;
    const StatusOr<core::DiagnosisResult> parallel =
        core::Diagnose(input, parallel_options);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ExpectDiagnosisEq(*serial, *parallel);
  }
}

INSTANTIATE_TEST_SUITE_P(AllAnomalyTypes, DiagnoseEquivalenceTest,
                         ::testing::Values(workload::AnomalyType::kRowLock,
                                           workload::AnomalyType::kMdlLock,
                                           workload::AnomalyType::kPoorSql,
                                           workload::AnomalyType::kBusinessSpike));

QueryLogRecord Rec(int64_t arrival_ms, uint64_t sql_id, double response,
                   int64_t rows) {
  QueryLogRecord r;
  r.arrival_ms = arrival_ms;
  r.sql_id = sql_id;
  r.response_ms = response;
  r.examined_rows = rows;
  return r;
}

/// Randomized record batch keyed by sql_id (the pipeline's natural Kafka
/// keying, which makes partition shards template-disjoint).
std::vector<QueryLogRecord> RandomRecords(uint64_t seed, size_t count,
                                          int64_t window_sec) {
  Rng rng(seed);
  std::vector<QueryLogRecord> records;
  records.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    records.push_back(
        Rec(rng.UniformInt(0, window_sec * 1000 - 1),
            static_cast<uint64_t>(rng.UniformInt(1, 37)),
            rng.Uniform(0.5, 900.0), rng.UniformInt(1, 5000)));
  }
  return records;
}

TEST(ParallelAggregatorEquivalenceTest, MatchesSerialStreamAggregator) {
  constexpr int64_t kWindow = 120;
  const std::vector<QueryLogRecord> records =
      RandomRecords(/*seed=*/4242, /*count=*/20000, kWindow);

  pipeline::Topic<QueryLogRecord> serial_topic("query_logs", 8);
  pipeline::Topic<QueryLogRecord> parallel_topic("query_logs", 8);
  for (const QueryLogRecord& r : records) {
    serial_topic.Publish(r.sql_id, r);
    parallel_topic.Publish(r.sql_id, r);
  }

  StreamAggregator serial(&serial_topic, 0, kWindow);
  ParallelStreamAggregator parallel(&parallel_topic, 0, kWindow);
  LogStore parallel_archive;
  parallel.AttachLogStore(&parallel_archive);

  EXPECT_EQ(serial.PumpAll(), records.size());
  EXPECT_EQ(parallel.PumpAll(), records.size());
  ExpectStoresEq(serial.metrics(), parallel.metrics());
  // The archive holds every consumed record (appends serialized).
  EXPECT_EQ(parallel_archive.size(), records.size());

  // Incremental pump: more records arrive, both aggregators catch up.
  const std::vector<QueryLogRecord> more =
      RandomRecords(/*seed=*/777, /*count=*/3000, kWindow);
  for (const QueryLogRecord& r : more) {
    serial_topic.Publish(r.sql_id, r);
    parallel_topic.Publish(r.sql_id, r);
  }
  EXPECT_EQ(serial.PumpAll(), more.size());
  EXPECT_EQ(parallel.PumpAll(), more.size());
  ExpectStoresEq(serial.metrics(), parallel.metrics());
}

TEST(ParallelAggregatorEquivalenceTest, AggregateWindowPoolMatchesSerial) {
  constexpr int64_t kWindow = 180;
  LogStore store;
  for (const QueryLogRecord& r :
       RandomRecords(/*seed=*/99, /*count=*/15000, kWindow)) {
    store.Append(r);
  }
  const TemplateMetricsStore serial = AggregateWindow(store, 10, 170);
  for (const int threads : {2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    util::ThreadPool pool(threads);
    const TemplateMetricsStore parallel =
        AggregateWindow(store, 10, 170, /*interval_sec=*/1, &pool);
    ExpectStoresEq(serial, parallel);
  }
}

TEST(FleetModeEquivalenceTest, ScoresMatchSerialRun) {
  eval::EvalOptions serial_options;
  serial_options.num_cases = 4;
  serial_options.seed = 7;
  serial_options.case_options = SmallCase(7, workload::AnomalyType::kRowLock);
  serial_options.num_threads = 1;
  eval::EvalOptions fleet_options = serial_options;
  fleet_options.num_threads = 4;

  const core::DiagnoserOptions diagnoser;
  const std::vector<eval::MethodScores> serial =
      eval::RunOverallEvaluation(serial_options, diagnoser);
  const std::vector<eval::MethodScores> fleet =
      eval::RunOverallEvaluation(fleet_options, diagnoser);
  ASSERT_EQ(serial.size(), fleet.size());
  for (size_t m = 0; m < serial.size(); ++m) {
    SCOPED_TRACE(serial[m].name);
    EXPECT_EQ(serial[m].name, fleet[m].name);
    EXPECT_EQ(serial[m].rsql.hits_at_1, fleet[m].rsql.hits_at_1);
    EXPECT_EQ(serial[m].rsql.hits_at_5, fleet[m].rsql.hits_at_5);
    EXPECT_EQ(serial[m].rsql.mrr, fleet[m].rsql.mrr);
    EXPECT_EQ(serial[m].hsql.hits_at_1, fleet[m].hsql.hits_at_1);
    EXPECT_EQ(serial[m].hsql.hits_at_5, fleet[m].hsql.hits_at_5);
    EXPECT_EQ(serial[m].hsql.mrr, fleet[m].hsql.mrr);
  }
}

// Determinism regression (seed-test audit): the same diagnosis run twice —
// with threads — must render byte-identical JSON reports. Wall-clock
// timings are the one legitimately nondeterministic field, so they are
// zeroed before rendering.
TEST(DeterminismRegressionTest, RepeatedDiagnosisRendersIdenticalJson) {
  const eval::AnomalyCaseData data = eval::GenerateCase(
      SmallCase(/*seed=*/31337, workload::AnomalyType::kMdlLock));
  const core::DiagnosisInput input = eval::MakeDiagnosisInput(data);
  core::DiagnoserOptions options;
  options.num_threads = 4;

  auto render = [&]() {
    const core::DiagnosisResult result =
        std::move(core::Diagnose(input, options)).value();
    core::DiagnosisReport report = core::BuildReport(
        result, data.logs, data.phenomena, input.anomaly_start_sec,
        input.anomaly_end_sec, /*suggestions=*/{});
    report.diagnosis_seconds = 0.0;
    report.trace.total_seconds = 0.0;
    for (obs::StageTrace& stage : report.trace.stages) stage.seconds = 0.0;
    return report.ToJson().Dump(/*pretty=*/true);
  };

  const std::string first = render();
  const std::string second = render();
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

// Observability must be a pure observer: span recording on/off, at any
// thread count, produces bit-identical diagnoses and identical
// deterministic trace counters (only the wall-clock seconds may differ).
TEST(TracingEquivalenceTest, TracingNeverChangesTheDiagnosis) {
  const eval::AnomalyCaseData data = eval::GenerateCase(
      SmallCase(/*seed=*/20260807, workload::AnomalyType::kRowLock));
  const core::DiagnosisInput input = eval::MakeDiagnosisInput(data);

  core::DiagnoserOptions baseline_options;
  baseline_options.num_threads = 1;
  const StatusOr<core::DiagnosisResult> baseline =
      core::Diagnose(input, baseline_options);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  for (const int threads : {1, 4}) {
    for (const bool traced : {false, true}) {
      SCOPED_TRACE("num_threads=" + std::to_string(threads) +
                   " traced=" + std::to_string(traced));
      obs::TraceRecorder recorder;
      core::DiagnoserOptions options;
      options.num_threads = threads;
      options.trace = traced ? &recorder : nullptr;
      const StatusOr<core::DiagnosisResult> run =
          core::Diagnose(input, options);
      ASSERT_TRUE(run.ok()) << run.status().ToString();
      ExpectDiagnosisEq(*baseline, *run);
      EXPECT_EQ(run->data_quality.confidence,
                baseline->data_quality.confidence);

      // Deterministic trace counters match the baseline stage for stage;
      // the wall-clock seconds are excluded from the comparison.
      ASSERT_EQ(run->trace.stages.size(), baseline->trace.stages.size());
      for (size_t i = 0; i < run->trace.stages.size(); ++i) {
        EXPECT_EQ(run->trace.stages[i].name, baseline->trace.stages[i].name);
        EXPECT_EQ(run->trace.stages[i].counters,
                  baseline->trace.stages[i].counters)
            << "stage " << run->trace.stages[i].name;
      }

      if (traced && obs::kEnabled) {
        EXPECT_GT(recorder.event_count(), 0u);
      } else {
        EXPECT_EQ(recorder.event_count(), 0u);
      }
    }
  }
}

}  // namespace
}  // namespace pinsql
