#include <gtest/gtest.h>

#include "sqltpl/fingerprint.h"
#include "sqltpl/tokenizer.h"
#include "util/strings.h"

namespace pinsql::sqltpl {
namespace {

// -------------------------------------------------------------- Tokenizer

TEST(TokenizerTest, BasicSelect) {
  const auto tokens = Tokenize("SELECT * FROM t WHERE id = 5");
  ASSERT_GE(tokens.size(), 8u);
  EXPECT_EQ(tokens[0].type, TokenType::kWord);
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens.back().type, TokenType::kNumber);
  EXPECT_EQ(tokens.back().text, "5");
}

TEST(TokenizerTest, StringLiterals) {
  const auto tokens = Tokenize("x = 'ab''c' AND y = \"d\\\"e\"");
  int strings = 0;
  for (const auto& t : tokens) {
    if (t.type == TokenType::kString) ++strings;
  }
  EXPECT_EQ(strings, 2);
}

TEST(TokenizerTest, BacktickIdentifiers) {
  const auto tokens = Tokenize("SELECT `weird col` FROM `order`");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[1].type, TokenType::kQuotedIdent);
  EXPECT_EQ(tokens[1].text, "weird col");
  EXPECT_EQ(tokens[3].text, "order");
}

TEST(TokenizerTest, NumberVariants) {
  const auto tokens = Tokenize("1 2.5 0xFF 1e10 1.5e-3 .25");
  ASSERT_EQ(tokens.size(), 6u);
  for (const auto& t : tokens) EXPECT_EQ(t.type, TokenType::kNumber);
}

TEST(TokenizerTest, CommentsAreSkipped) {
  const auto tokens = Tokenize(
      "SELECT 1 -- trailing comment\n"
      "/* block\ncomment */ FROM t # hash comment\n WHERE a=2");
  std::string joined;
  for (const auto& t : tokens) joined += t.text + " ";
  EXPECT_EQ(joined, "SELECT 1 FROM t WHERE a = 2 ");
}

TEST(TokenizerTest, DoubleDashWithoutSpaceIsNotComment) {
  // MySQL requires whitespace after "--"; "a--b" is arithmetic.
  const auto tokens = Tokenize("SELECT a--1");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[2].text, "-");
  EXPECT_EQ(tokens[3].text, "-");
}

TEST(TokenizerTest, TwoCharOperators) {
  const auto tokens = Tokenize("a >= 1 AND b <> 2 AND c != 3");
  EXPECT_EQ(tokens[1].text, ">=");
  EXPECT_EQ(tokens[5].text, "<>");
  EXPECT_EQ(tokens[9].text, "!=");
}

TEST(TokenizerTest, UnterminatedStringDoesNotCrash) {
  const auto tokens = Tokenize("SELECT 'oops");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[1].type, TokenType::kString);
}

TEST(TokenizerTest, KeywordRecognitionIsCaseInsensitive) {
  EXPECT_TRUE(IsSqlKeyword("select"));
  EXPECT_TRUE(IsSqlKeyword("SeLeCt"));
  EXPECT_TRUE(IsSqlKeyword("WHERE"));
  EXPECT_FALSE(IsSqlKeyword("user_table"));
}

// ------------------------------------------------------------ Fingerprint

TEST(FingerprintTest, PaperExampleCollapsesToOneTemplate) {
  // Paper Definition II.3.
  const auto a = Fingerprint("SELECT * FROM user_table WHERE uid = 123456");
  const auto b = Fingerprint("SELECT * FROM user_table WHERE uid = 654321");
  const auto c = Fingerprint("SELECT * FROM user_table WHERE uid = 123321");
  EXPECT_EQ(a.sql_id, b.sql_id);
  EXPECT_EQ(b.sql_id, c.sql_id);
  EXPECT_EQ(a.template_text, "SELECT * FROM user_table WHERE uid = ?");
}

TEST(FingerprintTest, DifferentStructureDifferentTemplate) {
  const auto a = Fingerprint("SELECT * FROM t WHERE a = 1");
  const auto b = Fingerprint("SELECT * FROM t WHERE b = 1");
  EXPECT_NE(a.sql_id, b.sql_id);
}

TEST(FingerprintTest, StringLiteralsBecomePlaceholders) {
  const auto info =
      Fingerprint("SELECT id FROM users WHERE name = 'alice' AND x = \"y\"");
  EXPECT_EQ(info.template_text,
            "SELECT id FROM users WHERE name = ? AND x = ?");
}

TEST(FingerprintTest, WhitespaceAndCaseNormalized) {
  const auto a = Fingerprint("select  *\nfrom   t  where x=3");
  const auto b = Fingerprint("SELECT * FROM t WHERE x = 99");
  EXPECT_EQ(a.sql_id, b.sql_id);
}

TEST(FingerprintTest, InListCollapses) {
  const auto a = Fingerprint("SELECT * FROM t WHERE id IN (1, 2, 3)");
  const auto b = Fingerprint("SELECT * FROM t WHERE id IN (7)");
  const auto c = Fingerprint("SELECT * FROM t WHERE id IN (1,2,3,4,5,6,7,8)");
  EXPECT_EQ(a.sql_id, b.sql_id);
  EXPECT_EQ(a.sql_id, c.sql_id);
  EXPECT_EQ(a.template_text, "SELECT * FROM t WHERE id IN (?)");
}

TEST(FingerprintTest, NegativeNumbersFoldIntoPlaceholder) {
  const auto a = Fingerprint("UPDATE t SET v = -5 WHERE id = 3");
  const auto b = Fingerprint("UPDATE t SET v = 17 WHERE id = -9");
  EXPECT_EQ(a.sql_id, b.sql_id);
}

TEST(FingerprintTest, ArithmeticExpressionKeepsOperator) {
  // "v + 1" must not merge with "v" alone: the + binds to a column value.
  const auto a = Fingerprint("UPDATE t SET v = v + 1 WHERE id = 3");
  EXPECT_EQ(a.template_text, "UPDATE t SET v = v + ? WHERE id = ?");
}

TEST(FingerprintTest, StatementKinds) {
  EXPECT_EQ(Fingerprint("SELECT 1").kind, StatementKind::kSelect);
  EXPECT_EQ(Fingerprint("INSERT INTO t VALUES (1)").kind,
            StatementKind::kInsert);
  EXPECT_EQ(Fingerprint("UPDATE t SET a = 1").kind, StatementKind::kUpdate);
  EXPECT_EQ(Fingerprint("DELETE FROM t WHERE a = 1").kind,
            StatementKind::kDelete);
  EXPECT_EQ(Fingerprint("REPLACE INTO t VALUES (1)").kind,
            StatementKind::kReplace);
  EXPECT_EQ(Fingerprint("ALTER TABLE t ADD COLUMN c INT").kind,
            StatementKind::kDdl);
  EXPECT_EQ(Fingerprint("CREATE INDEX i ON t (c)").kind,
            StatementKind::kDdl);
  EXPECT_EQ(Fingerprint("ROLLBACK").kind, StatementKind::kTransaction);
  EXPECT_EQ(Fingerprint("SET autocommit = 1").kind, StatementKind::kSet);
  EXPECT_EQ(Fingerprint("SHOW STATUS").kind, StatementKind::kShow);
}

TEST(FingerprintTest, StatementKindNamesAreStable) {
  EXPECT_STREQ(StatementKindName(StatementKind::kSelect), "SELECT");
  EXPECT_STREQ(StatementKindName(StatementKind::kDdl), "DDL");
}

TEST(FingerprintTest, TableExtractionFromClauses) {
  const auto info = Fingerprint(
      "SELECT a.x, b.y FROM orders a JOIN customers b ON a.cid = b.id "
      "WHERE a.status = 'open'");
  ASSERT_EQ(info.tables.size(), 2u);
  EXPECT_EQ(info.tables[0], "orders");
  EXPECT_EQ(info.tables[1], "customers");
}

TEST(FingerprintTest, TableExtractionUpdateInsert) {
  EXPECT_EQ(Fingerprint("UPDATE sales SET v = 1").tables,
            (std::vector<std::string>{"sales"}));
  EXPECT_EQ(Fingerprint("INSERT INTO audit_log (a) VALUES (1)").tables,
            (std::vector<std::string>{"audit_log"}));
  EXPECT_EQ(Fingerprint("ALTER TABLE big_table ADD COLUMN c INT").tables,
            (std::vector<std::string>{"big_table"}));
}

TEST(FingerprintTest, TableListWithCommas) {
  const auto info = Fingerprint("SELECT * FROM a, b WHERE a.id = b.id");
  EXPECT_EQ(info.tables, (std::vector<std::string>{"a", "b"}));
}

TEST(FingerprintTest, SchemaQualifiedTable) {
  const auto info = Fingerprint("SELECT * FROM mydb.orders WHERE id = 1");
  ASSERT_EQ(info.tables.size(), 1u);
  EXPECT_EQ(info.tables[0], "orders");
}

TEST(FingerprintTest, DuplicateTableListedOnce) {
  const auto info =
      Fingerprint("SELECT * FROM t a JOIN t b ON a.x = b.y");
  EXPECT_EQ(info.tables, (std::vector<std::string>{"t"}));
}

TEST(FingerprintTest, SqlIdHexFormat) {
  const auto info = Fingerprint("SELECT 1");
  EXPECT_EQ(info.sql_id_hex.size(), 16u);
  for (char c : info.sql_id_hex) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'A' && c <= 'F'));
  }
}

TEST(FingerprintTest, ExistingPlaceholdersPreserved) {
  const auto a = Fingerprint("SELECT * FROM t WHERE id = ?");
  const auto b = Fingerprint("SELECT * FROM t WHERE id = 42");
  EXPECT_EQ(a.sql_id, b.sql_id);
}

TEST(FingerprintTest, EmptyAndDegenerateInputs) {
  EXPECT_EQ(Fingerprint("").template_text, "");
  EXPECT_EQ(Fingerprint("   ").kind, StatementKind::kOther);
  EXPECT_EQ(Fingerprint(";;;").kind, StatementKind::kOther);
}

// Malformed SQL reaches the fingerprint pipeline constantly in production
// (truncated log lines, binary payloads, client bugs). The contract: never
// crash, always produce *some* deterministic fingerprint, and classify
// unrecognizable statements as kOther.

TEST(FingerprintTest, UnterminatedStringLiteral) {
  const TemplateInfo info =
      Fingerprint("SELECT * FROM t WHERE name = 'unterminated");
  EXPECT_EQ(info.kind, StatementKind::kSelect);
  EXPECT_NE(info.sql_id, 0u);
  // Deterministic: the same malformed text maps to the same template.
  EXPECT_EQ(info.sql_id,
            Fingerprint("SELECT * FROM t WHERE name = 'unterminated").sql_id);
}

TEST(FingerprintTest, UnterminatedQuotedIdentifier) {
  const TemplateInfo info = Fingerprint("SELECT `col FROM t");
  EXPECT_EQ(info.kind, StatementKind::kSelect);
  EXPECT_NE(info.sql_id, 0u);
}

TEST(FingerprintTest, TruncatedStatement) {
  const TemplateInfo info = Fingerprint("UPDATE orders SET status =");
  EXPECT_EQ(info.kind, StatementKind::kUpdate);
  EXPECT_NE(info.sql_id, 0u);
  // A differently-truncated statement is a different template.
  EXPECT_NE(info.sql_id, Fingerprint("UPDATE orders SET").sql_id);
}

TEST(FingerprintTest, NonUtf8BytesDoNotCrash) {
  const std::string garbage = {'\x80', '\xff', '\xfe', '\x01', '\x00',
                               '\xc3', '(',    '\xa0', '\xa1'};
  const TemplateInfo info = Fingerprint(garbage);
  EXPECT_EQ(info.kind, StatementKind::kOther);
  // Deterministic over the same bytes.
  EXPECT_EQ(info.sql_id, Fingerprint(garbage).sql_id);
}

TEST(FingerprintTest, GarbagePrefixedStatementKeepsVerbClassification) {
  // Binary junk ahead of a recognizable verb: the classifier keys on the
  // first *word* token, so the statement still classifies — and the junk
  // participates in the fingerprint (different junk, different template).
  const TemplateInfo info = Fingerprint("\x01\x02\x03 SELECT 1");
  EXPECT_NE(info.sql_id, 0u);
  EXPECT_EQ(info.kind, StatementKind::kSelect);
  EXPECT_NE(info.sql_id, Fingerprint("SELECT 1").sql_id);
}

TEST(FingerprintTest, BinaryLiteralsFoldIntoPlaceholder) {
  // MySQL 0b... binary literals must template like any other number; a
  // tokenizer that splits "0b101" into "0" + "b101" leaks the literal
  // value into the template.
  const auto a = Fingerprint("SELECT * FROM t WHERE flags = 0b101");
  const auto b = Fingerprint("SELECT * FROM t WHERE flags = 0b110011");
  const auto c = Fingerprint("SELECT * FROM t WHERE flags = 5");
  EXPECT_EQ(a.sql_id, b.sql_id);
  EXPECT_EQ(a.sql_id, c.sql_id);
  EXPECT_EQ(a.template_text, "SELECT * FROM t WHERE flags = ?");
}

TEST(FingerprintTest, HexLiteralsFoldIntoPlaceholder) {
  const auto a = Fingerprint("SELECT * FROM t WHERE mask = 0x1F");
  const auto b = Fingerprint("SELECT * FROM t WHERE mask = 0xAB12");
  const auto c = Fingerprint("SELECT * FROM t WHERE mask = 31");
  EXPECT_EQ(a.sql_id, b.sql_id);
  EXPECT_EQ(a.sql_id, c.sql_id);
}

TEST(FingerprintTest, EscapedQuotesInsideStringsFoldIntoPlaceholder) {
  // Doubled-quote and backslash escapes must stay inside the literal.
  const auto doubled = Fingerprint("SELECT * FROM t WHERE name = 'it''s'");
  const auto backslash = Fingerprint("SELECT * FROM t WHERE name = 'it\\'s'");
  const auto plain = Fingerprint("SELECT * FROM t WHERE name = 'x'");
  EXPECT_EQ(doubled.sql_id, plain.sql_id);
  EXPECT_EQ(backslash.sql_id, plain.sql_id);
  EXPECT_EQ(doubled.template_text, "SELECT * FROM t WHERE name = ?");
}

// Pins sql_id stability across releases: LogStore catalogs and stored
// history windows are keyed by these ids, so a silent change to the
// fingerprint would orphan persisted state. Update only with a migration
// story.
TEST(FingerprintTest, SqlIdStaysStableAcrossReleases) {
  const auto simple = Fingerprint("SELECT * FROM user_table WHERE uid = 1");
  EXPECT_EQ(simple.template_text, "SELECT * FROM user_table WHERE uid = ?");
  EXPECT_EQ(simple.sql_id, Fnv1a64(simple.template_text));
  EXPECT_EQ(simple.sql_id_hex, HashToHex(simple.sql_id));

  const auto tricky = Fingerprint(
      "SELECT * FROM t WHERE a = -5 AND b = 0x1F AND c = 'it''s'");
  EXPECT_EQ(tricky.template_text,
            "SELECT * FROM t WHERE a = ? AND b = ? AND c = ?");
  EXPECT_EQ(tricky.sql_id, Fnv1a64(tricky.template_text));
}

TEST(TokenizerTest, MalformedInputsNeverCrash) {
  // Each of these historically breaks naive tokenizers: dangling escape,
  // lone quote, backslash at end-of-input, embedded NULs.
  for (const char* sql :
       {"'", "\"", "`", "a\\", "x = '\\", "-- comment with no newline",
        "/* unterminated block comment", "SELECT '\0' FROM t"}) {
    const auto tokens = Tokenize(sql);
    (void)tokens;  // reaching here without UB/crash is the assertion
  }
  const std::string embedded_nul("SELECT \0 FROM t", 15);
  (void)Tokenize(embedded_nul);
}

// Property: fingerprinting is idempotent — re-fingerprinting a template
// text yields the same template.
class FingerprintIdempotenceTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(FingerprintIdempotenceTest, Idempotent) {
  const auto once = Fingerprint(GetParam());
  const auto twice = Fingerprint(once.template_text);
  EXPECT_EQ(once.template_text, twice.template_text);
  EXPECT_EQ(once.sql_id, twice.sql_id);
}

INSTANTIATE_TEST_SUITE_P(
    Statements, FingerprintIdempotenceTest,
    ::testing::Values(
        "SELECT * FROM user_table WHERE uid = 123456",
        "UPDATE sales SET total = total + 3 WHERE region IN (1,2,3)",
        "INSERT INTO logs (msg, ts) VALUES ('x', 1650000000)",
        "SELECT a.c0, b.c1 FROM t1 a JOIN t2 b ON a.k = b.k LIMIT 5",
        "ALTER TABLE big ADD COLUMN extra1 BIGINT DEFAULT 0",
        "DELETE FROM t WHERE created < '2020-01-01'"));

}  // namespace
}  // namespace pinsql::sqltpl
