// Kill-9 chaos verification for the durable store: a child process streams
// the synthetic incident into a DurableOnlineService and is SIGKILLed at
// seeded points mid-ingest. The parent then derives the confirmed input by
// scanning the surviving WAL, replays it through the deterministic replay
// harness, and asserts the recovered service's fingerprint is byte-identical
// to that uninterrupted reference. A corruption variant flips a byte in the
// surviving segment and asserts detection plus clean-prefix equality.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "online/replay.h"
#include "store/durable_service.h"
#include "store/env.h"
#include "store/wal.h"

namespace pinsql::store {
namespace {

std::string MakeTempDir() {
  std::string tmpl = ::testing::TempDir() + "pinsql_chaos_XXXXXX";
  EXPECT_NE(mkdtemp(tmpl.data()), nullptr);
  return tmpl;
}

/// Directory holding the test binary; the chaos child is built next to it.
std::string SelfDir() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  EXPECT_GT(n, 0);
  std::string path(buf, static_cast<size_t>(n));
  const size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}

LogStore SyntheticCatalog() {
  LogStore catalog;
  for (uint64_t id = 1; id <= 4; ++id) {
    TemplateCatalogEntry entry;
    entry.template_text = "SELECT * FROM t WHERE k = ?";
    entry.kind = sqltpl::StatementKind::kSelect;
    entry.tables = {"t"};
    catalog.RegisterTemplate(id, entry);
  }
  TemplateCatalogEntry heavy;
  heavy.template_text = "SELECT * FROM big ORDER BY v";
  heavy.kind = sqltpl::StatementKind::kSelect;
  heavy.tables = {"big"};
  catalog.RegisterTemplate(9, heavy);
  return catalog;
}

pid_t SpawnChild(const std::string& data_dir, const std::string& progress,
                 int checkpoint_every_sec) {
  const std::string child = SelfDir() + "/store_chaos_child";
  const std::string ckpt = std::to_string(checkpoint_every_sec);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execl(child.c_str(), child.c_str(), data_dir.c_str(), progress.c_str(),
            ckpt.c_str(), static_cast<char*>(nullptr));
    ::_exit(127);  // exec failed
  }
  EXPECT_GT(pid, 0);
  return pid;
}

/// Polls the child's progress file until it reports at least
/// `threshold` samples ingested. Returns false on timeout or child death.
bool WaitForProgress(pid_t pid, const std::string& progress, long threshold) {
  for (int spins = 0; spins < 30'000; ++spins) {  // ~60 s ceiling
    std::ifstream in(progress);
    long value = -1;
    if (in >> value && value >= threshold) return true;
    int wstatus = 0;
    if (::waitpid(pid, &wstatus, WNOHANG) == pid) return false;  // died early
    ::usleep(2000);
  }
  return false;
}

void KillChild(pid_t pid) {
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus));
  ASSERT_EQ(WTERMSIG(wstatus), SIGKILL);
}

/// Runs the chaos child until `kill_after_samples` are ingested, then
/// SIGKILLs it. The data dir is left exactly as the crash left it.
void RunKilledChild(const std::string& data_dir, long kill_after_samples,
                    int checkpoint_every_sec) {
  const std::string progress = data_dir + "/progress";
  const pid_t pid = SpawnChild(data_dir, progress, checkpoint_every_sec);
  ASSERT_TRUE(WaitForProgress(pid, progress, kill_after_samples))
      << "child never reached sample " << kill_after_samples;
  KillChild(pid);
}

/// The confirmed input is whatever the surviving WAL delivers: a full
/// scan from the stream base, torn tail truncated, corrupt frames
/// discarded. Trailing records without a sample are kept — RunReplay
/// folds them into its last second exactly as the recovered service
/// stages and drains them.
online::ReplayLog ScanConfirmedInput(const std::string& data_dir,
                                     WalScanStats* stats) {
  online::ReplayLog log;
  const Status status = ScanWal(
      PosixEnv(), data_dir, WalOptions(), WalPosition{},
      [&log](const WalFrame& frame) {
        switch (frame.kind) {
          case FrameKind::kRecordBatch:
            log.records.insert(log.records.end(), frame.records.begin(),
                               frame.records.end());
            break;
          case FrameKind::kSample:
            log.samples.push_back(frame.sample);
            break;
          default:
            break;  // templates re-register from the catalog; no events yet
        }
      },
      stats);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return log;
}

std::string ReferenceFingerprint(const online::ReplayLog& log) {
  online::ReplayOptions options;  // zero_timings defaults on
  return RunReplay(log, SyntheticCatalog(), options).Fingerprint();
}

DurableServiceOptions RecoverOpts(int64_t checkpoint_every_sec) {
  DurableServiceOptions options;
  options.service.scheduler.zero_timings = true;
  options.checkpoint_every_sec = checkpoint_every_sec;
  return options;
}

class StoreChaosTest : public ::testing::TestWithParam<long> {};

/// The acceptance gate: SIGKILL mid-ingest at a seeded point, recover,
/// and the replay fingerprint over the confirmed input must be
/// byte-identical to an uninterrupted run of the same input.
TEST_P(StoreChaosTest, RecoveryAfterSigkillIsByteIdentical) {
  const long kill_after = GetParam();
  const std::string dir = MakeTempDir();
  // checkpoint_every_sec=0 in the child: the WAL alone is the complete
  // confirmed input, so the parent can reconstruct it exactly.
  RunKilledChild(dir, kill_after, /*checkpoint_every_sec=*/0);

  WalScanStats scan;
  const online::ReplayLog confirmed = ScanConfirmedInput(dir, &scan);
  ASSERT_FALSE(scan.seq_gap);
  ASSERT_GE(static_cast<long>(confirmed.samples.size()), kill_after);
  const std::string reference = ReferenceFingerprint(confirmed);

  auto recovered = DurableOnlineService::Open(RecoverOpts(0), dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_FALSE((*recovered)->recovery().wal.seq_gap);
  EXPECT_GT((*recovered)->recovery().wal.frames_valid, 0u);
  ASSERT_TRUE((*recovered)->Stop().ok());
  EXPECT_EQ((*recovered)->Fingerprint(), reference);
  if (kill_after >= 300) {
    // Past the onset (sample index 200) the trigger must have fired.
    EXPECT_FALSE((*recovered)->outcomes().empty());
  }
}

// Kill points: mid-baseline, just past onset, and deep into the incident.
INSTANTIATE_TEST_SUITE_P(KillPoints, StoreChaosTest,
                         ::testing::Values(80L, 230L, 300L));

/// Sanity for the checkpointed path: with periodic checkpoints on, a
/// SIGKILLed run still recovers cleanly (checkpoint + WAL suffix) and the
/// incident is diagnosed after recovery.
TEST(StoreChaosCheckpointTest, KilledRunWithCheckpointsRecovers) {
  const std::string dir = MakeTempDir();
  RunKilledChild(dir, /*kill_after_samples=*/300, /*checkpoint_every_sec=*/60);

  auto recovered = DurableOnlineService::Open(RecoverOpts(60), dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const RecoveryStats& recovery = (*recovered)->recovery();
  EXPECT_TRUE(recovery.checkpoint_loaded);
  EXPECT_FALSE(recovery.wal.seq_gap);
  ASSERT_TRUE((*recovered)->Stop().ok());
  EXPECT_FALSE((*recovered)->outcomes().empty());
  EXPECT_FALSE((*recovered)->Fingerprint().empty());
}

/// Corrupting a frame mid-WAL must be detected — never silently ingested —
/// and recovery must land on the clean prefix, still byte-identical to an
/// uninterrupted run over that prefix.
TEST(StoreChaosCorruptionTest, FlippedByteIsDetectedAndPrefixRecovers) {
  const std::string dir = MakeTempDir();
  RunKilledChild(dir, /*kill_after_samples=*/300, /*checkpoint_every_sec=*/0);

  // The whole run fits in one open segment; flip a byte halfway through,
  // safely past the 24-byte segment header.
  const std::string segment = dir + "/" + SegmentFileName(1);
  std::string bytes;
  ASSERT_TRUE(PosixEnv()->ReadFile(segment, &bytes).ok());
  ASSERT_GT(bytes.size(), 1024u);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  {
    std::ofstream f(segment, std::ios::binary | std::ios::trunc);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  // A fresh service opened on a copy of the corrupted segment must detect
  // the damage during its own recovery scan.
  const std::string copy_dir = MakeTempDir();
  {
    std::ofstream f(copy_dir + "/" + SegmentFileName(1), std::ios::binary);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto direct = DurableOnlineService::Open(RecoverOpts(0), copy_dir);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  EXPECT_GE((*direct)->recovery().wal.frames_corrupt, 1u);
  EXPECT_GT((*direct)->recovery().wal.torn_tail_bytes_truncated, 0u);
  ASSERT_TRUE((*direct)->Stop().ok());

  // The original dir: scan (detects + truncates the corrupt tail), then
  // recover and compare against the clean prefix.
  WalScanStats scan;
  const online::ReplayLog confirmed = ScanConfirmedInput(dir, &scan);
  EXPECT_GE(scan.frames_corrupt, 1u);
  EXPECT_LT(confirmed.samples.size(), 300u);  // corruption cost us data
  EXPECT_FALSE(confirmed.samples.empty());
  const std::string reference = ReferenceFingerprint(confirmed);

  auto recovered = DurableOnlineService::Open(RecoverOpts(0), dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_TRUE((*recovered)->Stop().ok());
  EXPECT_EQ((*recovered)->Fingerprint(), reference);
  EXPECT_EQ((*recovered)->Fingerprint(), (*direct)->Fingerprint());
}

}  // namespace
}  // namespace pinsql::store
