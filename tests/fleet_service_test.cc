/// Fleet-service suite: byte-identical fleet fingerprints across ingest
/// shard counts, diagnoser pool sizes, advance workers and repeat runs;
/// storm triage shape (bounded concurrency, zero confirmed-trigger loss);
/// noisy-neighbor attribution; graceful drain with in-flight diagnoses.

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "eval/fleet_cases.h"
#include "fleet/fleet_replay.h"
#include "fleet/fleet_service.h"
#include "store/env.h"

namespace pinsql::fleet {
namespace {

eval::FleetCaseOptions SmallCaseOptions() {
  eval::FleetCaseOptions options;
  options.num_instances = 12;
  options.instances_per_host = 4;
  options.seed = 21;
  options.duration_sec = 300;
  options.anomaly_fraction = 0.35;
  options.inject_noisy_host = true;
  return options;
}

FleetReplayOptions BaseReplayOptions() {
  FleetReplayOptions options;
  options.fleet.ingestor.num_shards = 4;
  options.fleet.ingestor.window_sec = 900;
  options.fleet.scheduler.cooldown_sec = 120;
  options.fleet.scheduler.top_k = 3;
  options.fleet.pool.pool_size = 4;
  options.fleet.advance_workers = 4;
  options.num_ingest_workers = 2;
  return options;
}

TEST(FleetReplayTest, FingerprintInvariantAcrossShardsPoolWorkersAndRuns) {
  const eval::FleetCase fleet_case = eval::GenerateFleetCase(SmallCaseOptions());
  const FleetReplayOptions base = BaseReplayOptions();

  const FleetResult reference =
      RunFleetReplay(fleet_case.specs, fleet_case.logs, fleet_case.catalog,
                     base);
  const std::string fingerprint = reference.Fingerprint();
  ASSERT_FALSE(fingerprint.empty());
  // Not vacuous: the case produced real triggers and real diagnoses.
  EXPECT_GT(reference.stats.triggers_accepted, 0u);
  EXPECT_GT(reference.stats.diagnoses_ok, 0u);

  FleetReplayOptions one_shard = base;
  one_shard.fleet.ingestor.num_shards = 1;
  FleetReplayOptions serial_pool = base;
  serial_pool.fleet.pool.pool_size = 1;
  FleetReplayOptions wide_pool = base;
  wide_pool.fleet.pool.pool_size = 8;
  FleetReplayOptions serial_advance = base;
  serial_advance.fleet.advance_workers = 1;
  serial_advance.num_ingest_workers = 1;

  EXPECT_EQ(RunFleetReplay(fleet_case.specs, fleet_case.logs,
                           fleet_case.catalog, one_shard)
                .Fingerprint(),
            fingerprint)
      << "ingest shard count changed the fleet result";
  EXPECT_EQ(RunFleetReplay(fleet_case.specs, fleet_case.logs,
                           fleet_case.catalog, serial_pool)
                .Fingerprint(),
            fingerprint)
      << "diagnoser pool size changed the fleet result";
  EXPECT_EQ(RunFleetReplay(fleet_case.specs, fleet_case.logs,
                           fleet_case.catalog, wide_pool)
                .Fingerprint(),
            fingerprint)
      << "diagnoser pool size changed the fleet result";
  EXPECT_EQ(RunFleetReplay(fleet_case.specs, fleet_case.logs,
                           fleet_case.catalog, serial_advance)
                .Fingerprint(),
            fingerprint)
      << "advance/ingest worker count changed the fleet result";
  EXPECT_EQ(RunFleetReplay(fleet_case.specs, fleet_case.logs,
                           fleet_case.catalog, base)
                .Fingerprint(),
            fingerprint)
      << "repeat run diverged";
}

TEST(FleetReplayTest, DiagnosedRootCauseMatchesInjectedCulprit) {
  const eval::FleetCase fleet_case = eval::GenerateFleetCase(SmallCaseOptions());
  const FleetResult result = RunFleetReplay(
      fleet_case.specs, fleet_case.logs, fleet_case.catalog,
      BaseReplayOptions());

  size_t checked = 0;
  size_t correct = 0;
  for (const FleetOutcome& outcome : result.outcomes) {
    if (outcome.disposition != FleetOutcome::Disposition::kDiagnosed ||
        !outcome.outcome.ok || outcome.outcome.report.hsqls.empty()) {
      continue;
    }
    const auto& truth = fleet_case.truth[outcome.outcome.trigger.instance_id];
    if (truth.kind == eval::FleetInstanceTruth::Kind::kClean) continue;
    ++checked;
    // The fleet runs with no workload history, so R-SQL verification falls
    // back and the H-SQL ranking is the discriminating signal (same as the
    // solo online deployment).
    if (outcome.outcome.report.hsqls.front().sql_id == truth.culprit_sql_id) {
      ++correct;
    }
  }
  ASSERT_GT(checked, 0u);
  // The synthetic culprit surge is unambiguous; the pipeline should nail
  // most of them (exactness is covered by the single-instance e2e suite).
  EXPECT_GE(correct * 2, checked);
}

TEST(FleetServiceTest, StormCollapsesIntoBoundedTriageWithZeroLoss) {
  eval::FleetCaseOptions case_options;
  case_options.num_instances = 16;
  case_options.instances_per_host = 4;
  case_options.seed = 33;
  case_options.duration_sec = 360;
  case_options.anomaly_fraction = 0.0;
  case_options.inject_noisy_host = false;
  case_options.inject_storm = true;
  case_options.storm_fraction = 0.8;
  case_options.storm_onset_offset_sec = 200;
  case_options.storm_duration_sec = 80;
  const eval::FleetCase fleet_case = eval::GenerateFleetCase(case_options);

  FleetReplayOptions options = BaseReplayOptions();
  options.fleet.pool.pool_size = 2;
  options.fleet.correlator.storm_min_instances = 6;
  options.fleet.correlator.storm_window_sec = 20;
  options.fleet.correlator.storm_triage_k = 3;
  options.fleet.correlator.neighbor_min_cotenants = 0;  // isolate storms
  const FleetResult result = RunFleetReplay(
      fleet_case.specs, fleet_case.logs, fleet_case.catalog, options);

  ASSERT_GE(result.stats.storms_detected, 1u);
  ASSERT_FALSE(result.storms.empty());

  // Concurrency never exceeded the pool bound.
  EXPECT_LE(result.stats.pool.max_observed_concurrency,
            options.fleet.pool.pool_size);
  EXPECT_GE(result.stats.pool.max_observed_concurrency, 1u);

  // Zero confirmed-trigger loss: every accepted trigger is accounted as
  // either a full diagnosis or an explicit storm deferral.
  size_t diagnosed = 0;
  size_t deferred = 0;
  for (const FleetOutcome& outcome : result.outcomes) {
    if (outcome.disposition == FleetOutcome::Disposition::kDiagnosed) {
      ++diagnosed;
    } else {
      ++deferred;
      EXPECT_NE(outcome.storm_batch, 0u);
      EXPECT_FALSE(outcome.outcome.ok);
    }
  }
  EXPECT_EQ(diagnosed + deferred, result.stats.triggers_accepted);
  EXPECT_EQ(deferred, result.stats.storm_deferred);
  EXPECT_GT(deferred, 0u) << "storm did not collapse anything";

  for (const StormBatch& storm : result.storms) {
    EXPECT_GE(storm.closed_sec, storm.opened_sec);
    EXPECT_LE(storm.triaged.size(), options.fleet.correlator.storm_triage_k);
    EXPECT_GE(storm.members.size(), storm.triaged.size());
    // Triaged members really ran: each has a diagnosed outcome tagged with
    // the batch id.
    for (uint32_t instance_id : storm.triaged) {
      const bool found = std::any_of(
          result.outcomes.begin(), result.outcomes.end(),
          [&](const FleetOutcome& outcome) {
            return outcome.disposition ==
                       FleetOutcome::Disposition::kDiagnosed &&
                   outcome.storm_batch == storm.id &&
                   outcome.outcome.trigger.instance_id == instance_id;
          });
      EXPECT_TRUE(found) << "triaged instance " << instance_id
                         << " of batch " << storm.id << " never diagnosed";
    }
  }
}

TEST(FleetServiceTest, NoisyNeighborAttributionFindsDominantTenant) {
  eval::FleetCaseOptions case_options = SmallCaseOptions();
  case_options.anomaly_fraction = 0.1;
  const eval::FleetCase fleet_case = eval::GenerateFleetCase(case_options);

  FleetReplayOptions options = BaseReplayOptions();
  options.fleet.correlator.storm_min_instances = 100;  // isolate neighbors
  options.fleet.correlator.neighbor_min_cotenants = 3;
  options.fleet.correlator.neighbor_window_sec = 120;
  const FleetResult result = RunFleetReplay(
      fleet_case.specs, fleet_case.logs, fleet_case.catalog, options);

  const auto verdict = std::find_if(
      result.neighbors.begin(), result.neighbors.end(),
      [&](const NoisyNeighborVerdict& v) {
        return v.host_id == fleet_case.noisy_host_id;
      });
  ASSERT_NE(verdict, result.neighbors.end())
      << "injected noisy host never flagged";
  EXPECT_EQ(verdict->dominant_instance, fleet_case.noisy_dominant_instance);
  EXPECT_GE(verdict->cotenants.size(), 3u);
  for (uint32_t instance_id : verdict->cotenants) {
    EXPECT_EQ(fleet_case.truth[instance_id].host_id,
              fleet_case.noisy_host_id)
        << "verdict crossed hosts";
  }
}

TEST(FleetServiceTest, GracefulDrainRunsInFlightDiagnoses) {
  const std::vector<FleetInstanceSpec> specs = {{1, 0}, {2, 0}};
  FleetOptions options;
  options.scheduler.diagnose_delay_sec = 60;
  options.scheduler.cooldown_sec = 300;
  options.pool.pool_size = 2;
  options.advance_workers = 2;
  FleetService service(specs, options);
  TemplateCatalogEntry entry;
  entry.template_text = "SELECT c FROM t0 WHERE k = ?";
  entry.kind = sqltpl::StatementKind::kSelect;
  entry.tables = {"t0"};
  service.RegisterTemplateFleetWide(1001, entry);
  service.Start();

  // 100 s of calm, then a hard step: the trigger confirms a few seconds
  // in, but its diagnosis is due ~60 s later — past the stream's end.
  for (int64_t sec = 0; sec < 140; ++sec) {
    for (uint32_t instance_id = 1; instance_id <= 2; ++instance_id) {
      const int64_t records = sec >= 100 ? 20 : 2;
      for (int64_t k = 0; k < records; ++k) {
        QueryLogRecord record;
        record.arrival_ms = sec * 1000 + k;
        record.sql_id = 1001;
        record.response_ms = sec >= 100 ? 90.0 : 4.0;
        record.examined_rows = sec >= 100 ? 30000 : 40;
        service.IngestRecord(instance_id, record);
      }
      online::PerfSample sample;
      sample.sec = sec;
      sample.active_session = sec >= 100 ? 45.0 : 5.0;
      sample.cpu_usage = 20.0;
      service.IngestMetrics(instance_id, sample);
    }
    service.AdvanceTo(sec);
  }

  const FleetStats before = service.stats();
  ASSERT_EQ(before.triggers_accepted, 2u) << "one trigger per instance";
  EXPECT_TRUE(service.outcomes().empty()) << "diagnoses were not yet due";
  EXPECT_EQ(before.pool.completed, 0u);

  service.Stop();
  EXPECT_FALSE(service.running());
  const FleetStats after = service.stats();
  ASSERT_EQ(service.outcomes().size(), 2u);
  std::set<uint32_t> seen;
  for (const FleetOutcome& outcome : service.outcomes()) {
    EXPECT_EQ(outcome.disposition, FleetOutcome::Disposition::kDiagnosed);
    EXPECT_TRUE(outcome.outcome.ok) << outcome.outcome.error;
    seen.insert(outcome.outcome.trigger.instance_id);
  }
  EXPECT_EQ(seen, (std::set<uint32_t>{1, 2}));
  EXPECT_EQ(after.diagnoses_ok, 2u);
  EXPECT_LE(after.pool.max_observed_concurrency, options.pool.pool_size);

  service.Stop();  // idempotent
  EXPECT_EQ(service.outcomes().size(), 2u);
}

/// Env whose file opens always fail: every instance's journal writer fails
/// to open and the fleet degrades to in-memory operation.
class OpenFailEnv : public store::Env {
 public:
  StatusOr<std::unique_ptr<store::WritableFile>> NewWritableFile(
      const std::string& path) override {
    return Status::Internal("injected open failure: " + path);
  }
  Status ReadFile(const std::string& path, std::string* out) override {
    return store::PosixEnv()->ReadFile(path, out);
  }
  StatusOr<std::vector<std::string>> ListDir(const std::string& dir) override {
    return store::PosixEnv()->ListDir(dir);
  }
  Status CreateDirs(const std::string& dir) override {
    return store::PosixEnv()->CreateDirs(dir);
  }
  Status DeleteFile(const std::string& path) override {
    return store::PosixEnv()->DeleteFile(path);
  }
  Status RenameFile(const std::string& from, const std::string& to) override {
    return store::PosixEnv()->RenameFile(from, to);
  }
  Status TruncateFile(const std::string& path, uint64_t size) override {
    return store::PosixEnv()->TruncateFile(path, size);
  }
  StatusOr<uint64_t> FileSize(const std::string& path) override {
    return store::PosixEnv()->FileSize(path);
  }
  bool FileExists(const std::string& path) override {
    return store::PosixEnv()->FileExists(path);
  }
  Status SyncDir(const std::string& dir) override {
    return store::PosixEnv()->SyncDir(dir);
  }
};

TEST(FleetServiceTest, DegradedJournalDoesNotAccumulatePendingRecords) {
  std::string data_dir = ::testing::TempDir() + "pinsql_fleet_XXXXXX";
  ASSERT_NE(mkdtemp(data_dir.data()), nullptr);
  OpenFailEnv env;
  FleetOptions options;
  options.data_dir = data_dir;
  options.env = &env;
  FleetService service({{7, 0}}, options);
  service.Start();

  // The instance runs in-memory: ingest keeps streaming, and nothing may
  // buffer for a journal that has no writer to drain it.
  for (int64_t sec = 0; sec < 60; ++sec) {
    for (int64_t k = 0; k < 5; ++k) {
      QueryLogRecord record;
      record.arrival_ms = sec * 1000 + k;
      record.sql_id = 1001;
      record.response_ms = 4.0;
      record.examined_rows = 40;
      EXPECT_TRUE(service.IngestRecord(7, record));
    }
    online::PerfSample sample;
    sample.sec = sec;
    sample.active_session = 5.0;
    EXPECT_TRUE(service.IngestMetrics(7, sample));
    service.AdvanceTo(sec);
  }
  const FleetStats stats = service.stats();
  EXPECT_EQ(stats.pending_journal_records, 0u);
  EXPECT_GT(stats.ingest.records_enqueued, 0u);
  service.Stop();
}

TEST(FleetServiceTest, UnknownInstanceIngestIsRejected) {
  FleetService service({{7, 0}}, FleetOptions{});
  service.Start();
  online::PerfSample sample;
  sample.sec = 1;
  EXPECT_FALSE(service.IngestMetrics(8, sample));
  EXPECT_TRUE(service.IngestMetrics(7, sample));
  EXPECT_FALSE(service.IngestRecord(8, QueryLogRecord{}));
  EXPECT_EQ(service.archive(8), nullptr);
  ASSERT_NE(service.archive(7), nullptr);
  service.Stop();
}

}  // namespace
}  // namespace pinsql::fleet
