#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "logstore/log_store.h"

namespace pinsql {
namespace {

QueryLogRecord Rec(int64_t arrival_ms, uint64_t sql_id, double response = 1.0,
                   int64_t rows = 10) {
  QueryLogRecord r;
  r.arrival_ms = arrival_ms;
  r.sql_id = sql_id;
  r.response_ms = response;
  r.examined_rows = rows;
  return r;
}

TEST(LogStoreTest, AppendAndSize) {
  LogStore store;
  EXPECT_EQ(store.size(), 0u);
  store.Append(Rec(10, 1));
  store.Append(Rec(20, 2));
  EXPECT_EQ(store.size(), 2u);
}

TEST(LogStoreTest, OutOfOrderAppendsAreSortedOnScan) {
  // Records arrive in completion order, which differs from arrival order.
  LogStore store;
  store.Append(Rec(30, 3));
  store.Append(Rec(10, 1));
  store.Append(Rec(20, 2));
  const auto& sorted = store.SortedRecords();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].sql_id, 1u);
  EXPECT_EQ(sorted[1].sql_id, 2u);
  EXPECT_EQ(sorted[2].sql_id, 3u);
}

TEST(LogStoreTest, RangeIsHalfOpen) {
  LogStore store;
  for (int64_t t : {10, 20, 30, 40}) {
    store.Append(Rec(t, static_cast<uint64_t>(t)));
  }
  const auto range = store.Range(20, 40);
  ASSERT_EQ(range.size(), 2u);
  EXPECT_EQ(range[0].arrival_ms, 20);
  EXPECT_EQ(range[1].arrival_ms, 30);
}

TEST(LogStoreTest, ScanRangeVisitsInOrder) {
  LogStore store;
  store.Append(Rec(50, 5));
  store.Append(Rec(10, 1));
  std::vector<int64_t> seen;
  store.ScanRange(0, 100,
                  [&](const QueryLogRecord& r) { seen.push_back(r.arrival_ms); });
  EXPECT_EQ(seen, (std::vector<int64_t>{10, 50}));
}

TEST(LogStoreTest, TrimBeforeImplementsRetention) {
  LogStore store;
  for (int64_t t = 0; t < 100; t += 10) {
    store.Append(Rec(t, 1));
  }
  const size_t dropped = store.TrimBefore(35);
  EXPECT_EQ(dropped, 4u);
  EXPECT_EQ(store.size(), 6u);
  EXPECT_EQ(store.SortedRecords().front().arrival_ms, 40);
}

TEST(LogStoreTest, TrimExpiredKeepsRecordExactlyAtRetentionEdge) {
  // The retention window is half-open like ScanRange: [now - 3d, +inf).
  // A record exactly 3 days old is the first retained instant, not the
  // last expired one.
  const int64_t now = 10 * LogStore::kRetentionMs;
  const int64_t edge = now - LogStore::kRetentionMs;
  LogStore store;
  store.Append(Rec(edge - 1, 1));  // one instant too old: expired
  store.Append(Rec(edge, 2));      // exactly at the edge: retained
  store.Append(Rec(edge + 1, 3));
  store.Append(Rec(now, 4));

  EXPECT_EQ(store.TrimExpired(now), 1u);
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.SortedRecords().front().arrival_ms, edge);
  EXPECT_EQ(store.SortedRecords().front().sql_id, 2u);

  // The survivors stay scannable with the same half-open convention.
  std::vector<uint64_t> seen;
  store.ScanRange(edge, now + 1,
                  [&](const QueryLogRecord& r) { seen.push_back(r.sql_id); });
  EXPECT_EQ(seen, (std::vector<uint64_t>{2, 3, 4}));

  // A second pass at the same instant is a no-op.
  EXPECT_EQ(store.TrimExpired(now), 0u);
}

TEST(LogStoreTest, TrimExpiredHonorsCustomRetention) {
  LogStore store;
  store.Append(Rec(100, 1));
  store.Append(Rec(200, 2));
  EXPECT_EQ(store.TrimExpired(/*now_ms=*/300, /*retention_ms=*/100), 1u);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.SortedRecords().front().sql_id, 2u);
}

TEST(LogStoreTest, TrimEverything) {
  LogStore store;
  store.Append(Rec(5, 1));
  EXPECT_EQ(store.TrimBefore(1000), 1u);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.TrimBefore(1000), 0u);
}

TEST(LogStoreTest, TemplateCatalog) {
  LogStore store;
  TemplateCatalogEntry entry;
  entry.template_text = "SELECT * FROM t WHERE id = ?";
  entry.kind = sqltpl::StatementKind::kSelect;
  entry.tables = {"t"};
  store.RegisterTemplate(42, entry);
  const TemplateCatalogEntry* found = store.FindTemplate(42);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->template_text, "SELECT * FROM t WHERE id = ?");
  EXPECT_EQ(found->tables, (std::vector<std::string>{"t"}));
  EXPECT_EQ(store.FindTemplate(43), nullptr);
}

TEST(LogStoreTest, RegisterTemplateIsIdempotent) {
  LogStore store;
  TemplateCatalogEntry a;
  a.template_text = "first";
  store.RegisterTemplate(1, a);
  TemplateCatalogEntry b;
  b.template_text = "second";
  store.RegisterTemplate(1, b);  // ignored; first registration wins
  EXPECT_EQ(store.FindTemplate(1)->template_text, "first");
  EXPECT_EQ(store.catalog().size(), 1u);
}

TEST(LogStoreTest, AppendAfterScanKeepsOrderCorrect) {
  LogStore store;
  store.Append(Rec(10, 1));
  store.Append(Rec(30, 3));
  EXPECT_EQ(store.Range(0, 100).size(), 2u);
  store.Append(Rec(20, 2));  // out of order after a sort
  const auto range = store.Range(0, 100);
  ASSERT_EQ(range.size(), 3u);
  EXPECT_EQ(range[1].sql_id, 2u);
}

// Boundary behaviour: retention trims and scans at exactly a record's
// timestamp, and operations on empty / fully-trimmed stores.

TEST(LogStoreTest, TrimExactlyAtRecordTimestampKeepsIt) {
  LogStore store;
  store.Append(Rec(10, 1));
  store.Append(Rec(20, 2));
  store.Append(Rec(30, 3));
  // TrimBefore drops arrival_ms < cutoff; a record exactly at the cutoff
  // survives (retention is half-open, like Range).
  EXPECT_EQ(store.TrimBefore(20), 1u);
  ASSERT_EQ(store.size(), 2u);
  EXPECT_EQ(store.SortedRecords()[0].arrival_ms, 20);
  // Trimming again at the same cutoff is a no-op.
  EXPECT_EQ(store.TrimBefore(20), 0u);
  EXPECT_EQ(store.size(), 2u);
}

TEST(LogStoreTest, ScanOverEmptyStore) {
  LogStore store;
  size_t visited = 0;
  store.ScanRange(0, 1000, [&](const QueryLogRecord&) { ++visited; });
  EXPECT_EQ(visited, 0u);
  EXPECT_TRUE(store.Range(0, 1000).empty());
  EXPECT_TRUE(store.SortedRecords().empty());
  EXPECT_EQ(store.TrimBefore(1000), 0u);
}

TEST(LogStoreTest, ScanOverFullyTrimmedStore) {
  LogStore store;
  store.Append(Rec(10, 1));
  store.Append(Rec(20, 2));
  EXPECT_EQ(store.TrimBefore(1000), 2u);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(store.Range(0, 1000).empty());
  // The store keeps working after total retention expiry.
  store.Append(Rec(2000, 3));
  ASSERT_EQ(store.Range(0, 3000).size(), 1u);
  EXPECT_EQ(store.Range(0, 3000)[0].sql_id, 3u);
}

TEST(LogStoreTest, EmptyAndInvertedRanges) {
  LogStore store;
  store.Append(Rec(10, 1));
  store.Append(Rec(20, 2));
  EXPECT_TRUE(store.Range(15, 15).empty());   // empty window
  EXPECT_TRUE(store.Range(20, 10).empty());   // inverted window
  EXPECT_TRUE(store.Range(100, 200).empty()); // past the last record
  EXPECT_TRUE(store.Range(-50, 0).empty());   // before the first record
}

TEST(LogStoreTest, OutOfOrderAppendsInterleavedWithTrims) {
  LogStore store;
  store.Append(Rec(50, 5));
  store.Append(Rec(10, 1));  // out of order
  EXPECT_EQ(store.TrimBefore(20), 1u);  // sorts, then trims the t=10 record
  store.Append(Rec(5, 9));  // arrives late, already older than the cutoff
  store.Append(Rec(60, 6));
  const auto range = store.Range(0, 100);
  ASSERT_EQ(range.size(), 3u);
  EXPECT_EQ(range[0].sql_id, 9u);
  EXPECT_EQ(range[1].sql_id, 5u);
  EXPECT_EQ(range[2].sql_id, 6u);
}

TEST(LogStoreTest, ReplaceRecordsKeepsCatalogAndResorts) {
  LogStore store;
  TemplateCatalogEntry entry;
  entry.template_text = "SELECT * FROM t WHERE id = ?";
  store.RegisterTemplate(7, entry);
  store.Append(Rec(10, 1));
  EXPECT_EQ(store.Range(0, 100).size(), 1u);  // force a sort first

  store.ReplaceRecords({Rec(30, 3), Rec(20, 2)});  // unsorted replacement
  const auto range = store.Range(0, 100);
  ASSERT_EQ(range.size(), 2u);
  EXPECT_EQ(range[0].sql_id, 2u);
  EXPECT_EQ(range[1].sql_id, 3u);
  ASSERT_NE(store.FindTemplate(7), nullptr);
  EXPECT_EQ(store.FindTemplate(7)->template_text,
            "SELECT * FROM t WHERE id = ?");

  store.ReplaceRecords({});  // replace with nothing
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(store.Range(0, 100).empty());
}

TEST(LogStoreTest, SelfCopyAssignmentIsANoOp) {
  LogStore store;
  for (int i = 0; i < 10; ++i) store.Append(Rec(10 - i, 1.0 + i));
  store.RegisterTemplate(7, TemplateCatalogEntry{"SELECT ?", {}, {}});
  // Through a reference so the compiler cannot elide the aliasing call.
  LogStore& alias = store;
  alias = store;
  EXPECT_EQ(store.size(), 10u);
  EXPECT_NE(store.FindTemplate(7), nullptr);
  const auto snap = store.SnapshotRange(0, 100);
  ASSERT_EQ(snap.size(), 10u);
  EXPECT_EQ(snap.front().arrival_ms, 1);
  EXPECT_EQ(snap.back().arrival_ms, 10);
}

TEST(LogStoreTest, SelfMoveAssignmentLosesNothing) {
  LogStore store;
  for (int i = 0; i < 10; ++i) store.Append(Rec(i + 1, 1.0));
  LogStore& alias = store;
  store = std::move(alias);
  EXPECT_EQ(store.size(), 10u);
  EXPECT_EQ(store.SnapshotRange(0, 100).size(), 10u);
}

TEST(LogStoreTest, MovedFromStoreIsEmptyAndAcceptsAppends) {
  LogStore source;
  for (int i = 0; i < 5; ++i) source.Append(Rec(5 - i, 1.0));  // unsorted
  source.RegisterTemplate(3, TemplateCatalogEntry{"UPDATE ?", {}, {}});
  LogStore dest(std::move(source));
  EXPECT_EQ(dest.size(), 5u);
  EXPECT_NE(dest.FindTemplate(3), nullptr);
  // The moved-from store is a well-defined empty store with a fresh mutex
  // and no stale sorted-flag: appends and scans behave like a new store.
  EXPECT_EQ(source.size(), 0u);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(source.FindTemplate(3), nullptr);
  source.Append(Rec(20, 2.0));
  source.Append(Rec(10, 1.0));  // out of order: must trigger a fresh sort
  const auto snap = source.SnapshotRange(0, 100);
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap.front().arrival_ms, 10);
  EXPECT_EQ(snap.back().arrival_ms, 20);
  // And the destination kept the source's unsorted state correctly.
  const auto moved = dest.SnapshotRange(0, 100);
  ASSERT_EQ(moved.size(), 5u);
  EXPECT_EQ(moved.front().arrival_ms, 1);
}

TEST(LogStoreTest, MoveAssignedOverStoreReleasesOldRecords) {
  LogStore a;
  for (int i = 0; i < 100; ++i) a.Append(Rec(i + 1, 1.0));
  LogStore b;
  b.Append(Rec(999, 9.0));
  b = std::move(a);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.SnapshotRange(0, 1000).size(), 100u);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move)
  a.Append(Rec(1, 1.0));
  EXPECT_EQ(a.size(), 1u);
}

TEST(LogStoreTest, AppendSpansIsOneAtomicBatch) {
  LogStore store;
  const std::vector<QueryLogRecord> first = {Rec(3, 1), Rec(1, 2)};
  const std::vector<QueryLogRecord> second = {Rec(2, 3, 3.0)};
  store.AppendSpans({{first.data(), first.size()},
                     {second.data(), second.size()}});
  const auto snap = store.SnapshotRange(0, 10);
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].arrival_ms, 1);
  EXPECT_EQ(snap[1].arrival_ms, 2);
  EXPECT_EQ(snap[2].arrival_ms, 3);
  EXPECT_DOUBLE_EQ(snap[1].response_ms, 3.0);
}

TEST(LogStoreTest, TrimRecyclesArenaSlabs) {
  LogStore store;
  constexpr int kRecords = 100000;
  for (int i = 0; i < kRecords; ++i) store.Append(Rec(i + 1, 1.0));
  const auto before = store.arena_stats();
  EXPECT_GT(before.slabs_in_use, 1u);
  // Expire almost everything: the drained slabs must come back as free
  // capacity (the arena's compaction) rather than stay resident.
  store.TrimBefore(kRecords - 10);
  const auto after = store.arena_stats();
  EXPECT_EQ(store.size(), 11u);
  EXPECT_GT(after.slabs_free, 0u);
  EXPECT_LT(after.live_bytes, before.live_bytes);
  // Refill reuses the recycled slabs instead of growing the arena.
  for (int i = 0; i < kRecords; ++i) store.Append(Rec(kRecords + i, 1.0));
  EXPECT_EQ(store.arena_stats().slabs_allocated, before.slabs_allocated);
}

TEST(LogStoreConcurrencyTest, SnapshotRangeRacesAppendSafely) {
  // The online ingestor appends while the DiagnosisScheduler snapshots.
  // Every snapshot must be a consistent point-in-time copy: sorted, never
  // torn, and only ever growing between consecutive snapshots.
  LogStore store;
  constexpr int kBatches = 200;
  constexpr int kPerBatch = 25;
  std::atomic<bool> done{false};
  std::thread writer([&]() {
    for (int b = 0; b < kBatches; ++b) {
      std::vector<QueryLogRecord> batch;
      batch.reserve(kPerBatch);
      for (int i = 0; i < kPerBatch; ++i) {
        // Descending arrivals keep the store perpetually unsorted, so
        // snapshots keep racing the lazy sort, not just the copy.
        batch.push_back(
            Rec((kBatches - b) * 1000 + (kPerBatch - i), 1 + b % 7));
      }
      store.AppendBatch(batch);
    }
    done.store(true, std::memory_order_release);
  });
  size_t last_size = 0;
  while (!done.load(std::memory_order_acquire)) {
    const auto snap = store.SnapshotRange(0, 1'000'000'000);
    EXPECT_GE(snap.size(), last_size);
    EXPECT_EQ(snap.size() % kPerBatch, 0u) << "torn batch observed";
    EXPECT_TRUE(std::is_sorted(snap.begin(), snap.end(),
                               [](const QueryLogRecord& a,
                                  const QueryLogRecord& b) {
                                 return a.arrival_ms < b.arrival_ms;
                               }));
    last_size = snap.size();
  }
  writer.join();
  EXPECT_EQ(store.SnapshotRange(0, 1'000'000'000).size(),
            static_cast<size_t>(kBatches * kPerBatch));
}

TEST(LogStoreConcurrencyTest, CopyRacesInFlightLazySort) {
  // Regression: the copy constructor must serialize with the source's lazy
  // sort (both mutate the mutable records_ / sorted_ fields); copying while
  // another thread's ScanRange sorts used to be a data race.
  constexpr int kRecords = 5000;
  for (int round = 0; round < 8; ++round) {
    LogStore store;
    for (int i = 0; i < kRecords; ++i) {
      store.Append(Rec(kRecords - i, 1 + i % 5));  // descending: unsorted
    }
    std::thread sorter([&]() {
      size_t seen = 0;
      store.ScanRange(0, kRecords + 1,
                      [&](const QueryLogRecord&) { ++seen; });
      EXPECT_EQ(seen, static_cast<size_t>(kRecords));
    });
    const LogStore copy(store);
    sorter.join();
    EXPECT_EQ(copy.size(), static_cast<size_t>(kRecords));
    const auto sorted = copy.SnapshotRange(0, kRecords + 1);
    ASSERT_EQ(sorted.size(), static_cast<size_t>(kRecords));
    EXPECT_EQ(sorted.front().arrival_ms, 1);
    EXPECT_EQ(sorted.back().arrival_ms, kRecords);
  }
}

}  // namespace
}  // namespace pinsql
