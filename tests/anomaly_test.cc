#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "anomaly/detectors.h"
#include "anomaly/pettitt.h"
#include "anomaly/phenomenon.h"
#include "util/rng.h"

namespace pinsql::anomaly {
namespace {

/// Baseline ~N(10, 1) series with optional injected segments.
TimeSeries NoisySeries(int64_t start, size_t n, uint64_t seed,
                       double mean = 10.0, double stddev = 1.0) {
  Rng rng(seed);
  TimeSeries ts(start, 1, n);
  for (size_t i = 0; i < n; ++i) ts[i] = rng.Normal(mean, stddev);
  return ts;
}

// ---------------------------------------------------------------- Features

TEST(DetectorTest, CleanSeriesHasNoEvents) {
  const TimeSeries ts = NoisySeries(0, 600, 1);
  const auto events = DetectFeatures(ts, DetectorOptions{});
  EXPECT_TRUE(events.empty());
}

TEST(DetectorTest, SpikeUpDetectedAndBounded) {
  TimeSeries ts = NoisySeries(0, 600, 2);
  for (size_t i = 300; i < 330; ++i) ts[i] = 60.0;  // recovers -> spike
  const auto events = DetectFeatures(ts, DetectorOptions{});
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, FeatureType::kSpikeUp);
  EXPECT_NEAR(static_cast<double>(events[0].start_sec), 300.0, 2.0);
  EXPECT_NEAR(static_cast<double>(events[0].end_sec), 330.0, 2.0);
  EXPECT_GT(events[0].severity, 6.0);
}

TEST(DetectorTest, SpikeDownDetected) {
  TimeSeries ts = NoisySeries(0, 600, 3, 50.0, 2.0);
  for (size_t i = 200; i < 220; ++i) ts[i] = 1.0;
  const auto events = DetectFeatures(ts, DetectorOptions{});
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, FeatureType::kSpikeDown);
}

TEST(DetectorTest, LevelShiftWhenNoRecovery) {
  TimeSeries ts = NoisySeries(0, 600, 4);
  for (size_t i = 300; i < 600; i++) ts[i] = 80.0;  // stays high to the end
  const auto events = DetectFeatures(ts, DetectorOptions{});
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, FeatureType::kLevelShiftUp);
  EXPECT_EQ(events[0].end_sec, 600);
}

TEST(DetectorTest, LongRunClassifiedAsLevelShiftEvenIfRecovers) {
  DetectorOptions options;
  options.level_shift_min_sec = 100;
  TimeSeries ts = NoisySeries(0, 600, 5);
  for (size_t i = 200; i < 350; ++i) ts[i] = 70.0;  // 150 s > 100 s
  const auto events = DetectFeatures(ts, options);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, FeatureType::kLevelShiftUp);
}

TEST(DetectorTest, BaselineFrozenDuringLongAnomaly) {
  // A 200 s pile-up must stay one event: the contaminated points must not
  // enter the baseline and "normalize" the anomaly away.
  TimeSeries ts = NoisySeries(0, 700, 6);
  for (size_t i = 400; i < 620; ++i) {
    ts[i] = 60.0 + static_cast<double>(i - 400) * 0.2;  // growing pile-up
  }
  DetectorOptions options;
  const auto events = DetectFeatures(ts, options);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_LE(events[0].start_sec, 402);
  EXPECT_GE(events[0].end_sec, 618);
}

TEST(DetectorTest, NoDetectionBeforeMinBaseline) {
  DetectorOptions options;
  options.min_baseline = 50;
  TimeSeries ts = NoisySeries(0, 60, 7);
  ts[10] = 1000.0;  // before the baseline warms up
  const auto events = DetectFeatures(ts, options);
  EXPECT_TRUE(events.empty());
}

TEST(DetectorTest, FlatBaselineUsesMadFloor) {
  // Constant series then a small absolute bump: the MAD floor keeps the
  // z-score finite and the small bump unflagged.
  TimeSeries ts(0, 1, std::vector<double>(300, 5.0));
  ts[200] = 5.4;
  EXPECT_TRUE(DetectFeatures(ts, DetectorOptions{}).empty());
  ts[210] = 50.0;
  EXPECT_EQ(DetectFeatures(ts, DetectorOptions{}).size(), 1u);
}

TEST(DetectorTest, HasFeatureInRange) {
  std::vector<FeatureEvent> events = {
      {FeatureType::kSpikeUp, 100, 120, 8.0}};
  EXPECT_TRUE(HasFeatureInRange(events, FeatureType::kSpikeUp, 110, 200));
  EXPECT_FALSE(HasFeatureInRange(events, FeatureType::kSpikeUp, 120, 200));
  EXPECT_FALSE(HasFeatureInRange(events, FeatureType::kSpikeDown, 100, 120));
}

TEST(DetectorTest, FeatureTypeNames) {
  EXPECT_STREQ(FeatureTypeName(FeatureType::kSpikeUp), "spike_up");
  EXPECT_STREQ(FeatureTypeName(FeatureType::kLevelShiftDown),
               "level_shift_down");
}

TEST(DetectorTest, StreamingPushMatchesBatchDetectFeatures) {
  // The online service feeds StreamingFeatureDetector one sample at a
  // time; the batch DetectFeatures must be the exact same computation. Mix
  // spikes, a recovery, a terminal level shift and telemetry gaps.
  TimeSeries ts = NoisySeries(5000, 900, 77);
  for (size_t i = 200; i < 230; ++i) ts[i] = 120.0;  // spike, recovers
  for (size_t i = 480; i < 490; ++i) ts[i] = 0.1;    // downward spike
  for (size_t i = 520; i < 524; ++i) {
    ts[i] = std::numeric_limits<double>::quiet_NaN();
  }
  for (size_t i = 700; i < 900; ++i) ts[i] = 95.0;   // never recovers

  const DetectorOptions options;
  const auto batch = DetectFeatures(ts, options);
  ASSERT_GE(batch.size(), 3u);

  StreamingFeatureDetector streaming(options, ts.start_time(),
                                     ts.interval_sec());
  std::vector<FeatureEvent> streamed;
  for (size_t i = 0; i < ts.size(); ++i) {
    if (auto event = streaming.Push(ts[i])) streamed.push_back(*event);
  }
  if (auto event = streaming.Finish()) streamed.push_back(*event);

  ASSERT_EQ(streamed.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(streamed[i].type, batch[i].type);
    EXPECT_EQ(streamed[i].start_sec, batch[i].start_sec);
    EXPECT_EQ(streamed[i].end_sec, batch[i].end_sec);
    EXPECT_DOUBLE_EQ(streamed[i].severity, batch[i].severity);
  }
}

// --------------------------------------------------------------- Phenomena

TEST(PhenomenonTest, RuleMatching) {
  PhenomenonRule spike{"active_session", "spike"};
  EXPECT_TRUE(spike.Matches(FeatureType::kSpikeUp));
  EXPECT_FALSE(spike.Matches(FeatureType::kSpikeDown));
  EXPECT_FALSE(spike.Matches(FeatureType::kLevelShiftUp));
  PhenomenonRule shift{"m", "level_shift"};
  EXPECT_TRUE(shift.Matches(FeatureType::kLevelShiftUp));
  PhenomenonRule down{"m", "spike_down"};
  EXPECT_TRUE(down.Matches(FeatureType::kSpikeDown));
  PhenomenonRule bogus{"m", "wiggle"};
  EXPECT_FALSE(bogus.Matches(FeatureType::kSpikeUp));
}

TEST(PhenomenonTest, DetectsConfiguredMetricOnly) {
  TimeSeries session = NoisySeries(0, 600, 8);
  for (size_t i = 300; i < 330; ++i) session[i] = 80.0;
  TimeSeries cpu = NoisySeries(0, 600, 9);
  for (size_t i = 300; i < 330; ++i) cpu[i] = 95.0;

  PhenomenonConfig config;
  config.rules.push_back({"active_session", "spike"});
  const std::map<std::string, const TimeSeries*> metrics = {
      {"active_session", &session}, {"cpu_usage", &cpu}};
  const auto phenomena = DetectPhenomena(metrics, config);
  ASSERT_EQ(phenomena.size(), 1u);
  EXPECT_EQ(phenomena[0].rule, "active_session.spike");
}

TEST(PhenomenonTest, MergesNearbyPhenomena) {
  TimeSeries session = NoisySeries(0, 900, 10);
  for (size_t i = 300; i < 320; ++i) session[i] = 80.0;
  for (size_t i = 360; i < 380; ++i) session[i] = 80.0;  // 40 s gap
  PhenomenonConfig config;
  config.rules.push_back({"active_session", "spike"});
  config.merge_gap_sec = 120;
  const std::map<std::string, const TimeSeries*> metrics = {
      {"active_session", &session}};
  const auto phenomena = DetectPhenomena(metrics, config);
  ASSERT_EQ(phenomena.size(), 1u);
  EXPECT_LE(phenomena[0].start_sec, 302);
  EXPECT_GE(phenomena[0].end_sec, 378);
}

TEST(PhenomenonTest, DropsTooShortPhenomena) {
  TimeSeries session = NoisySeries(0, 600, 11);
  for (size_t i = 300; i < 303; ++i) session[i] = 80.0;  // 3 s blip
  PhenomenonConfig config;
  config.rules.push_back({"active_session", "spike"});
  config.min_duration_sec = 10;
  const std::map<std::string, const TimeSeries*> metrics = {
      {"active_session", &session}};
  EXPECT_TRUE(DetectPhenomena(metrics, config).empty());
}

TEST(PhenomenonTest, ExtractAnomalyPeriodSpansAll) {
  std::vector<Phenomenon> phenomena = {
      {"a.spike", 100, 150, 8.0},
      {"b.spike", 120, 200, 9.0},
  };
  int64_t as = 0;
  int64_t ae = 0;
  ASSERT_TRUE(ExtractAnomalyPeriod(phenomena, &as, &ae));
  EXPECT_EQ(as, 100);
  EXPECT_EQ(ae, 200);
  EXPECT_FALSE(ExtractAnomalyPeriod({}, &as, &ae));
}

TEST(PhenomenonTest, DefaultConfigCoversThreeMetrics) {
  const PhenomenonConfig config = PhenomenonConfig::Default();
  EXPECT_EQ(config.rules.size(), 6u);
}

TEST(PhenomenonTest, FromJsonParsesRules) {
  auto config = PhenomenonConfig::FromJson(
      *Json::Parse(R"({"rules": ["active_session.spike",
                                 "cpu_usage.level_shift"],
                       "merge_gap_sec": 60, "threshold": 5})"));
  ASSERT_TRUE(config.ok());
  ASSERT_EQ(config->rules.size(), 2u);
  EXPECT_EQ(config->rules[0].metric, "active_session");
  EXPECT_EQ(config->rules[0].feature, "spike");
  EXPECT_EQ(config->merge_gap_sec, 60);
  EXPECT_DOUBLE_EQ(config->detector.threshold, 5.0);
}

TEST(PhenomenonTest, FromJsonRejectsMalformedRules) {
  EXPECT_FALSE(PhenomenonConfig::FromJson(*Json::Parse("[]")).ok());
  EXPECT_FALSE(
      PhenomenonConfig::FromJson(*Json::Parse(R"({"rules": "x"})")).ok());
  EXPECT_FALSE(
      PhenomenonConfig::FromJson(*Json::Parse(R"({"rules": ["nodot"]})"))
          .ok());
  EXPECT_FALSE(
      PhenomenonConfig::FromJson(*Json::Parse(R"({"rules": [42]})")).ok());
}

// Property: detection is invariant to the series' absolute offset time.
class DetectorShiftInvarianceTest
    : public ::testing::TestWithParam<int64_t> {};

TEST_P(DetectorShiftInvarianceTest, StartTimeIrrelevant) {
  const int64_t origin = GetParam();
  TimeSeries ts = NoisySeries(origin, 600, 12);
  for (size_t i = 300; i < 340; ++i) ts[i] = 90.0;
  const auto events = DetectFeatures(ts, DetectorOptions{});
  ASSERT_EQ(events.size(), 1u);
  EXPECT_NEAR(static_cast<double>(events[0].start_sec - origin), 300.0, 2.0);
}

INSTANTIATE_TEST_SUITE_P(Origins, DetectorShiftInvarianceTest,
                         ::testing::Values(0, 1000, 100000, 1650000000));

// ---------------------------------------------------------------- Pettitt

TEST(PettittTest, DetectsLevelShift) {
  std::vector<double> x(40, 10.0);
  for (size_t i = 20; i < x.size(); ++i) x[i] = 50.0;
  const PettittResult r = PettittTest(x);
  EXPECT_TRUE(r.significant());
  EXPECT_TRUE(r.shifted_up());
  EXPECT_NEAR(static_cast<double>(r.change_index), 19.0, 1.0);
  EXPECT_DOUBLE_EQ(r.mean_before, 10.0);
  EXPECT_DOUBLE_EQ(r.mean_after, 50.0);
}

TEST(PettittTest, DegenerateInputsReturnCleanDefault) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // Empty / tiny / all-gap series must return the "no change point"
  // default with finite fields, never NaN means or a spurious verdict.
  for (const std::vector<double>& x :
       {std::vector<double>{}, std::vector<double>{1.0},
        std::vector<double>{1.0, 2.0, 3.0},
        std::vector<double>(10, nan)}) {
    const PettittResult r = PettittTest(x);
    EXPECT_FALSE(r.significant());
    EXPECT_TRUE(std::isfinite(r.mean_before));
    EXPECT_TRUE(std::isfinite(r.mean_after));
    EXPECT_TRUE(std::isfinite(r.statistic));
    EXPECT_EQ(r.p_value, 1.0);
  }
}

TEST(PettittTest, GapsDoNotPoisonSegmentMeans) {
  // Regression: one NaN per segment used to turn both means (and the
  // shifted_up() verdict built on them) into NaN.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> x = {1.0, nan, 2.0, 1.5, nan, 100.0,
                           101.0, 99.0, nan, 100.5};
  const PettittResult r = PettittTest(x);
  EXPECT_TRUE(std::isfinite(r.mean_before));
  EXPECT_TRUE(std::isfinite(r.mean_after));
  EXPECT_TRUE(r.shifted_up());
  EXPECT_LT(r.mean_before, 3.0);
  EXPECT_GT(r.mean_after, 90.0);
}

}  // namespace
}  // namespace pinsql::anomaly
