#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "dbsim/engine.h"
#include "faults/action_faults.h"
#include "repair/actions.h"
#include "repair/events.h"
#include "repair/supervisor.h"

namespace pinsql::repair {
namespace {

dbsim::QueryArrival MakeArrival(int64_t t_ms, uint64_t sql_id,
                                double cpu_ms) {
  dbsim::QueryArrival a;
  a.arrival_ms = t_ms;
  a.spec.sql_id = sql_id;
  a.spec.cpu_ms = cpu_ms;
  a.spec.examined_rows = 1000;
  return a;
}

RepairAction Throttle(uint64_t sql_id, double max_qps = 1.0,
                      int64_t duration_sec = 600) {
  RepairAction action;
  action.type = ActionType::kThrottle;
  action.sql_id = sql_id;
  action.throttle_max_qps = max_qps;
  action.throttle_duration_sec = duration_sec;
  return action;
}

RepairAction Optimize(uint64_t sql_id, double factor = 0.1) {
  RepairAction action;
  action.type = ActionType::kOptimize;
  action.sql_id = sql_id;
  action.optimize_cpu_factor = factor;
  action.optimize_rows_factor = factor;
  return action;
}

RepairAction AutoScale(double add_cores) {
  RepairAction action;
  action.type = ActionType::kAutoScale;
  action.autoscale_add_cores = add_cores;
  return action;
}

/// Replays a fixed per-attempt script; clean decisions once it runs out.
class ScriptedHook : public ActionFaultHook {
 public:
  explicit ScriptedHook(std::vector<ActionFaultDecision> script)
      : script_(std::move(script)) {}

  ActionFaultDecision OnAttempt(const RepairAction&, uint64_t, int,
                                double) override {
    if (next_ >= script_.size()) return ActionFaultDecision{};
    return script_[next_++];
  }

  size_t calls() const { return next_; }

 private:
  std::vector<ActionFaultDecision> script_;
  size_t next_ = 0;
};

ActionFaultDecision Fail() {
  ActionFaultDecision d;
  d.fail = true;
  return d;
}

ActionFaultDecision Delayed(double delay_ms) {
  ActionFaultDecision d;
  d.delay_ms = delay_ms;
  return d;
}

ActionFaultDecision Partial(double fraction) {
  ActionFaultDecision d;
  d.partial_fraction = fraction;
  return d;
}

size_t CountKind(const std::vector<RepairEvent>& events,
                 RepairEventKind kind) {
  size_t n = 0;
  for (const RepairEvent& e : events) {
    if (e.kind == kind) ++n;
  }
  return n;
}

// ------------------------------------------------------------- Guardrails

TEST(SupervisorGuardrailTest, RejectsWithReasons) {
  dbsim::Engine engine(dbsim::SimConfig{});
  SupervisorOptions options;
  options.guardrails = GuardrailPolicy::Strict();
  RepairSupervisor supervisor(&engine, options);

  // Throttle cap below the policy floor.
  auto starved = supervisor.Apply(Throttle(7, 0.01), 0.0);
  ASSERT_FALSE(starved.ok());
  EXPECT_EQ(starved.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(starved.status().message().find("floor"), std::string::npos);

  // Throttle duration beyond the policy bound.
  auto endless = supervisor.Apply(Throttle(7, 1.0, 100'000), 0.0);
  ASSERT_FALSE(endless.ok());
  EXPECT_NE(endless.status().message().find("duration"), std::string::npos);

  // Optimize factor below the minimum.
  auto too_aggressive = supervisor.Apply(Optimize(7, 0.001), 0.0);
  ASSERT_FALSE(too_aggressive.ok());
  EXPECT_NE(too_aggressive.status().message().find("optimize"),
            std::string::npos);

  // Autoscale beyond the core budget (Strict: 16 cores total).
  auto too_big = supervisor.Apply(AutoScale(32.0), 0.0);
  ASSERT_FALSE(too_big.ok());
  EXPECT_NE(too_big.status().message().find("budget"), std::string::npos);

  // Every rejection produced a typed event and left the engine untouched.
  EXPECT_EQ(supervisor.stats().rejected, 4u);
  EXPECT_EQ(CountKind(supervisor.events(), RepairEventKind::kRejected), 4u);
  EXPECT_EQ(supervisor.stats().applied, 0u);
  EXPECT_FALSE(engine.IsThrottled(7));
}

TEST(SupervisorGuardrailTest, ConcurrentThrottleCapCountsReplacements) {
  dbsim::Engine engine(dbsim::SimConfig{});
  SupervisorOptions options;
  options.guardrails.max_concurrent_throttles = 2;
  RepairSupervisor supervisor(&engine, options);

  EXPECT_TRUE(supervisor.Apply(Throttle(1), 0.0).ok());
  EXPECT_TRUE(supervisor.Apply(Throttle(2), 0.0).ok());
  // Third distinct target: over the cap.
  auto third = supervisor.Apply(Throttle(3), 0.0);
  ASSERT_FALSE(third.ok());
  EXPECT_NE(third.status().message().find("already active"),
            std::string::npos);
  // Re-throttling an installed target replaces, not stacks: allowed. Use a
  // distinct idempotency key so the duplicate guard does not suppress it.
  EXPECT_TRUE(supervisor.Apply(Throttle(2, 0.5), 10'000.0, -1.0,
                               "re-throttle").ok());
}

TEST(SupervisorGuardrailTest, PerSqlCooldownBlocksRepeats) {
  dbsim::Engine engine(dbsim::SimConfig{});
  SupervisorOptions options;
  options.guardrails.per_sql_cooldown_sec = 300;
  RepairSupervisor supervisor(&engine, options);

  ASSERT_TRUE(supervisor.Apply(Optimize(7), 0.0).ok());
  // A different action on the same sql inside the cooldown is refused.
  auto too_soon = supervisor.Apply(Throttle(7), 100'000.0);
  ASSERT_FALSE(too_soon.ok());
  EXPECT_NE(too_soon.status().message().find("cooldown"), std::string::npos);
  // After the cooldown it goes through.
  EXPECT_TRUE(supervisor.Apply(Throttle(7), 400'000.0).ok());
}

// ------------------------------------------------------- Retry / backoff

TEST(SupervisorRetryTest, RetriesTransientFailuresThenSucceeds) {
  dbsim::Engine engine(dbsim::SimConfig{});
  ScriptedHook hook({Fail(), Fail()});
  RepairSupervisor supervisor(&engine, SupervisorOptions{}, &hook);

  auto outcome = supervisor.Apply(Throttle(7), 0.0);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->attempts, 3);
  EXPECT_TRUE(engine.IsThrottled(7));
  EXPECT_EQ(supervisor.stats().retries, 2u);
  EXPECT_EQ(supervisor.stats().applied, 1u);
  EXPECT_EQ(supervisor.stats().failed, 0u);
  const auto& events = supervisor.events();
  EXPECT_EQ(CountKind(events, RepairEventKind::kAttempt), 3u);
  EXPECT_EQ(CountKind(events, RepairEventKind::kAttemptFailed), 2u);
  EXPECT_EQ(CountKind(events, RepairEventKind::kRetryScheduled), 2u);
  EXPECT_EQ(CountKind(events, RepairEventKind::kApplied), 1u);
  EXPECT_TRUE(EventAccountingConsistent(events));
}

TEST(SupervisorRetryTest, DelayBeyondTimeoutCountsAsFailure) {
  dbsim::Engine engine(dbsim::SimConfig{});
  SupervisorOptions options;
  options.retry.attempt_timeout_ms = 1000.0;
  // First application would land 3 s late (attempt-fatal); the retry lands
  // 500 ms late (absorbable).
  ScriptedHook hook({Delayed(3000.0), Delayed(500.0)});
  RepairSupervisor supervisor(&engine, options, &hook);

  auto outcome = supervisor.Apply(Optimize(7), 10'000.0);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->attempts, 2);
  EXPECT_DOUBLE_EQ(outcome->applied_ms, 10'500.0);
  EXPECT_EQ(CountKind(supervisor.events(),
                      RepairEventKind::kAttemptFailed), 1u);
}

TEST(SupervisorRetryTest, PartialApplicationIsTrackedAndScaled) {
  dbsim::Engine engine(dbsim::SimConfig{});
  ScriptedHook hook({Partial(0.5)});
  RepairSupervisor supervisor(&engine, SupervisorOptions{}, &hook);

  auto outcome = supervisor.Apply(Optimize(7, 0.2), 0.0);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->partial);
  EXPECT_EQ(supervisor.stats().partial_applications, 1u);
  // Half-strength optimization: cost fraction lands halfway toward 1.
  EXPECT_DOUBLE_EQ(engine.GetCostMultiplier(7).cpu, 0.6);
}

TEST(SupervisorRetryTest, BackoffJitterIsDeterministicPerSeed) {
  const auto backoff_details = [](uint64_t seed) {
    dbsim::Engine engine(dbsim::SimConfig{});
    SupervisorOptions options;
    options.seed = seed;
    ScriptedHook hook({Fail(), Fail(), Fail(), Fail()});
    RepairSupervisor supervisor(&engine, options, &hook);
    supervisor.Apply(Throttle(7), 0.0);   // exhausts 3 attempts
    supervisor.Apply(Throttle(8), 0.0);   // next ticket, fresh jitter
    std::vector<std::string> details;
    for (const RepairEvent& e : supervisor.events()) {
      if (e.kind == RepairEventKind::kRetryScheduled) {
        details.push_back(e.detail);
      }
    }
    return details;
  };

  const auto a = backoff_details(1);
  const auto b = backoff_details(1);
  const auto c = backoff_details(99);
  ASSERT_EQ(a.size(), 3u);  // two retries for ticket 1, one for ticket 2
  EXPECT_EQ(a, b);          // same seed: bit-identical backoff schedule
  EXPECT_NE(a, c);          // different seed: different jitter
  // Exponential growth shows through the jitter (200 ms -> 400 ms base
  // with +-20 % jitter keeps the second backoff strictly above the first).
  EXPECT_NE(a[0], a[1]);
}

// ------------------------------------------------------- Circuit breaker

TEST(SupervisorBreakerTest, OpensHalfOpensAndCloses) {
  dbsim::Engine engine(dbsim::SimConfig{});
  SupervisorOptions options;
  options.retry.max_attempts = 2;
  options.breaker.open_after_failures = 2;
  options.breaker.open_cooldown_ms = 10'000.0;
  // 2 exhausted lifecycles (2 attempts each) open the breaker; the trial
  // after the cooldown succeeds and closes it.
  ScriptedHook hook({Fail(), Fail(), Fail(), Fail()});
  RepairSupervisor supervisor(&engine, options, &hook);

  EXPECT_FALSE(supervisor.Apply(Optimize(7), 0.0).ok());
  EXPECT_EQ(supervisor.breaker_state(ActionType::kOptimize),
            BreakerState::kClosed);
  EXPECT_FALSE(supervisor.Apply(Optimize(7), 1'000.0).ok());
  EXPECT_EQ(supervisor.breaker_state(ActionType::kOptimize),
            BreakerState::kOpen);
  EXPECT_EQ(supervisor.stats().breaker_opens, 1u);

  // While open: rejected without an attempt. Breakers are per action type,
  // so a throttle still goes through.
  auto rejected = supervisor.Apply(Optimize(7), 2'000.0);
  ASSERT_FALSE(rejected.ok());
  EXPECT_NE(rejected.status().message().find("breaker open"),
            std::string::npos);
  EXPECT_EQ(supervisor.stats().breaker_rejected, 1u);
  EXPECT_TRUE(supervisor.Apply(Throttle(9), 2'000.0).ok());

  // Cooldown elapses on Tick: half-open, one trial admitted.
  supervisor.Tick(12'000.0, 0.0);
  EXPECT_EQ(supervisor.breaker_state(ActionType::kOptimize),
            BreakerState::kHalfOpen);
  EXPECT_TRUE(supervisor.Apply(Optimize(7), 12'000.0).ok());
  EXPECT_EQ(supervisor.breaker_state(ActionType::kOptimize),
            BreakerState::kClosed);
  EXPECT_EQ(CountKind(supervisor.events(),
                      RepairEventKind::kBreakerClosed), 1u);
}

TEST(SupervisorBreakerTest, HalfOpenFailureReopens) {
  dbsim::Engine engine(dbsim::SimConfig{});
  SupervisorOptions options;
  options.retry.max_attempts = 1;
  options.breaker.open_after_failures = 1;
  options.breaker.open_cooldown_ms = 10'000.0;
  ScriptedHook hook({Fail(), Fail()});
  RepairSupervisor supervisor(&engine, options, &hook);

  EXPECT_FALSE(supervisor.Apply(Optimize(7), 0.0).ok());  // opens
  EXPECT_EQ(supervisor.breaker_state(ActionType::kOptimize),
            BreakerState::kOpen);
  // The half-open trial fails: straight back to open, regardless of the
  // consecutive-failure threshold.
  EXPECT_FALSE(supervisor.Apply(Optimize(7), 15'000.0).ok());
  EXPECT_EQ(supervisor.breaker_state(ActionType::kOptimize),
            BreakerState::kOpen);
  EXPECT_EQ(supervisor.stats().breaker_opens, 2u);
}

// ------------------------------------------- Verification and rollback

TEST(SupervisorVerifyTest, NoImprovementRollsBackOptimize) {
  dbsim::Engine engine(dbsim::SimConfig{});
  RepairSupervisor supervisor(&engine, SupervisorOptions{});

  ASSERT_TRUE(supervisor.Apply(Optimize(7, 0.1), 0.0, /*metric=*/100.0).ok());
  EXPECT_DOUBLE_EQ(engine.GetCostMultiplier(7).cpu, 0.1);
  EXPECT_EQ(supervisor.active_actions(), 1u);

  // Inside the window, metric flat: no decision yet.
  supervisor.Tick(60'000.0, 100.0);
  EXPECT_EQ(supervisor.stats().rollbacks, 0u);

  // Window elapses without the 5 % improvement: automatic rollback
  // restores the pre-action cost multipliers.
  supervisor.Tick(120'000.0, 100.0);
  EXPECT_EQ(supervisor.stats().rollbacks, 1u);
  EXPECT_EQ(supervisor.active_actions(), 0u);
  EXPECT_DOUBLE_EQ(engine.GetCostMultiplier(7).cpu, 1.0);
  EXPECT_DOUBLE_EQ(engine.GetCostMultiplier(7).io, 1.0);
  EXPECT_DOUBLE_EQ(engine.GetCostMultiplier(7).rows, 1.0);
  EXPECT_EQ(CountKind(supervisor.events(),
                      RepairEventKind::kRolledBack), 1u);
  EXPECT_TRUE(EventAccountingConsistent(supervisor.events()));
}

TEST(SupervisorVerifyTest, RegressionRollsBackThrottleEarly) {
  dbsim::Engine engine(dbsim::SimConfig{});
  RepairSupervisor supervisor(&engine, SupervisorOptions{});

  ASSERT_TRUE(supervisor.Apply(Throttle(7), 0.0, /*metric=*/10.0).ok());
  EXPECT_TRUE(engine.IsThrottled(7));

  // The metric regresses past 1.25x baseline well before the deadline:
  // roll back immediately instead of waiting out the window.
  supervisor.Tick(30'000.0, 50.0);
  EXPECT_EQ(supervisor.stats().rollbacks, 1u);
  EXPECT_FALSE(engine.IsThrottled(7));
  EXPECT_EQ(supervisor.active_actions(), 0u);
}

TEST(SupervisorVerifyTest, RollbackRestoresAutoscaleAndFreesBudget) {
  dbsim::SimConfig sim;
  sim.cpu_cores = 8.0;
  dbsim::Engine engine(sim);
  const double io_before = engine.io_capacity_ms_per_sec();
  SupervisorOptions options;
  options.guardrails.max_added_cores_total = 8.0;
  RepairSupervisor supervisor(&engine, options);

  ASSERT_TRUE(supervisor.Apply(AutoScale(8.0), 0.0, /*metric=*/100.0).ok());
  EXPECT_DOUBLE_EQ(engine.cpu_cores(), 16.0);
  // The budget is exhausted while the action is live.
  EXPECT_FALSE(supervisor.Preflight(AutoScale(8.0), 1'000.0).ok());

  supervisor.Tick(120'000.0, 100.0);  // no improvement: rollback
  EXPECT_DOUBLE_EQ(engine.cpu_cores(), 8.0);
  EXPECT_DOUBLE_EQ(engine.io_capacity_ms_per_sec(), io_before);
  // Rolling back returns the scaled cores to the budget.
  EXPECT_TRUE(supervisor.Preflight(AutoScale(8.0), 130'000.0).ok());
}

TEST(SupervisorVerifyTest, ImprovementVerifiesAndKeepsEffect) {
  dbsim::Engine engine(dbsim::SimConfig{});
  RepairSupervisor supervisor(&engine, SupervisorOptions{});

  ASSERT_TRUE(supervisor.Apply(Optimize(7, 0.1), 0.0, /*metric=*/100.0).ok());
  supervisor.Tick(120'000.0, 5.0);  // clear improvement
  EXPECT_EQ(supervisor.stats().verified, 1u);
  EXPECT_EQ(supervisor.stats().rollbacks, 0u);
  EXPECT_DOUBLE_EQ(engine.GetCostMultiplier(7).cpu, 0.1);  // effect kept
  EXPECT_TRUE(EventAccountingConsistent(supervisor.events()));
}

TEST(SupervisorVerifyTest, NegativeMetricSkipsVerification) {
  dbsim::Engine engine(dbsim::SimConfig{});
  RepairSupervisor supervisor(&engine, SupervisorOptions{});
  ASSERT_TRUE(supervisor.Apply(Optimize(7, 0.1), 0.0, -1.0).ok());
  supervisor.Tick(500'000.0, 1e9);  // would be a blatant regression
  EXPECT_EQ(supervisor.stats().rollbacks, 0u);
  EXPECT_DOUBLE_EQ(engine.GetCostMultiplier(7).cpu, 0.1);
}

// ------------------------------------------------------------ Idempotency

TEST(SupervisorIdempotencyTest, DuplicateKeySuppressedWhileActive) {
  dbsim::Engine engine(dbsim::SimConfig{});
  RepairSupervisor supervisor(&engine, SupervisorOptions{});

  auto first = supervisor.Apply(Throttle(7, 1.0, 100), 0.0);
  ASSERT_TRUE(first.ok());
  // A repeat diagnosis trigger fires the same action: suppressed, and the
  // outcome points back at the live ticket.
  auto repeat = supervisor.Apply(Throttle(7, 1.0, 100), 5'000.0);
  ASSERT_TRUE(repeat.ok());
  EXPECT_EQ(repeat->code, ApplyOutcome::Code::kDuplicate);
  EXPECT_EQ(repeat->ticket, first->ticket);
  EXPECT_EQ(supervisor.stats().applied, 1u);
  EXPECT_EQ(supervisor.stats().duplicates_suppressed, 1u);

  // Normal expiry frees the key: the action can be applied again.
  supervisor.Tick(100'000.0, 0.0);
  EXPECT_EQ(supervisor.active_actions(), 0u);
  auto again = supervisor.Apply(Throttle(7, 1.0, 100), 101'000.0);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->code, ApplyOutcome::Code::kApplied);
}

// ---------------------------------------------- Severity-0 equivalence

TEST(SupervisorEquivalenceTest, NullHookMatchesDirectExecutorExactly) {
  const auto run = [](bool supervised) {
    dbsim::Engine engine(dbsim::SimConfig{});
    for (int64_t t = 0; t < 60'000; t += 50) {
      engine.AddArrival(MakeArrival(t, 7, 20.0));
      engine.AddArrival(MakeArrival(t + 25, 8, 5.0));
    }
    RepairAction throttle = Throttle(7, 1.0, 30);
    RepairAction optimize = Optimize(7, 0.2);
    if (supervised) {
      RepairSupervisor supervisor(&engine, SupervisorOptions{});
      supervisor.Apply(throttle, 10'000.0, -1.0);
      engine.RunUntil(40'000.0);
      supervisor.Tick(40'000.0, 0.0);  // throttle expired at 40 s
      supervisor.Apply(optimize, 45'000.0, -1.0);
      engine.RunToCompletion();
    } else {
      ActionExecutor executor(&engine);
      executor.Execute(throttle, 10'000.0);
      engine.RunUntil(40'000.0);
      executor.ExpireThrottles(40'000.0);
      executor.Execute(optimize, 45'000.0);
      engine.RunToCompletion();
    }
    double total_response = 0.0;
    for (const auto& q : engine.completed()) {
      total_response += q.response_ms();
    }
    return std::make_tuple(engine.completed().size(),
                           engine.throttled_count(), total_response);
  };

  EXPECT_EQ(run(/*supervised=*/true), run(/*supervised=*/false));
}

// ------------------------------------------------------ Event accounting

TEST(EventAccountingTest, DetectsLostAndDoubleSettledTickets) {
  std::vector<RepairEvent> events;
  RepairEvent attempt;
  attempt.kind = RepairEventKind::kAttempt;
  attempt.ticket = 1;
  attempt.attempt = 1;
  events.push_back(attempt);
  // Attempted but never settled: inconsistent.
  EXPECT_FALSE(EventAccountingConsistent(events));

  RepairEvent applied = attempt;
  applied.kind = RepairEventKind::kApplied;
  events.push_back(applied);
  EXPECT_TRUE(EventAccountingConsistent(events));

  // A rollback for a ticket that was never applied: inconsistent.
  RepairEvent phantom;
  phantom.kind = RepairEventKind::kRolledBack;
  phantom.ticket = 42;
  EXPECT_FALSE(EventAccountingConsistent({phantom}));

  // Verified AND rolled back: inconsistent.
  RepairEvent verified = applied;
  verified.kind = RepairEventKind::kVerified;
  RepairEvent rolled = applied;
  rolled.kind = RepairEventKind::kRolledBack;
  EXPECT_FALSE(EventAccountingConsistent(
      {attempt, applied, verified, rolled}));
}

// ------------------------------------------------- Action fault injector

TEST(ActionFaultInjectorTest, SeverityZeroIsANoOp) {
  faults::ActionFaultPlan plan;
  plan.severity = 0.0;
  faults::ActionFaultInjector injector(plan);
  RepairAction action = Optimize(7);
  for (uint64_t ticket = 1; ticket <= 20; ++ticket) {
    for (int attempt = 1; attempt <= 3; ++attempt) {
      const auto d = injector.OnAttempt(action, ticket, attempt, 0.0);
      EXPECT_FALSE(d.fail);
      EXPECT_DOUBLE_EQ(d.delay_ms, 0.0);
      EXPECT_DOUBLE_EQ(d.partial_fraction, 1.0);
    }
  }
  EXPECT_EQ(injector.stats().attempts_failed, 0u);
  EXPECT_EQ(injector.stats().applications_delayed, 0u);
  EXPECT_EQ(injector.stats().applications_partial, 0u);
}

TEST(ActionFaultInjectorTest, DecisionsAreCallOrderIndependent) {
  faults::ActionFaultPlan plan;
  plan.seed = 11;
  plan.severity = 1.0;
  RepairAction action = Throttle(7);

  faults::ActionFaultInjector forward(plan);
  faults::ActionFaultInjector backward(plan);
  std::vector<std::tuple<bool, double, double>> a;
  std::vector<std::tuple<bool, double, double>> b;
  for (uint64_t ticket = 1; ticket <= 10; ++ticket) {
    const auto d = forward.OnAttempt(action, ticket, 1, 0.0);
    a.emplace_back(d.fail, d.delay_ms, d.partial_fraction);
  }
  for (uint64_t ticket = 10; ticket >= 1; --ticket) {
    const auto d = backward.OnAttempt(action, ticket, 1, 0.0);
    b.emplace_back(d.fail, d.delay_ms, d.partial_fraction);
  }
  std::reverse(b.begin(), b.end());
  EXPECT_EQ(a, b);

  // At full severity across 10 tickets something must have fired.
  EXPECT_GT(forward.stats().attempts_failed +
                forward.stats().applications_delayed +
                forward.stats().applications_partial,
            0u);
}

TEST(ActionFaultInjectorTest, SupervisorUnderChaosKeepsAccounting) {
  faults::ActionFaultPlan plan;
  plan.seed = 3;
  plan.severity = 1.0;
  faults::ActionFaultInjector injector(plan);
  dbsim::Engine engine(dbsim::SimConfig{});
  SupervisorOptions options;
  options.seed = 5;
  RepairSupervisor supervisor(&engine, options, &injector);

  double now_ms = 0.0;
  for (uint64_t sql = 1; sql <= 12; ++sql) {
    supervisor.Apply(Optimize(sql), now_ms, 100.0);
    now_ms += 10'000.0;
    supervisor.Tick(now_ms, 100.0);
  }
  supervisor.Tick(now_ms + 300'000.0, 100.0);

  const auto& stats = supervisor.stats();
  EXPECT_EQ(stats.applied + stats.failed + stats.breaker_rejected +
                stats.rejected + stats.duplicates_suppressed,
            12u);
  EXPECT_TRUE(EventAccountingConsistent(supervisor.events()));
}

}  // namespace
}  // namespace pinsql::repair
