#include <gtest/gtest.h>

#include "anomaly/pettitt.h"
#include "core/report.h"
#include "eval/case_generator.h"
#include "eval/runner.h"
#include "repair/rule_engine.h"
#include "util/rng.h"

namespace pinsql {
namespace {

// ---------------------------------------------------------------- Pettitt

TEST(PettittTest, DetectsObviousLevelShift) {
  std::vector<double> x;
  Rng rng(1);
  for (int i = 0; i < 100; ++i) x.push_back(rng.Normal(10, 1));
  for (int i = 0; i < 100; ++i) x.push_back(rng.Normal(30, 1));
  const anomaly::PettittResult result = anomaly::PettittTest(x);
  EXPECT_TRUE(result.significant());
  EXPECT_TRUE(result.shifted_up());
  EXPECT_NEAR(static_cast<double>(result.change_index), 99.0, 3.0);
  EXPECT_NEAR(result.mean_before, 10.0, 0.6);
  EXPECT_NEAR(result.mean_after, 30.0, 0.6);
}

TEST(PettittTest, DetectsDownShift) {
  std::vector<double> x;
  Rng rng(2);
  for (int i = 0; i < 80; ++i) x.push_back(rng.Normal(50, 2));
  for (int i = 0; i < 80; ++i) x.push_back(rng.Normal(20, 2));
  const anomaly::PettittResult result = anomaly::PettittTest(x);
  EXPECT_TRUE(result.significant());
  EXPECT_FALSE(result.shifted_up());
}

TEST(PettittTest, StationarySeriesNotSignificant) {
  std::vector<double> x;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) x.push_back(rng.Normal(10, 2));
  EXPECT_FALSE(anomaly::PettittTest(x).significant());
}

TEST(PettittTest, DegenerateInputs) {
  EXPECT_FALSE(anomaly::PettittTest(std::vector<double>{}).significant());
  EXPECT_FALSE(anomaly::PettittTest(std::vector<double>{1.0}).significant());
  EXPECT_FALSE(
      anomaly::PettittTest(std::vector<double>(50, 3.0)).significant());
}

TEST(PettittTest, TimeSeriesOverload) {
  TimeSeries ts(100, 1, 60);
  for (size_t i = 0; i < 60; ++i) ts[i] = i < 30 ? 1.0 : 100.0;
  const anomaly::PettittResult result = anomaly::PettittTest(ts);
  EXPECT_TRUE(result.significant());
  EXPECT_EQ(result.change_index, 29u);
}

class PettittPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PettittPropertyTest, ShiftMagnitudeDrivesSignificance) {
  Rng rng(GetParam());
  std::vector<double> base;
  for (int i = 0; i < 120; ++i) base.push_back(rng.Normal(10, 1));
  // Small shift (0.1 sigma): not significant; large shift (10 sigma): is.
  std::vector<double> small = base;
  std::vector<double> large = base;
  for (int i = 60; i < 120; ++i) {
    small[static_cast<size_t>(i)] += 0.1;
    large[static_cast<size_t>(i)] += 10.0;
  }
  EXPECT_FALSE(anomaly::PettittTest(small).significant(0.01));
  EXPECT_TRUE(anomaly::PettittTest(large).significant(0.01));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PettittPropertyTest,
                         ::testing::Values(7, 8, 9, 10));

// ----------------------------------------------------------------- Report

TEST(ReportTest, BuildsFromRealDiagnosis) {
  eval::CaseGenOptions options;
  options.type = workload::AnomalyType::kPoorSql;
  options.seed = 77;
  const eval::AnomalyCaseData data = eval::GenerateCase(options);
  const core::DiagnosisInput input = eval::MakeDiagnosisInput(data);
  const StatusOr<core::DiagnosisResult> status_or =
      core::Diagnose(input, core::DiagnoserOptions{});
  ASSERT_TRUE(status_or.ok()) << status_or.status().ToString();
  const core::DiagnosisResult& result = *status_or;
  const auto suggestions = repair::RepairRuleEngine::Default().Suggest(
      data.phenomena, result.rsql.ranking, result.metrics,
      input.anomaly_start_sec, input.anomaly_end_sec);

  const core::DiagnosisReport report = core::BuildReport(
      result, data.logs, data.phenomena, input.anomaly_start_sec,
      input.anomaly_end_sec, suggestions, /*top_k=*/3);

  EXPECT_EQ(report.anomaly_start_sec, input.anomaly_start_sec);
  EXPECT_LE(report.rsqls.size(), 3u);
  ASSERT_FALSE(report.rsqls.empty());
  EXPECT_EQ(report.rsqls[0].sql_id_hex.size(), 16u);
  EXPECT_NE(report.rsqls[0].template_text, "<unknown>");
  EXPECT_FALSE(report.phenomena.empty());

  const std::string text = report.ToText();
  EXPECT_NE(text.find("root-cause SQLs:"), std::string::npos);
  EXPECT_NE(text.find(report.rsqls[0].sql_id_hex), std::string::npos);
}

TEST(ReportTest, JsonRoundTripsThroughParser) {
  core::DiagnosisReport report;
  report.anomaly_start_sec = 100;
  report.anomaly_end_sec = 200;
  report.diagnosis_seconds = 1.5;
  report.phenomena = {"active_session.spike [100, 200) severity 9.0"};
  core::DiagnosisReport::RankedTemplate t;
  t.sql_id = 0xAB;
  t.sql_id_hex = "00000000000000AB";
  t.template_text = "SELECT * FROM t WHERE id = ?";
  t.score = 0.9;
  report.hsqls.push_back(t);
  report.rsqls.push_back(t);
  report.suggestions = {"[cpu_usage.spike] optimize sql=..AB"};

  const Json json = report.ToJson();
  const auto parsed = Json::Parse(json.Dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed->GetNumberOr("anomaly_start", 0), 100.0);
  const Json* rsqls = parsed->Find("rsqls");
  ASSERT_NE(rsqls, nullptr);
  ASSERT_EQ(rsqls->AsArray().size(), 1u);
  EXPECT_EQ(rsqls->AsArray()[0].GetStringOr("sql_id", ""),
            "00000000000000AB");
}

TEST(ReportTest, RepairEventsSerializeIntoJsonAndText) {
  core::DiagnosisReport report;
  repair::RepairEvent applied;
  applied.time_ms = 900'000.0;
  applied.kind = repair::RepairEventKind::kApplied;
  applied.action = repair::ActionType::kThrottle;
  applied.sql_id = 0xAB;
  applied.ticket = 1;
  applied.attempt = 2;
  applied.detail = "partial application 0.60";
  repair::RepairEvent rolled = applied;
  rolled.time_ms = 1'020'000.0;
  rolled.kind = repair::RepairEventKind::kRolledBack;
  rolled.attempt = 0;
  rolled.detail = "no improvement: metric 90.0 vs baseline 95.0";
  report.repair_events = {applied, rolled};

  const auto parsed = Json::Parse(report.ToJson().Dump());
  ASSERT_TRUE(parsed.ok());
  const Json* events = parsed->Find("repair_events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->AsArray().size(), 2u);
  EXPECT_EQ(events->AsArray()[0].GetStringOr("kind", ""), "applied");
  EXPECT_EQ(events->AsArray()[0].GetStringOr("sql_id", ""),
            "00000000000000AB");
  EXPECT_DOUBLE_EQ(events->AsArray()[0].GetNumberOr("attempt", 0), 2.0);
  EXPECT_EQ(events->AsArray()[1].GetStringOr("kind", ""), "rolled_back");

  const std::string text = report.ToText();
  EXPECT_NE(text.find("repair audit trail:"), std::string::npos);
  EXPECT_NE(text.find("rolled_back"), std::string::npos);

  // No events: the section stays out of the rendering entirely.
  core::DiagnosisReport quiet;
  EXPECT_EQ(quiet.ToText().find("repair audit trail"), std::string::npos);
}

TEST(ReportTest, FromJsonRoundTripsAdversarialStrings) {
  // Template texts, notes and event details can carry every character the
  // JSON escaper must handle: quotes, backslashes, newlines, tabs and raw
  // control bytes. The report must survive ToJson -> Dump -> Parse ->
  // FromJson byte-exactly.
  const std::string adversarial =
      "SELECT \"x\\\"y\" FROM `t` WHERE c = 'it''s \\' ok'\n\t-- \x01\x1f /";

  core::DiagnosisReport report;
  report.anomaly_start_sec = 100;
  report.anomaly_end_sec = 200;
  report.diagnosis_seconds = 1.5;
  report.verification_fallback = true;
  report.phenomena = {"active_session.spike [100, 200) severity 9.0",
                      adversarial};
  core::DiagnosisReport::RankedTemplate t;
  t.sql_id = 0xAB;
  t.sql_id_hex = "00000000000000AB";
  t.template_text = adversarial;
  t.score = 0.9;
  report.hsqls.push_back(t);
  report.rsqls.push_back(t);
  report.suggestions = {"[rule\"with\\quotes]\nthrottle"};
  report.data_quality.confidence = 0.75;
  report.data_quality.session_points = 600;
  report.data_quality.session_gap_points = 3;
  report.data_quality.lookback_truncated = true;
  report.data_quality.notes = {adversarial, "plain note"};
  repair::RepairEvent event;
  event.time_ms = 900'000.0;
  event.kind = repair::RepairEventKind::kRolledBack;
  event.action = repair::ActionType::kThrottle;
  event.sql_id = 0xAB;
  event.ticket = 7;
  event.attempt = 2;
  event.detail = adversarial;
  report.repair_events = {event};
  report.trace.total_seconds = 1.5;
  report.trace.stages.push_back(
      obs::StageTrace{"session_estimation", 1.0, {{"session_points", 600}}});

  const StatusOr<Json> parsed = Json::Parse(report.ToJson().Dump());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const StatusOr<core::DiagnosisReport> back =
      core::DiagnosisReport::FromJson(*parsed);
  ASSERT_TRUE(back.ok()) << back.status().ToString();

  EXPECT_EQ(back->anomaly_start_sec, 100);
  EXPECT_EQ(back->anomaly_end_sec, 200);
  EXPECT_DOUBLE_EQ(back->diagnosis_seconds, 1.5);
  EXPECT_TRUE(back->verification_fallback);
  EXPECT_EQ(back->phenomena, report.phenomena);
  ASSERT_EQ(back->hsqls.size(), 1u);
  EXPECT_EQ(back->hsqls[0].sql_id, 0xABu);
  EXPECT_EQ(back->hsqls[0].template_text, adversarial);
  EXPECT_DOUBLE_EQ(back->hsqls[0].score, 0.9);
  ASSERT_EQ(back->rsqls.size(), 1u);
  EXPECT_EQ(back->rsqls[0].template_text, adversarial);
  EXPECT_EQ(back->suggestions, report.suggestions);
  EXPECT_DOUBLE_EQ(back->data_quality.confidence, 0.75);
  EXPECT_EQ(back->data_quality.session_points, 600u);
  EXPECT_EQ(back->data_quality.session_gap_points, 3u);
  EXPECT_TRUE(back->data_quality.lookback_truncated);
  EXPECT_EQ(back->data_quality.notes, report.data_quality.notes);
  ASSERT_EQ(back->repair_events.size(), 1u);
  EXPECT_EQ(back->repair_events[0].kind,
            repair::RepairEventKind::kRolledBack);
  EXPECT_EQ(back->repair_events[0].sql_id, 0xABu);
  EXPECT_EQ(back->repair_events[0].ticket, 7u);
  EXPECT_EQ(back->repair_events[0].detail, adversarial);
  EXPECT_EQ(back->trace, report.trace);
}

TEST(ReportTest, FromJsonRejectsMalformedInput) {
  EXPECT_FALSE(core::DiagnosisReport::FromJson(Json("not an object")).ok());

  Json bad_rsqls = Json::MakeObject();
  bad_rsqls.Set("rsqls", Json("not an array"));
  EXPECT_FALSE(core::DiagnosisReport::FromJson(bad_rsqls).ok());

  Json bad_id = Json::MakeObject();
  Json entry = Json::MakeObject();
  entry.Set("sql_id", "XYZ_not_hex");
  Json arr = Json::MakeArray();
  arr.Append(std::move(entry));
  bad_id.Set("hsqls", std::move(arr));
  EXPECT_FALSE(core::DiagnosisReport::FromJson(bad_id).ok());

  Json bad_event = Json::MakeObject();
  Json event = Json::MakeObject();
  event.Set("kind", "not_a_kind");
  Json events = Json::MakeArray();
  events.Append(std::move(event));
  bad_event.Set("repair_events", std::move(events));
  EXPECT_FALSE(core::DiagnosisReport::FromJson(bad_event).ok());
}

TEST(ReportTest, TraceBlockAppearsInRealDiagnosisJson) {
  eval::CaseGenOptions options;
  options.type = workload::AnomalyType::kPoorSql;
  options.seed = 77;
  const eval::AnomalyCaseData data = eval::GenerateCase(options);
  const core::DiagnosisInput input = eval::MakeDiagnosisInput(data);
  const StatusOr<core::DiagnosisResult> status_or =
      core::Diagnose(input, core::DiagnoserOptions{});
  ASSERT_TRUE(status_or.ok()) << status_or.status().ToString();
  const core::DiagnosisReport report =
      core::BuildReport(*status_or, data.logs, data.phenomena,
                        input.anomaly_start_sec, input.anomaly_end_sec, {});

  // The per-stage trace is always populated — even under
  // PINSQL_DISABLE_OBS — so the report's trace block never disappears.
  const StatusOr<Json> parsed = Json::Parse(report.ToJson().Dump());
  ASSERT_TRUE(parsed.ok());
  const Json* trace = parsed->Find("trace");
  ASSERT_NE(trace, nullptr);
  const StatusOr<obs::PipelineTrace> pipeline =
      obs::PipelineTrace::FromJson(*trace);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  ASSERT_EQ(pipeline->stages.size(), 5u);
  EXPECT_EQ(pipeline->stages[0].name, "session_estimation");
  EXPECT_EQ(pipeline->stages[1].name, "window_aggregation");
  EXPECT_EQ(pipeline->stages[2].name, "hsql_scoring");
  EXPECT_EQ(pipeline->stages[3].name, "rsql_clustering");
  EXPECT_EQ(pipeline->stages[4].name, "rsql_verification");
  const obs::StageTrace* session = pipeline->Find("session_estimation");
  ASSERT_NE(session, nullptr);
  EXPECT_GT(session->counters.at("session_points"), 0);
  EXPECT_GT(pipeline->total_seconds, 0.0);

  // ToText renders the same stage table.
  EXPECT_NE(report.ToText().find("stage timings:"), std::string::npos);
  EXPECT_NE(report.ToText().find("session_estimation"), std::string::npos);
}

TEST(ReportTest, UnknownTemplatesRenderPlaceholders) {
  core::DiagnosisResult result;
  result.rsql.ranking = {123456789};
  LogStore empty_catalog;
  const core::DiagnosisReport report =
      core::BuildReport(result, empty_catalog, {}, 0, 10, {});
  ASSERT_EQ(report.rsqls.size(), 1u);
  EXPECT_EQ(report.rsqls[0].template_text, "<unknown>");
}

}  // namespace
}  // namespace pinsql
