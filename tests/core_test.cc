#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/diagnoser.h"
#include "core/hsql.h"
#include "core/rsql.h"
#include "core/session_estimator.h"
#include "logstore/log_store.h"
#include "obs/metrics.h"
#include "ts/stats.h"
#include "util/rng.h"

namespace pinsql::core {
namespace {

QueryLogRecord Rec(int64_t arrival_ms, double response_ms, uint64_t sql_id) {
  QueryLogRecord r;
  r.arrival_ms = arrival_ms;
  r.response_ms = response_ms;
  r.sql_id = sql_id;
  return r;
}

// ------------------------------------------------------ Session estimator

TEST(SessionEstimatorTest, SingleQueryProbability) {
  // One query active for 500 ms inside one second: whole-second
  // expectation is 0.5 (paper's P(observed) formula).
  std::vector<QueryLogRecord> logs = {Rec(100'250, 500.0, 1)};
  TimeSeries observed(100, 1, std::vector<double>{0.5});
  SessionEstimatorOptions options;
  options.mode = SessionEstimatorMode::kNoBuckets;
  const SessionEstimate est = EstimateSessions(logs, observed, 100, 101,
                                               options);
  EXPECT_NEAR(est.total[0], 0.5, 1e-9);
  EXPECT_NEAR(est.per_template.at(1)[0], 0.5, 1e-9);
}

TEST(SessionEstimatorTest, QuerySpanningSecondsContributesToEach) {
  std::vector<QueryLogRecord> logs = {Rec(100'500, 2000.0, 1)};
  TimeSeries observed(100, 1, std::vector<double>{1, 1, 1});
  SessionEstimatorOptions options;
  options.mode = SessionEstimatorMode::kNoBuckets;
  const SessionEstimate est = EstimateSessions(logs, observed, 100, 103,
                                               options);
  EXPECT_NEAR(est.total[0], 0.5, 1e-9);
  EXPECT_NEAR(est.total[1], 1.0, 1e-9);
  EXPECT_NEAR(est.total[2], 0.5, 1e-9);
}

TEST(SessionEstimatorTest, BucketedSelectsOffsetMatchingObservation) {
  // A query active only in the first half of the second; the monitor
  // "observed" 1 -> the estimator must pick an early bucket, giving the
  // template a session of ~1 rather than the 0.5 whole-second average.
  std::vector<QueryLogRecord> logs = {Rec(100'000, 500.0, 1)};
  TimeSeries observed(100, 1, std::vector<double>{1.0});
  SessionEstimatorOptions options;
  options.mode = SessionEstimatorMode::kBucketed;
  options.num_buckets = 10;
  const SessionEstimate est = EstimateSessions(logs, observed, 100, 101,
                                               options);
  EXPECT_NEAR(est.per_template.at(1)[0], 1.0, 1e-9);

  // Monitor observed 0 -> a late bucket is chosen instead.
  TimeSeries observed_zero(100, 1, std::vector<double>{0.0});
  const SessionEstimate est0 = EstimateSessions(logs, observed_zero, 100,
                                                101, options);
  EXPECT_NEAR(est0.per_template.at(1)[0], 0.0, 1e-9);
}

TEST(SessionEstimatorTest, ResponseTimeProxyDividesBy1000) {
  std::vector<QueryLogRecord> logs = {Rec(100'100, 250.0, 1),
                                      Rec(100'500, 750.0, 1)};
  TimeSeries observed(100, 1, std::vector<double>{0.0});
  SessionEstimatorOptions options;
  options.mode = SessionEstimatorMode::kResponseTime;
  const SessionEstimate est = EstimateSessions(logs, observed, 100, 101,
                                               options);
  EXPECT_NEAR(est.per_template.at(1)[0], 1.0, 1e-9);
  EXPECT_NEAR(est.total[0], 1.0, 1e-9);
}

TEST(SessionEstimatorTest, PerTemplateSumsToTotal) {
  Rng rng(3);
  std::vector<QueryLogRecord> logs;
  for (int i = 0; i < 2000; ++i) {
    logs.push_back(Rec(100'000 + rng.UniformInt(0, 29'999),
                       rng.Uniform(1.0, 400.0),
                       static_cast<uint64_t>(rng.UniformInt(1, 20))));
  }
  TimeSeries observed(100, 1, 30);
  for (size_t i = 0; i < observed.size(); ++i) {
    observed[i] = rng.Uniform(0.0, 10.0);
  }
  SessionEstimatorOptions options;
  const SessionEstimate est = EstimateSessions(logs, observed, 100, 130,
                                               options);
  TimeSeries sum(100, 1, 30);
  for (const auto& [id, series] : est.per_template) {
    sum.AddInPlace(series);
  }
  for (size_t i = 0; i < sum.size(); ++i) {
    EXPECT_NEAR(sum[i], est.total[i], 1e-6);
  }
}

TEST(SessionEstimatorTest, BucketedBeatsNoBucketsOnSyntheticTruth) {
  // Monte-Carlo version of Table III's ordering: simulate queries with a
  // hidden per-second sampling instant; the bucketed estimator must track
  // the sampled truth more closely than the whole-second expectation.
  Rng rng(11);
  const int64_t n_sec = 120;
  std::vector<QueryLogRecord> logs;
  for (int64_t sec = 0; sec < n_sec; ++sec) {
    const int queries = static_cast<int>(rng.UniformInt(20, 60));
    for (int q = 0; q < queries; ++q) {
      logs.push_back(Rec(sec * 1000 + rng.UniformInt(0, 999),
                         rng.Uniform(5.0, 900.0),
                         static_cast<uint64_t>(rng.UniformInt(1, 10))));
    }
  }
  // Hidden sampling instants + point-in-time truth.
  TimeSeries observed(0, 1, static_cast<size_t>(n_sec));
  for (int64_t sec = 0; sec < n_sec; ++sec) {
    const double t3 = static_cast<double>(sec) * 1000.0 +
                      rng.Uniform(0.0, 1000.0);
    int active = 0;
    for (const auto& r : logs) {
      const double lo = static_cast<double>(r.arrival_ms);
      if (lo <= t3 && t3 < lo + r.response_ms) ++active;
    }
    observed[static_cast<size_t>(sec)] = active;
  }
  SessionEstimatorOptions bucketed;
  bucketed.mode = SessionEstimatorMode::kBucketed;
  SessionEstimatorOptions plain;
  plain.mode = SessionEstimatorMode::kNoBuckets;
  const SessionEstimate eb = EstimateSessions(logs, observed, 0, n_sec,
                                              bucketed);
  const SessionEstimate ep = EstimateSessions(logs, observed, 0, n_sec,
                                              plain);
  const double mse_b = MeanSquaredError(eb.total.values(),
                                        observed.values());
  const double mse_p = MeanSquaredError(ep.total.values(),
                                        observed.values());
  EXPECT_LT(mse_b, mse_p);
}

TEST(SessionEstimatorTest, EmptyLogsYieldZeroes) {
  TimeSeries observed(0, 1, std::vector<double>{5.0, 5.0});
  const SessionEstimate est = EstimateSessions(
      std::vector<QueryLogRecord>{}, observed, 0, 2,
      SessionEstimatorOptions{});
  EXPECT_DOUBLE_EQ(est.total.Sum(), 0.0);
  EXPECT_TRUE(est.per_template.empty());
}

// ---------------------------------------------------------------- H-SQL

/// Builds a synthetic anomaly scene: the instance session is flat except
/// for a plateau during [as, ae); `shape` controls each template's series.
struct Scene {
  TimeSeries session;
  std::unordered_map<uint64_t, TimeSeries> templates;
  int64_t as = 60;
  int64_t ae = 120;
};

Scene MakeScene() {
  Scene scene;
  const size_t n = 180;
  scene.session = TimeSeries(0, 1, n);
  Rng rng(5);
  for (size_t i = 0; i < n; ++i) {
    const bool anomalous = i >= 60 && i < 120;
    scene.session[i] = (anomalous ? 40.0 : 8.0) + rng.Normal(0.0, 0.4);
  }
  // Template 1: tracks the anomaly with large scale (the H-SQL).
  TimeSeries hsql(0, 1, n);
  // Template 2: correlates but tiny scale.
  TimeSeries tiny(0, 1, n);
  // Template 3: large stable traffic, no anomaly correlation.
  TimeSeries stable(0, 1, n);
  for (size_t i = 0; i < n; ++i) {
    const bool anomalous = i >= 60 && i < 120;
    hsql[i] = (anomalous ? 30.0 : 2.0) + rng.Normal(0.0, 0.3);
    tiny[i] = (anomalous ? 0.4 : 0.05) + rng.Normal(0.0, 0.01);
    stable[i] = 5.0 + rng.Normal(0.0, 0.3);
  }
  scene.templates[1] = std::move(hsql);
  scene.templates[2] = std::move(tiny);
  scene.templates[3] = std::move(stable);
  return scene;
}

TEST(HsqlTest, RanksTrueHighImpactFirst) {
  const Scene scene = MakeScene();
  const auto scores = RankHighImpactSqls(scene.templates, scene.session,
                                         scene.as, scene.ae, HsqlOptions{});
  ASSERT_EQ(scores.size(), 3u);
  EXPECT_EQ(scores[0].sql_id, 1u);
}

TEST(HsqlTest, ScoresAreBounded) {
  const Scene scene = MakeScene();
  const auto scores = RankHighImpactSqls(scene.templates, scene.session,
                                         scene.as, scene.ae, HsqlOptions{});
  for (const auto& s : scores) {
    EXPECT_GE(s.trend, -1.0);
    EXPECT_LE(s.trend, 1.0);
    EXPECT_GE(s.scale, -1.0);
    EXPECT_LE(s.scale, 1.0);
    EXPECT_GE(s.scale_trend, -1.0);
    EXPECT_LE(s.scale_trend, 1.0);
    EXPECT_GE(s.impact, -3.0);
    EXPECT_LE(s.impact, 3.0);
  }
}

TEST(HsqlTest, TrendScoreSeparatesCorrelatedFromStable) {
  const Scene scene = MakeScene();
  const auto scores = RankHighImpactSqls(scene.templates, scene.session,
                                         scene.as, scene.ae, HsqlOptions{});
  double trend_hsql = 0.0;
  double trend_stable = 0.0;
  for (const auto& s : scores) {
    if (s.sql_id == 1) trend_hsql = s.trend;
    if (s.sql_id == 3) trend_stable = s.trend;
  }
  EXPECT_GT(trend_hsql, 0.9);
  EXPECT_LT(std::fabs(trend_stable), 0.5);
}

TEST(HsqlTest, ScaleLevelIsMinMaxNormalized) {
  const Scene scene = MakeScene();
  const auto scores = RankHighImpactSqls(scene.templates, scene.session,
                                         scene.as, scene.ae, HsqlOptions{});
  double max_scale = -2.0;
  double min_scale = 2.0;
  for (const auto& s : scores) {
    max_scale = std::max(max_scale, s.scale);
    min_scale = std::min(min_scale, s.scale);
  }
  EXPECT_DOUBLE_EQ(max_scale, 1.0);   // largest template
  EXPECT_DOUBLE_EQ(min_scale, -1.0);  // smallest template
}

TEST(HsqlTest, AblationTogglesChangeScores) {
  const Scene scene = MakeScene();
  HsqlOptions full;
  HsqlOptions no_trend;
  no_trend.use_trend = false;
  HsqlOptions no_weight;
  no_weight.use_weighted_final = false;
  const auto s_full = RankHighImpactSqls(scene.templates, scene.session,
                                         scene.as, scene.ae, full);
  const auto s_no_trend = RankHighImpactSqls(scene.templates, scene.session,
                                             scene.as, scene.ae, no_trend);
  const auto s_no_weight = RankHighImpactSqls(
      scene.templates, scene.session, scene.as, scene.ae, no_weight);
  EXPECT_NE(s_full[0].impact, s_no_trend[0].impact);
  EXPECT_NE(s_full[0].impact, s_no_weight[0].impact);
}

TEST(HsqlTest, EmptyInputs) {
  const TimeSeries session(0, 1, 10);
  const auto scores = RankHighImpactSqls({}, session, 2, 8, HsqlOptions{});
  EXPECT_TRUE(scores.empty());
}

// ---------------------------------------------------------------- R-SQL

TEST(MapHistoryProviderTest, PutAndLookup) {
  MapHistoryProvider provider;
  provider.Put(1, 3, TimeSeries(0, 1, 5));
  EXPECT_NE(provider.ExecutionHistory(1, 3), nullptr);
  EXPECT_EQ(provider.ExecutionHistory(1, 1), nullptr);
  EXPECT_EQ(provider.ExecutionHistory(2, 3), nullptr);
}

/// R-SQL scene: template 10 is the root cause (bursty #execution during
/// the anomaly, no history anomaly), templates 20/21 are affected H-SQLs
/// (stable #execution, inflated sessions), template 30 is background.
struct RsqlScene {
  TemplateMetricsStore metrics{0, 180};
  std::unordered_map<uint64_t, TimeSeries> sessions;
  TimeSeries session{0, 1, 180};
  MapHistoryProvider history;
  std::vector<HsqlScore> hsql;
  int64_t as = 60;
  int64_t ae = 120;
};

RsqlScene MakeRsqlScene() {
  RsqlScene scene;
  Rng rng(9);
  auto add_template = [&](uint64_t id, double base_qps, double anomaly_qps,
                          double session_base, double session_anomaly) {
    TimeSeries session_series(0, 1, 180);
    for (int64_t t = 0; t < 180; ++t) {
      const bool anomalous = t >= scene.as && t < scene.ae;
      const double qps = anomalous ? anomaly_qps : base_qps;
      const int64_t count = rng.Poisson(qps);
      for (int64_t k = 0; k < count; ++k) {
        QueryLogRecord rec;
        rec.arrival_ms = t * 1000 + rng.UniformInt(0, 999);
        rec.sql_id = id;
        rec.response_ms = 10.0;
        rec.examined_rows = 100;
        scene.metrics.Accumulate(rec);
      }
      session_series.AtTime(t) =
          (anomalous ? session_anomaly : session_base) +
          rng.Normal(0.0, 0.05);
    }
    scene.sessions[id] = session_series;
    // History windows: baseline traffic, no anomaly.
    for (int days : {1, 3, 7}) {
      TimeSeries h(0, 1, 180);
      for (int64_t t = 0; t < 180; ++t) {
        h.AtTime(t) = static_cast<double>(rng.Poisson(base_qps));
      }
      scene.history.Put(id, days, std::move(h));
    }
  };
  add_template(10, 2.0, 25.0, 0.1, 1.5);    // root cause: bursty
  add_template(20, 20.0, 20.0, 2.0, 25.0);  // affected H-SQL
  add_template(21, 15.0, 15.0, 1.5, 18.0);  // affected H-SQL
  add_template(30, 10.0, 10.0, 1.0, 1.0);   // unaffected background

  for (int64_t t = 0; t < 180; ++t) {
    double total = 0.0;
    for (const auto& [id, series] : scene.sessions) {
      total += series.AtTime(t);
    }
    scene.session.AtTime(t) = total;
  }
  // H-SQL impact ranking: the affected templates on top.
  scene.hsql = {{20, 2.0, 0, 0, 0},
                {21, 1.8, 0, 0, 0},
                {10, 0.7, 0, 0, 0},
                {30, -0.5, 0, 0, 0}};
  return scene;
}

RsqlOptions SceneOptions() {
  RsqlOptions options;
  options.cluster_interval_sec = 10;
  options.verify_interval_sec = 10;
  return options;
}

TEST(RsqlTest, PinpointsBurstyRootCause) {
  RsqlScene scene = MakeRsqlScene();
  const RsqlResult result = IdentifyRootCauseSqls(
      scene.metrics, scene.sessions, scene.session, {}, scene.hsql,
      &scene.history, scene.as, scene.ae, SceneOptions());
  ASSERT_FALSE(result.ranking.empty());
  EXPECT_EQ(result.ranking[0], 10u);
}

TEST(RsqlTest, StableTemplatesFailVerification) {
  RsqlScene scene = MakeRsqlScene();
  const RsqlResult result = IdentifyRootCauseSqls(
      scene.metrics, scene.sessions, scene.session, {}, scene.hsql,
      &scene.history, scene.as, scene.ae, SceneOptions());
  for (uint64_t id : result.verified) {
    EXPECT_NE(id, 20u);
    EXPECT_NE(id, 21u);
    EXPECT_NE(id, 30u);
  }
}

TEST(RsqlTest, TemplateWithAnomalousHistoryRejected) {
  RsqlScene scene = MakeRsqlScene();
  // Rewrite template 10's 3-day-ago history to contain the same burst in
  // the relative anomaly period: rule (ii) must now reject it.
  TimeSeries h(0, 1, 180);
  Rng rng(13);
  for (int64_t t = 0; t < 180; ++t) {
    h.AtTime(t) = static_cast<double>(
        rng.Poisson(t >= scene.as && t < scene.ae ? 25.0 : 2.0));
  }
  scene.history.Put(10, 3, std::move(h));
  const RsqlResult result = IdentifyRootCauseSqls(
      scene.metrics, scene.sessions, scene.session, {}, scene.hsql,
      &scene.history, scene.as, scene.ae, SceneOptions());
  for (uint64_t id : result.verified) EXPECT_NE(id, 10u);
}

TEST(RsqlTest, NewTemplatePassesWithoutHistory) {
  RsqlScene scene = MakeRsqlScene();
  // Drop all history for the root cause: a brand-new template.
  MapHistoryProvider fresh;
  for (uint64_t id : {20u, 21u, 30u}) {
    for (int days : {1, 3, 7}) {
      const TimeSeries* h = scene.history.ExecutionHistory(id, days);
      if (h != nullptr) fresh.Put(id, days, *h);
    }
  }
  const RsqlResult result = IdentifyRootCauseSqls(
      scene.metrics, scene.sessions, scene.session, {}, scene.hsql, &fresh,
      scene.as, scene.ae, SceneOptions());
  ASSERT_FALSE(result.ranking.empty());
  EXPECT_EQ(result.ranking[0], 10u);
}

TEST(RsqlTest, DisablingHistoryVerificationKeepsStableCandidates) {
  RsqlScene scene = MakeRsqlScene();
  RsqlOptions options = SceneOptions();
  options.use_history_verification = false;
  const RsqlResult result = IdentifyRootCauseSqls(
      scene.metrics, scene.sessions, scene.session, {}, scene.hsql,
      &scene.history, scene.as, scene.ae, options);
  // Without verification the affected templates stay in the ranking.
  bool has_affected = false;
  for (uint64_t id : result.ranking) {
    if (id == 20 || id == 21) has_affected = true;
  }
  EXPECT_TRUE(has_affected);
}

TEST(RsqlTest, FixedTopClusterAblation) {
  RsqlScene scene = MakeRsqlScene();
  RsqlOptions options = SceneOptions();
  options.use_cumulative_threshold = false;
  const RsqlResult result = IdentifyRootCauseSqls(
      scene.metrics, scene.sessions, scene.session, {}, scene.hsql,
      &scene.history, scene.as, scene.ae, options);
  EXPECT_EQ(result.selected_clusters.size(), 1u);
}

TEST(RsqlTest, MetricHelperNodesMergeClusters) {
  // Two templates whose exec trends correlate only via a shared metric
  // node must land in one cluster when helper nodes are on.
  TemplateMetricsStore metrics(0, 100);
  Rng rng(17);
  TimeSeries helper(0, 1, 100);
  for (int64_t t = 0; t < 100; ++t) {
    const double level = t < 50 ? 5.0 : 40.0;
    // Template 1 follows `level` exactly; template 2 follows it with a
    // large offset+scale (still correlates with the helper).
    for (int k = 0; k < static_cast<int>(level); ++k) {
      QueryLogRecord rec;
      rec.arrival_ms = t * 1000 + rng.UniformInt(0, 999);
      rec.sql_id = 1;
      rec.response_ms = 1.0;
      metrics.Accumulate(rec);
    }
    for (int k = 0; k < static_cast<int>(3 * level + 10); ++k) {
      QueryLogRecord rec;
      rec.arrival_ms = t * 1000 + rng.UniformInt(0, 999);
      rec.sql_id = 2;
      rec.response_ms = 1.0;
      metrics.Accumulate(rec);
    }
    helper.AtTime(t) = level;
  }
  std::unordered_map<uint64_t, TimeSeries> sessions;
  sessions[1] = TimeSeries(0, 1, 100);
  sessions[2] = TimeSeries(0, 1, 100);
  TimeSeries session(0, 1, 100);
  const std::vector<HsqlScore> hsql = {{1, 1.0, 0, 0, 0},
                                       {2, 0.5, 0, 0, 0}};
  RsqlOptions options = SceneOptions();
  const std::map<std::string, const TimeSeries*> helpers = {
      {"cpu_usage", &helper}};
  const RsqlResult with_nodes = IdentifyRootCauseSqls(
      metrics, sessions, session, helpers, hsql, nullptr, 50, 100, options);
  EXPECT_EQ(with_nodes.clusters.size(), 1u);

  options.use_metric_helper_nodes = false;
  const RsqlResult without_nodes = IdentifyRootCauseSqls(
      metrics, sessions, session, helpers, hsql, nullptr, 50, 100, options);
  EXPECT_GE(without_nodes.clusters.size(), 1u);
}

TEST(RsqlTest, EmptyMetricsYieldEmptyResult) {
  TemplateMetricsStore metrics(0, 10);
  const RsqlResult result = IdentifyRootCauseSqls(
      metrics, {}, TimeSeries(0, 1, 10), {}, {}, nullptr, 2, 8,
      RsqlOptions{});
  EXPECT_TRUE(result.ranking.empty());
  EXPECT_TRUE(result.clusters.empty());
}

// --------------------------------------------- Diagnose input validation

/// Minimal well-formed input: a few records, a 1 s session series covering
/// the anomaly, an empty (but non-null) history provider.
struct ValidInputFixture {
  LogStore logs;
  MapHistoryProvider history;
  DiagnosisInput input;

  ValidInputFixture() {
    for (int64_t t = 0; t < 100; ++t) {
      logs.Append(Rec(t * 1000 + 100, 50.0, 1 + (t % 3)));
    }
    input.logs = &logs;
    input.history = &history;
    input.active_session = TimeSeries(0, 1, 100);
    for (size_t i = 0; i < 100; ++i) {
      input.active_session[i] = i < 60 ? 1.0 : 5.0;
    }
    input.anomaly_start_sec = 60;
    input.anomaly_end_sec = 90;
  }
};

TEST(DiagnoseValidationTest, WellFormedInputSucceeds) {
  ValidInputFixture f;
  DiagnoserOptions options;
  options.delta_s_sec = 60;  // lookback exactly covered by the metrics
  const StatusOr<DiagnosisResult> result = Diagnose(f.input, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->data_quality.degraded());
  EXPECT_EQ(result->data_quality.confidence, 1.0);
}

TEST(DiagnoseValidationTest, NullLogsRejected) {
  ValidInputFixture f;
  f.input.logs = nullptr;
  const StatusOr<DiagnosisResult> result =
      Diagnose(f.input, DiagnoserOptions{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("logs"), std::string::npos);
}

TEST(DiagnoseValidationTest, NullHistoryRejected) {
  ValidInputFixture f;
  f.input.history = nullptr;
  const StatusOr<DiagnosisResult> result =
      Diagnose(f.input, DiagnoserOptions{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  // The message must point at the remedy, not just the nullptr.
  EXPECT_NE(result.status().message().find("MapHistoryProvider"),
            std::string::npos);
}

TEST(DiagnoseValidationTest, InvertedAnomalyBoundsRejected) {
  ValidInputFixture f;
  f.input.anomaly_start_sec = 90;
  f.input.anomaly_end_sec = 60;
  EXPECT_EQ(Diagnose(f.input, DiagnoserOptions{}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DiagnoseValidationTest, EmptyAnomalyPeriodRejected) {
  ValidInputFixture f;
  f.input.anomaly_start_sec = 60;
  f.input.anomaly_end_sec = 60;
  EXPECT_EQ(Diagnose(f.input, DiagnoserOptions{}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DiagnoseValidationTest, EmptySessionSeriesRejected) {
  ValidInputFixture f;
  f.input.active_session = TimeSeries();
  EXPECT_EQ(Diagnose(f.input, DiagnoserOptions{}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DiagnoseValidationTest, NonOneSecondSessionIntervalRejected) {
  ValidInputFixture f;
  f.input.active_session = TimeSeries(0, 10, 10);
  EXPECT_EQ(Diagnose(f.input, DiagnoserOptions{}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DiagnoseValidationTest, SeriesMissingAnomalyPeriodRejected) {
  ValidInputFixture f;
  // Metrics end before the anomaly begins.
  f.input.anomaly_start_sec = 200;
  f.input.anomaly_end_sec = 230;
  const StatusOr<DiagnosisResult> result =
      Diagnose(f.input, DiagnoserOptions{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("does not intersect"),
            std::string::npos);
}

TEST(DiagnoseDataQualityTest, GapAndSanitizedCountersAreDisjoint) {
  ValidInputFixture f;
  // One genuinely-missing point and one finite-but-impossible point. Each
  // must land in exactly one counter: the garbage point used to be
  // sanitized into NaN first and then counted again as a gap.
  f.input.active_session[10] = std::numeric_limits<double>::quiet_NaN();
  f.input.active_session[20] = -5.0;
  DiagnoserOptions options;
  options.delta_s_sec = 60;  // diagnosis window [0, 90): 90 session points
  const StatusOr<DiagnosisResult> result = Diagnose(f.input, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const DataQuality& dq = result->data_quality;
  EXPECT_EQ(dq.session_points, 90u);
  EXPECT_EQ(dq.session_gap_points, 1u);
  EXPECT_EQ(dq.metric_points_sanitized, 1u);
  // The confidence penalty still charges both bad points, once each.
  EXPECT_NEAR(dq.confidence, 1.0 - 0.5 * 2.0 / 90.0, 1e-12);
}

TEST(DiagnoseTraceTest, PipelineTraceAlwaysPopulated) {
  ValidInputFixture f;
  DiagnoserOptions options;
  options.delta_s_sec = 60;
  const StatusOr<DiagnosisResult> result = Diagnose(f.input, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const obs::PipelineTrace& trace = result->trace;
  ASSERT_EQ(trace.stages.size(), 5u);
  const obs::StageTrace* session = trace.Find("session_estimation");
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->counters.at("session_points"), 90);
  const obs::StageTrace* agg = trace.Find("window_aggregation");
  ASSERT_NE(agg, nullptr);
  EXPECT_GT(agg->counters.at("log_records"), 0);
  EXPECT_GE(trace.total_seconds, 0.0);
}

TEST(DiagnoseTraceTest, SpanRecordingNeverChangesTheDiagnosis) {
  ValidInputFixture f;
  DiagnoserOptions plain;
  plain.delta_s_sec = 60;
  const StatusOr<DiagnosisResult> without = Diagnose(f.input, plain);
  ASSERT_TRUE(without.ok());

  obs::TraceRecorder recorder;
  DiagnoserOptions traced = plain;
  traced.trace = &recorder;
  const StatusOr<DiagnosisResult> with = Diagnose(f.input, traced);
  ASSERT_TRUE(with.ok());

  EXPECT_EQ(with->rsql.ranking, without->rsql.ranking);
  EXPECT_EQ(with->hsql_ranking.size(), without->hsql_ranking.size());
  EXPECT_EQ(with->data_quality.confidence, without->data_quality.confidence);
  if (obs::kEnabled) {
    EXPECT_GT(recorder.event_count(), 0u);
  } else {
    EXPECT_EQ(recorder.event_count(), 0u);
  }
}

TEST(DiagnoseValidationTest, PartialLookbackDegradesInsteadOfRejecting) {
  ValidInputFixture f;
  // delta_s = 600 but metrics begin at t=0: the lookback is truncated,
  // which must degrade (with a note), not reject.
  DiagnoserOptions options;
  options.delta_s_sec = 600;
  const StatusOr<DiagnosisResult> truncated = Diagnose(f.input, options);
  ASSERT_TRUE(truncated.ok()) << truncated.status().ToString();
  EXPECT_TRUE(truncated->data_quality.lookback_truncated);
  EXPECT_TRUE(truncated->data_quality.degraded());
  EXPECT_LT(truncated->data_quality.confidence, 1.0);
}

}  // namespace
}  // namespace pinsql::core
