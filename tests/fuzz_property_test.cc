/// Randomized robustness tests ("poor man's fuzzing", deterministic by
/// seed): the JSON parser and the SQL tokenizer/fingerprinter sit on
/// external inputs (user rule configs, arbitrary query text) and must
/// never crash, loop, or break their invariants on garbage.

#include <string>
#include <string_view>

#include <gtest/gtest.h>

#include "sqltpl/fingerprint.h"
#include "sqltpl/tokenizer.h"
#include "util/json.h"
#include "util/strings.h"
#include "util/rng.h"

namespace pinsql {
namespace {

// ------------------------------------------------ JSON round-trip property

/// Generates a random JSON value of bounded depth.
Json RandomJson(Rng* rng, int depth) {
  const int64_t kind = rng->UniformInt(0, depth > 0 ? 5 : 3);
  switch (kind) {
    case 0:
      return Json();
    case 1:
      return Json(rng->Bernoulli(0.5));
    case 2:
      // Integers and "nice" doubles survive the printf round trip exactly.
      if (rng->Bernoulli(0.5)) {
        return Json(rng->UniformInt(-1'000'000, 1'000'000));
      }
      return Json(rng->Normal(0.0, 1e6));
    case 3: {
      std::string s;
      const int64_t len = rng->UniformInt(0, 24);
      for (int64_t i = 0; i < len; ++i) {
        // Printable ASCII plus the characters needing escapes.
        constexpr std::string_view alphabet =
            "abcXYZ019 _-\"\\\n\t/{}[],:";
        s.push_back(alphabet[static_cast<size_t>(rng->UniformInt(
            0, static_cast<int64_t>(alphabet.size()) - 1))]);
      }
      return Json(std::move(s));
    }
    case 4: {
      Json arr = Json::MakeArray();
      const int64_t n = rng->UniformInt(0, 5);
      for (int64_t i = 0; i < n; ++i) {
        arr.Append(RandomJson(rng, depth - 1));
      }
      return arr;
    }
    default: {
      Json obj = Json::MakeObject();
      const int64_t n = rng->UniformInt(0, 5);
      for (int64_t i = 0; i < n; ++i) {
        obj.Set("k" + std::to_string(rng->UniformInt(0, 99)),
                RandomJson(rng, depth - 1));
      }
      return obj;
    }
  }
}

class JsonRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JsonRoundTripTest, DumpParseDumpIsStable) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    const Json original = RandomJson(&rng, 4);
    const std::string once = original.Dump();
    const StatusOr<Json> parsed = Json::Parse(once);
    ASSERT_TRUE(parsed.ok()) << once;
    // Full equality can differ on float formatting; dump stability is the
    // stronger practical property and implies parse-consistency.
    EXPECT_EQ(parsed->Dump(), once);
    // Pretty print parses back to the same compact form.
    const StatusOr<Json> pretty = Json::Parse(original.Dump(true));
    ASSERT_TRUE(pretty.ok());
    EXPECT_EQ(pretty->Dump(), once);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundTripTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

class JsonGarbageTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JsonGarbageTest, RandomBytesNeverCrash) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 500; ++iter) {
    std::string garbage;
    const int64_t len = rng.UniformInt(0, 64);
    for (int64_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.UniformInt(1, 255)));
    }
    // Must terminate and either parse or return a ParseError; both fine.
    const StatusOr<Json> result = Json::Parse(garbage);
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kParseError);
    }
  }
}

TEST_P(JsonGarbageTest, MutatedValidDocumentsNeverCrash) {
  Rng rng(GetParam() * 1000 + 1);
  const std::string base =
      R"({"rules":[{"anomaly":"cpu_usage.spike","action":"optimize",)"
      R"("params":{"cpu_factor":0.25},"notify":["a","b"]}],"n":-1.5e3})";
  for (int iter = 0; iter < 500; ++iter) {
    std::string mutated = base;
    const int64_t flips = rng.UniformInt(1, 4);
    for (int64_t f = 0; f < flips; ++f) {
      const size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
      mutated[pos] = static_cast<char>(rng.UniformInt(32, 126));
    }
    (void)Json::Parse(mutated);  // must not crash or hang
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonGarbageTest,
                         ::testing::Values(11, 12, 13, 14));

// ------------------------------------------- SQL fingerprint robustness

class SqlGarbageTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SqlGarbageTest, RandomSqlishTextNeverCrashes) {
  Rng rng(GetParam());
  const char* fragments[] = {
      "SELECT", "FROM",  "WHERE", "'",  "\"", "`",  "(",    ")",
      ",",      "123",   "0x",    "/*", "*/", "--", "\n",   "IN",
      "JOIN",   "table", "a.b",   "?",  "=",  ";",  "\\",   "e10",
      ".5",     "--x",   "# c",   "OR", "*",  "!=", "UPDATE"};
  for (int iter = 0; iter < 300; ++iter) {
    std::string sql;
    const int64_t n = rng.UniformInt(0, 30);
    for (int64_t i = 0; i < n; ++i) {
      sql += fragments[rng.UniformInt(0, 30)];
      if (rng.Bernoulli(0.6)) sql += ' ';
    }
    const auto tokens = sqltpl::Tokenize(sql);
    const auto info = sqltpl::Fingerprint(sql);
    // Invariants: a non-empty template hashes consistently and
    // re-fingerprinting the template text is a fixed point.
    EXPECT_EQ(info.sql_id, Fnv1a64(info.template_text));
    const auto again = sqltpl::Fingerprint(info.template_text);
    EXPECT_EQ(again.template_text,
              sqltpl::Fingerprint(again.template_text).template_text);
    (void)tokens;
  }
}

TEST_P(SqlGarbageTest, LiteralValuesNeverChangeTheTemplate) {
  Rng rng(GetParam() * 7 + 5);
  for (int iter = 0; iter < 200; ++iter) {
    const int64_t a = rng.UniformInt(-1'000'000, 1'000'000);
    const int64_t b = rng.UniformInt(-1'000'000, 1'000'000);
    const std::string sql_a =
        "UPDATE t SET v = " + std::to_string(a) +
        " WHERE id = " + std::to_string(rng.UniformInt(0, 1 << 30)) +
        " AND name = 'u" + std::to_string(a) + "'";
    const std::string sql_b =
        "UPDATE t SET v = " + std::to_string(b) +
        " WHERE id = " + std::to_string(rng.UniformInt(0, 1 << 30)) +
        " AND name = 'u" + std::to_string(b) + "'";
    EXPECT_EQ(sqltpl::SqlId(sql_a), sqltpl::SqlId(sql_b));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlGarbageTest,
                         ::testing::Values(21, 22, 23, 24));

}  // namespace
}  // namespace pinsql
