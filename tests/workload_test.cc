#include <gtest/gtest.h>

#include "ts/stats.h"
#include "workload/arrivals.h"
#include "workload/scenario.h"
#include "workload/workload.h"

namespace pinsql::workload {
namespace {

Workload TwoClusterWorkload() {
  Workload w;
  w.tables.push_back({"t0", 0, 8});
  w.tables.push_back({"t1", 1, 8});
  BusinessCluster c0;
  c0.name = "c0";
  c0.base_qps = 50.0;
  c0.noise_sigma = 0.05;
  c0.osc_amplitude = 0.4;
  c0.osc_period_sec = 300.0;
  BusinessCluster c1 = c0;
  c1.name = "c1";
  c1.osc_phase = 3.14159;  // anti-phase
  w.clusters.push_back(c0);
  w.clusters.push_back(c1);

  TemplateDef proto;
  proto.cpu_ms_mean = 2.0;
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < 2; ++i) {
      proto.cluster_idx = static_cast<size_t>(c);
      proto.weight = 1.0;
      proto.table_id = static_cast<uint32_t>(c);
      w.templates.push_back(MakeTemplate(
          MakeSelectSql(w.tables[static_cast<size_t>(c)].name, c * 10 + i),
          proto));
    }
  }
  return w;
}

// --------------------------------------------------------------- Workload

TEST(WorkloadTest, MakeTemplateFingerprintsPattern) {
  TemplateDef proto;
  const TemplateDef def =
      MakeTemplate("SELECT * FROM orders WHERE id = 42", proto);
  EXPECT_NE(def.sql_id, 0u);
  EXPECT_EQ(def.kind, sqltpl::StatementKind::kSelect);
  const TemplateDef same =
      MakeTemplate("SELECT * FROM orders WHERE id = 77", proto);
  EXPECT_EQ(def.sql_id, same.sql_id);
}

TEST(WorkloadTest, SqlHelpersProduceDistinctTemplates) {
  EXPECT_NE(sqltpl::SqlId(MakeSelectSql("t", 1)),
            sqltpl::SqlId(MakeSelectSql("t", 2)));
  EXPECT_NE(sqltpl::SqlId(MakeSelectSql("t", 1)),
            sqltpl::SqlId(MakePointUpdateSql("t", 1)));
  EXPECT_NE(sqltpl::SqlId(MakeInsertSql("a", 1)),
            sqltpl::SqlId(MakeInsertSql("b", 1)));
  EXPECT_EQ(sqltpl::Fingerprint(MakeAlterSql("t", 3)).kind,
            sqltpl::StatementKind::kDdl);
}

TEST(WorkloadTest, FindTemplate) {
  const Workload w = TwoClusterWorkload();
  const uint64_t id = w.templates[2].sql_id;
  EXPECT_EQ(w.FindTemplateIndex(id), 2);
  EXPECT_EQ(w.FindTemplate(id), &w.templates[2]);
  EXPECT_EQ(w.FindTemplate(0xDEADBEEF), nullptr);
}

TEST(WorkloadTest, RegisterTemplatesFillsCatalog) {
  const Workload w = TwoClusterWorkload();
  LogStore store;
  w.RegisterTemplates(&store);
  EXPECT_EQ(store.catalog().size(), w.templates.size());
  const TemplateCatalogEntry* entry =
      store.FindTemplate(w.templates[0].sql_id);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->tables, (std::vector<std::string>{"t0"}));
}

// --------------------------------------------------------------- RatePlan

TEST(RatePlanTest, WeightSharesSplitClusterRate) {
  const Workload w = TwoClusterWorkload();
  RatePlan plan(w, {}, 0, 100, /*seed=*/1);
  // Two equal-weight templates split the cluster's ~50 qps, modulated by
  // oscillation/noise: each must stay within a sane band.
  double sum = 0.0;
  for (int64_t t = 0; t < 100; ++t) sum += plan.Rate(0, t) + plan.Rate(1, t);
  const double mean_cluster_rate = sum / 100.0;
  EXPECT_GT(mean_cluster_rate, 20.0);
  EXPECT_LT(mean_cluster_rate, 90.0);
}

TEST(RatePlanTest, OverridesMultiplyAndAdd) {
  const Workload w = TwoClusterWorkload();
  RateOverride mult;
  mult.sql_id = w.templates[0].sql_id;
  mult.start_sec = 50;
  mult.end_sec = 60;
  mult.multiplier = 10.0;
  RateOverride add;
  add.sql_id = w.templates[1].sql_id;
  add.start_sec = 50;
  add.end_sec = 60;
  add.add_qps = 123.0;
  RatePlan plan(w, {mult, add}, 0, 100, 1);
  EXPECT_NEAR(plan.Rate(0, 55) / plan.Rate(0, 49), 10.0, 3.0);
  EXPECT_GT(plan.Rate(1, 55), 123.0);
  EXPECT_LT(plan.Rate(1, 65), 60.0);
}

TEST(RatePlanTest, ZeroWeightTemplateHasZeroBaseRate) {
  Workload w = TwoClusterWorkload();
  TemplateDef proto;
  proto.cluster_idx = 0;
  proto.weight = 0.0;
  w.templates.push_back(MakeTemplate("SELECT 1 FROM dual", proto));
  RatePlan plan(w, {}, 0, 10, 1);
  EXPECT_DOUBLE_EQ(plan.Rate(w.templates.size() - 1, 5), 0.0);
}

// ---------------------------------------------------------- Arrival gen

TEST(ArrivalsTest, GenerateArrivalsSortedAndInWindow) {
  const Workload w = TwoClusterWorkload();
  const auto arrivals = GenerateArrivals(w, {}, 100, 160, 9);
  ASSERT_GT(arrivals.size(), 1000u);  // ~100 qps * 60 s
  for (size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_LE(arrivals[i - 1].arrival_ms, arrivals[i].arrival_ms);
  }
  EXPECT_GE(arrivals.front().arrival_ms, 100'000);
  EXPECT_LT(arrivals.back().arrival_ms, 160'000);
}

TEST(ArrivalsTest, DeterministicForSameSeed) {
  const Workload w = TwoClusterWorkload();
  const auto a = GenerateArrivals(w, {}, 0, 30, 5);
  const auto b = GenerateArrivals(w, {}, 0, 30, 5);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival_ms, b[i].arrival_ms);
    EXPECT_EQ(a[i].spec.sql_id, b[i].spec.sql_id);
    EXPECT_DOUBLE_EQ(a[i].spec.cpu_ms, b[i].spec.cpu_ms);
  }
  const auto c = GenerateArrivals(w, {}, 0, 30, 6);
  EXPECT_NE(a.size(), c.size());
}

TEST(ArrivalsTest, SpecsCarryMdlLock) {
  const Workload w = TwoClusterWorkload();
  const auto arrivals = GenerateArrivals(w, {}, 0, 10, 5);
  ASSERT_FALSE(arrivals.empty());
  for (const auto& a : arrivals) {
    bool has_mdl = false;
    for (const auto& lock : a.spec.locks) {
      if (dbsim::IsMdlKey(lock.key)) has_mdl = true;
    }
    EXPECT_TRUE(has_mdl);
  }
}

TEST(ArrivalsTest, HotGroupLimitNarrowsLockRange) {
  Workload w = TwoClusterWorkload();
  TemplateDef proto;
  proto.cluster_idx = 0;
  proto.weight = 5.0;
  proto.table_id = 0;
  proto.row_groups_touched = 1;
  proto.row_lock_mode = dbsim::LockMode::kExclusive;
  proto.hot_group_limit = 2;
  w.templates.push_back(MakeTemplate("UPDATE t0 SET hot = 1", proto));
  const uint64_t id = w.templates.back().sql_id;
  const auto arrivals = GenerateArrivals(w, {}, 0, 60, 5);
  for (const auto& a : arrivals) {
    if (a.spec.sql_id != id) continue;
    for (const auto& lock : a.spec.locks) {
      if (!dbsim::IsMdlKey(lock.key)) {
        const uint32_t group = static_cast<uint32_t>(lock.key & 0xFFFFFFFF);
        EXPECT_LT(group, 2u);
      }
    }
  }
}

TEST(ArrivalsTest, ExecutionCountsMatchRatesApproximately) {
  const Workload w = TwoClusterWorkload();
  const auto counts = GenerateExecutionCounts(w, {}, 0, 300, 5);
  EXPECT_EQ(counts.size(), w.templates.size());
  const TimeSeries& series = counts.at(w.templates[0].sql_id);
  EXPECT_EQ(series.size(), 300u);
  // Each template gets half the cluster's ~50 qps.
  EXPECT_NEAR(series.Mean(), 25.0, 8.0);
}

TEST(ArrivalsTest, SameClusterTrendsCorrelateMoreThanCrossCluster) {
  // The property the R-SQL clustering stage relies on (paper Sec. VI).
  const Workload w = TwoClusterWorkload();
  const auto counts = GenerateExecutionCounts(w, {}, 0, 900, 5);
  auto at = [&](size_t i) {
    return counts.at(w.templates[i].sql_id)
        .Resample(30, TimeSeries::Agg::kSum)
        .values();
  };
  const double same = PearsonCorrelation(at(0), at(1));
  const double cross = PearsonCorrelation(at(0), at(2));
  EXPECT_GT(same, 0.8);
  EXPECT_LT(cross, same);
}

// ---------------------------------------------------------------- Scenario

TEST(ScenarioTest, StandardWorkloadShape) {
  Rng rng(77);
  ScenarioParams params;
  const Workload w = MakeStandardWorkload(params, &rng);
  EXPECT_EQ(static_cast<int>(w.clusters.size()), params.num_clusters);
  EXPECT_EQ(static_cast<int>(w.tables.size()), params.num_tables);
  EXPECT_GE(static_cast<int>(w.templates.size()),
            params.num_clusters * params.min_templates_per_cluster);
  // All sql ids unique.
  std::set<uint64_t> ids;
  for (const auto& tpl : w.templates) ids.insert(tpl.sql_id);
  EXPECT_EQ(ids.size(), w.templates.size());
  // Every template's table exists.
  for (const auto& tpl : w.templates) {
    EXPECT_LT(tpl.table_id, w.tables.size());
  }
}

TEST(ScenarioTest, WorkloadContainsLockingReadsAndUpdates) {
  Rng rng(78);
  const Workload w = MakeStandardWorkload(ScenarioParams{}, &rng);
  int locking_reads = 0;
  int updates = 0;
  for (const auto& tpl : w.templates) {
    if (tpl.row_groups_touched > 0 &&
        tpl.row_lock_mode == dbsim::LockMode::kShared) {
      ++locking_reads;
    }
    if (tpl.kind == sqltpl::StatementKind::kUpdate) ++updates;
  }
  EXPECT_GT(locking_reads, 0);
  EXPECT_GT(updates, 0);
}

class InjectionTest
    : public ::testing::TestWithParam<AnomalyType> {};

/// How many templates each category appends to the workload. kCompound
/// combines two sub-builders chosen by the rng, so it adds 1 or 2;
/// {-1, -2} encodes that range.
std::pair<int, int> ExpectedTemplatesAdded(AnomalyType type) {
  switch (type) {
    case AnomalyType::kBusinessSpike:   // spikes reuse a template
    case AnomalyType::kFlashSaleFlood:  // floods existing endpoints
      return {0, 0};
    case AnomalyType::kPoorSql:
    case AnomalyType::kMdlLock:
    case AnomalyType::kRowLock:
    case AnomalyType::kSlowDrift:
    case AnomalyType::kCacheStampede:  // flood reuses; recompute is new
    case AnomalyType::kReplicationLag:
      return {1, 1};
    case AnomalyType::kMigrationStorm:  // ALTER chunks + backfill UPDATE
      return {2, 2};
    case AnomalyType::kCompound:
      return {1, 2};
  }
  return {0, 0};
}

TEST_P(InjectionTest, ProducesGroundTruthAndOverrides) {
  Rng rng(79);
  Workload w = MakeStandardWorkload(ScenarioParams{}, &rng);
  const size_t before = w.templates.size();
  const Injection inj = MakeInjection(GetParam(), &w, 600, 840, &rng);
  EXPECT_EQ(inj.type, GetParam());
  EXPECT_EQ(inj.anomaly_start_sec, 600);
  EXPECT_EQ(inj.anomaly_end_sec, 840);
  ASSERT_FALSE(inj.root_cause_ids.empty());
  ASSERT_FALSE(inj.overrides.empty());
  // Every root cause id resolves in the (possibly grown) workload.
  for (uint64_t id : inj.root_cause_ids) {
    EXPECT_NE(w.FindTemplate(id), nullptr);
  }
  // Overrides are confined to the anomaly period.
  for (const auto& ov : inj.overrides) {
    EXPECT_GE(ov.start_sec, 600);
    EXPECT_LE(ov.end_sec, 840);
  }
  const auto [min_added, max_added] = ExpectedTemplatesAdded(GetParam());
  const int added = static_cast<int>(w.templates.size() - before);
  EXPECT_GE(added, min_added);
  EXPECT_LE(added, max_added);
}

TEST_P(InjectionTest, InjectedTemplateShapeMatchesType) {
  Rng rng(80);
  Workload w = MakeStandardWorkload(ScenarioParams{}, &rng);
  const Injection inj = MakeInjection(GetParam(), &w, 600, 840, &rng);
  const TemplateDef* tpl = w.FindTemplate(inj.root_cause_ids[0]);
  ASSERT_NE(tpl, nullptr);
  switch (GetParam()) {
    case AnomalyType::kBusinessSpike:
      EXPECT_GT(inj.overrides[0].multiplier, 1.0);
      break;
    case AnomalyType::kPoorSql:
      EXPECT_GE(tpl->cpu_ms_mean, 100.0);
      EXPECT_GE(tpl->examined_rows_mean, 1e4);
      break;
    case AnomalyType::kMdlLock:
      EXPECT_TRUE(tpl->mdl_exclusive);
      EXPECT_EQ(tpl->kind, sqltpl::StatementKind::kDdl);
      break;
    case AnomalyType::kRowLock:
      EXPECT_EQ(tpl->row_lock_mode, dbsim::LockMode::kExclusive);
      EXPECT_GT(tpl->row_groups_touched, 0);
      break;
    case AnomalyType::kFlashSaleFlood: {
      // Several load-bearing endpoints flood at once: every override is a
      // multiplier on an existing template, every flooded id is a root.
      EXPECT_GE(inj.root_cause_ids.size(), 2u);
      ASSERT_EQ(inj.overrides.size(), inj.root_cause_ids.size());
      for (const auto& ov : inj.overrides) EXPECT_GT(ov.multiplier, 1.0);
      break;
    }
    case AnomalyType::kSlowDrift: {
      EXPECT_GE(tpl->cpu_ms_mean, 80.0);
      // A staircase of additive segments, each step's rate above the last:
      // the creep that defeats a per-sample z screen.
      ASSERT_GE(inj.overrides.size(), 16u);
      for (size_t i = 1; i < inj.overrides.size(); ++i) {
        EXPECT_EQ(inj.overrides[i].start_sec, inj.overrides[i - 1].end_sec);
        EXPECT_GT(inj.overrides[i].add_qps, inj.overrides[i - 1].add_qps);
      }
      break;
    }
    case AnomalyType::kCacheStampede: {
      // Two roots: the flooded point read (existing) and the new
      // recompute query.
      ASSERT_EQ(inj.root_cause_ids.size(), 2u);
      EXPECT_GT(inj.overrides[0].multiplier, 1.0);
      const TemplateDef* recompute = w.FindTemplate(inj.root_cause_ids[1]);
      ASSERT_NE(recompute, nullptr);
      EXPECT_GE(recompute->cpu_ms_mean, 60.0);
      break;
    }
    case AnomalyType::kReplicationLag:
      EXPECT_GE(tpl->io_ms_mean, 300.0);  // IO-bound scan, little CPU
      EXPECT_GE(tpl->examined_rows_mean, 5e5);
      break;
    case AnomalyType::kMigrationStorm: {
      // The DDL chunks and the backfill UPDATE are both roots, both on
      // the same table.
      ASSERT_EQ(inj.root_cause_ids.size(), 2u);
      EXPECT_TRUE(tpl->mdl_exclusive);
      const TemplateDef* backfill = w.FindTemplate(inj.root_cause_ids[1]);
      ASSERT_NE(backfill, nullptr);
      EXPECT_EQ(backfill->row_lock_mode, dbsim::LockMode::kExclusive);
      EXPECT_GT(backfill->row_groups_touched, 0);
      EXPECT_EQ(backfill->table_id, tpl->table_id);
      break;
    }
    case AnomalyType::kCompound:
      EXPECT_GE(inj.root_cause_ids.size(), 2u);
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, InjectionTest,
                         ::testing::ValuesIn(AllAnomalyTypes()));

TEST(ScenarioTest, AnomalyTypeNames) {
  EXPECT_STREQ(AnomalyTypeName(AnomalyType::kBusinessSpike),
               "business_spike");
  EXPECT_STREQ(AnomalyTypeName(AnomalyType::kPoorSql), "poor_sql");
  EXPECT_STREQ(AnomalyTypeName(AnomalyType::kMdlLock), "mdl_lock");
  EXPECT_STREQ(AnomalyTypeName(AnomalyType::kRowLock), "row_lock");
  EXPECT_STREQ(AnomalyTypeName(AnomalyType::kFlashSaleFlood),
               "flash_sale_flood");
  EXPECT_STREQ(AnomalyTypeName(AnomalyType::kSlowDrift), "slow_drift");
  EXPECT_STREQ(AnomalyTypeName(AnomalyType::kCacheStampede),
               "cache_stampede");
  EXPECT_STREQ(AnomalyTypeName(AnomalyType::kReplicationLag),
               "replication_lag");
  EXPECT_STREQ(AnomalyTypeName(AnomalyType::kMigrationStorm),
               "migration_storm");
  EXPECT_STREQ(AnomalyTypeName(AnomalyType::kCompound), "compound");
  // Every enum value renders a distinct, non-"unknown" name.
  std::set<std::string> names;
  for (AnomalyType type : AllAnomalyTypes()) {
    names.insert(AnomalyTypeName(type));
  }
  EXPECT_EQ(names.size(), AllAnomalyTypes().size());
  EXPECT_EQ(names.count("unknown"), 0u);
}

TEST(ScenarioTest, LegacyTypePartition) {
  size_t legacy = 0;
  for (AnomalyType type : AllAnomalyTypes()) {
    if (IsLegacyAnomalyType(type)) ++legacy;
  }
  EXPECT_EQ(legacy, 4u);
  EXPECT_TRUE(IsLegacyAnomalyType(AnomalyType::kRowLock));
  EXPECT_FALSE(IsLegacyAnomalyType(AnomalyType::kSlowDrift));
}

}  // namespace
}  // namespace pinsql::workload
