// Chaos child for store_chaos_test: streams the synthetic incident into a
// DurableOnlineService under the given data dir, reporting per-second
// progress so the parent can SIGKILL it mid-ingest. Deliberately never
// stops gracefully — once the feed is done it sleeps until killed, so the
// WAL always ends the way a crashed process leaves it.
//
// usage: store_chaos_child <data_dir> <progress_file> <checkpoint_every_sec>

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "online/replay.h"
#include "store/durable_service.h"

namespace {

using pinsql::QueryLogRecord;
using pinsql::TemplateCatalogEntry;

pinsql::online::PerfSample Sample(int64_t sec, double session) {
  pinsql::online::PerfSample s;
  s.sec = sec;
  s.active_session = session;
  s.cpu_usage = session * 0.05;
  s.iops_usage = session * 0.1;
  return s;
}

/// Same synthetic incident as the recovery/replay suites.
pinsql::online::ReplayLog SyntheticIncident() {
  pinsql::online::ReplayLog log;
  const int64_t t0 = 100'000;
  const int64_t onset = t0 + 200;
  const int64_t t1 = onset + 120;
  for (int64_t sec = t0; sec < t1; ++sec) {
    const bool anomalous = sec >= onset;
    log.samples.push_back(Sample(sec, anomalous ? 380.0 : 4.0));
    uint64_t state = static_cast<uint64_t>(sec) * 2654435761ULL + 17;
    const int base = 6;
    const int extra = anomalous ? 40 : 0;
    for (int i = 0; i < base + extra; ++i) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      QueryLogRecord r;
      r.sql_id = i < base ? 1 + (state >> 33) % 4 : 9;
      r.arrival_ms = sec * 1000 + static_cast<int64_t>((state >> 13) % 1000);
      r.response_ms = i < base ? 2.0 : 450.0;
      r.examined_rows = i < base ? 20 : 500'000;
      log.records.push_back(r);
    }
  }
  return log;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 4) {
    std::fprintf(stderr,
                 "usage: %s <data_dir> <progress_file> <ckpt_every_sec>\n",
                 argv[0]);
    return 2;
  }
  const std::string data_dir = argv[1];
  const int progress_fd = ::open(argv[2], O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (progress_fd < 0) return 2;

  pinsql::store::DurableServiceOptions options;
  options.service.scheduler.zero_timings = true;
  options.checkpoint_every_sec = std::atoll(argv[3]);
  auto service = pinsql::store::DurableOnlineService::Open(options, data_dir);
  if (!service.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 service.status().message().c_str());
    return 2;
  }

  for (uint64_t id : {1, 2, 3, 4}) {
    TemplateCatalogEntry entry;
    entry.template_text = "SELECT * FROM t WHERE k = ?";
    entry.kind = pinsql::sqltpl::StatementKind::kSelect;
    entry.tables = {"t"};
    (*service)->RegisterTemplate(id, entry);
  }
  TemplateCatalogEntry heavy;
  heavy.template_text = "SELECT * FROM big ORDER BY v";
  heavy.kind = pinsql::sqltpl::StatementKind::kSelect;
  heavy.tables = {"big"};
  (*service)->RegisterTemplate(9, heavy);

  const pinsql::online::ReplayLog log = SyntheticIncident();
  size_t record_cursor = 0;
  for (size_t i = 0; i < log.samples.size(); ++i) {
    const int64_t sec = log.samples[i].sec;
    while (record_cursor < log.records.size() &&
           log.records[record_cursor].arrival_ms / 1000 == sec) {
      (*service)->IngestRecord(log.records[record_cursor]);
      ++record_cursor;
    }
    (*service)->IngestMetrics(log.samples[i]);
    char buf[32];
    const int n = std::snprintf(buf, sizeof(buf), "%zu\n", i);
    if (n > 0) ::pwrite(progress_fd, buf, static_cast<size_t>(n), 0);
    ::usleep(2000);  // paced so the parent can aim its SIGKILL
  }
  // No Stop(): wait for the parent's SIGKILL so the run always ends like a
  // crash, never like a drain.
  for (;;) ::pause();
}
