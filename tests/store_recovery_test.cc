#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "detect/forecast.h"
#include "faults/storage_faults.h"
#include "online/replay.h"
#include "store/checkpoint.h"
#include "store/codec.h"
#include "store/crc32c.h"
#include "store/durable_service.h"
#include "store/env.h"
#include "store/wal.h"

namespace pinsql::store {
namespace {

std::string MakeTempDir() {
  std::string tmpl = ::testing::TempDir() + "pinsql_store_XXXXXX";
  EXPECT_NE(mkdtemp(tmpl.data()), nullptr);
  return tmpl;
}

QueryLogRecord Rec(int64_t arrival_ms, uint64_t sql_id, double response = 2.0,
                   int64_t rows = 10) {
  QueryLogRecord r;
  r.arrival_ms = arrival_ms;
  r.sql_id = sql_id;
  r.response_ms = response;
  r.examined_rows = rows;
  return r;
}

online::PerfSample Sample(int64_t sec, double session) {
  online::PerfSample s;
  s.sec = sec;
  s.active_session = session;
  s.cpu_usage = session * 0.05;
  s.iops_usage = session * 0.1;
  return s;
}

/// Same synthetic incident the replay determinism suite uses: flat
/// baseline, then template 9 floods the instance.
online::ReplayLog SyntheticIncident() {
  online::ReplayLog log;
  const int64_t t0 = 100'000;
  const int64_t onset = t0 + 200;
  const int64_t t1 = onset + 120;
  for (int64_t sec = t0; sec < t1; ++sec) {
    const bool anomalous = sec >= onset;
    log.samples.push_back(Sample(sec, anomalous ? 380.0 : 4.0));
    uint64_t state = static_cast<uint64_t>(sec) * 2654435761ULL + 17;
    const int base = 6;
    const int extra = anomalous ? 40 : 0;
    for (int i = 0; i < base + extra; ++i) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      QueryLogRecord r;
      r.sql_id = i < base ? 1 + (state >> 33) % 4 : 9;
      r.arrival_ms = sec * 1000 + static_cast<int64_t>((state >> 13) % 1000);
      r.response_ms = i < base ? 2.0 : 450.0;
      r.examined_rows = i < base ? 20 : 500'000;
      log.records.push_back(r);
    }
  }
  return log;
}

LogStore SyntheticCatalog() {
  LogStore catalog;
  for (uint64_t id = 1; id <= 4; ++id) {
    TemplateCatalogEntry entry;
    entry.template_text = "SELECT * FROM t WHERE k = ?";
    entry.kind = sqltpl::StatementKind::kSelect;
    entry.tables = {"t"};
    catalog.RegisterTemplate(id, entry);
  }
  TemplateCatalogEntry heavy;
  heavy.template_text = "SELECT * FROM big ORDER BY v";
  heavy.kind = sqltpl::StatementKind::kSelect;
  heavy.tables = {"big"};
  catalog.RegisterTemplate(9, heavy);
  return catalog;
}

void RegisterCatalog(DurableOnlineService* service) {
  const LogStore catalog = SyntheticCatalog();
  std::vector<uint64_t> ids;
  for (const auto& [id, entry] : catalog.catalog()) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (uint64_t id : ids) {
    service->RegisterTemplate(id, catalog.catalog().at(id));
  }
}

/// Feeds every second in [from_sec, to_sec) with the replay discipline:
/// the second's records, then its sample.
void Feed(DurableOnlineService* service, const online::ReplayLog& log,
          int64_t from_sec, int64_t to_sec) {
  for (const auto& sample : log.samples) {
    if (sample.sec < from_sec || sample.sec >= to_sec) continue;
    for (const auto& record : log.records) {
      if (record.arrival_ms / 1000 == sample.sec) {
        service->IngestRecord(record);
      }
    }
    service->IngestMetrics(sample);
  }
}

DurableServiceOptions DurableOpts() {
  DurableServiceOptions options;
  // Byte-comparable reports, matching ReplayOptions::zero_timings.
  options.service.scheduler.zero_timings = true;
  return options;
}

std::string ReferenceFingerprint(const online::ReplayLog& log) {
  online::ReplayOptions options;  // zero_timings defaults on
  return RunReplay(log, SyntheticCatalog(), options).Fingerprint();
}

// --- CRC32C ----------------------------------------------------------------

TEST(Crc32cTest, KnownAnswerAndExtend) {
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
  const std::string a = "hello ", b = "world";
  EXPECT_EQ(Crc32cExtend(Crc32c(a), b.data(), b.size()), Crc32c(a + b));
}

// --- Frame codec -----------------------------------------------------------

TEST(WalCodecTest, FramePayloadRoundTripAllKinds) {
  WalFrame records;
  records.kind = FrameKind::kRecordBatch;
  records.records = {Rec(123'456, 7, 9.5, 42), Rec(123'900, 8, 1.25, 0)};

  WalFrame sample;
  sample.kind = FrameKind::kSample;
  sample.sample = Sample(555, 12.5);
  sample.sample.row_lock_waits = 3.0;

  WalFrame tmpl;
  tmpl.kind = FrameKind::kTemplate;
  tmpl.template_id = 99;
  tmpl.template_entry.template_text = "SELECT * FROM t WHERE k = ?";
  tmpl.template_entry.kind = sqltpl::StatementKind::kSelect;
  tmpl.template_entry.tables = {"t", "u"};

  WalFrame event;
  event.kind = FrameKind::kRepairEvent;
  event.event.time_ms = 1234.5;
  event.event.kind = repair::RepairEventKind::kApplied;
  event.event.action = repair::ActionType::kThrottle;
  event.event.sql_id = 9;
  event.event.ticket = 3;
  event.event.attempt = 2;
  event.event.detail = "factor=0.5";

  for (const WalFrame* frame : {&records, &sample, &tmpl, &event}) {
    auto decoded = DecodeFramePayload(EncodeFramePayload(*frame));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->kind, frame->kind);
  }
  auto r = DecodeFramePayload(EncodeFramePayload(records));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->records.size(), 2u);
  EXPECT_EQ(r->records[0].arrival_ms, 123'456);
  EXPECT_DOUBLE_EQ(r->records[0].response_ms, 9.5);
  EXPECT_EQ(r->records[1].sql_id, 8u);

  auto s = DecodeFramePayload(EncodeFramePayload(sample));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->sample.sec, 555);
  EXPECT_DOUBLE_EQ(s->sample.row_lock_waits, 3.0);

  auto t = DecodeFramePayload(EncodeFramePayload(tmpl));
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->template_id, 99u);
  EXPECT_EQ(t->template_entry.tables,
            (std::vector<std::string>{"t", "u"}));

  auto e = DecodeFramePayload(EncodeFramePayload(event));
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->event.kind, repair::RepairEventKind::kApplied);
  EXPECT_EQ(e->event.detail, "factor=0.5");
}

TEST(WalCodecTest, DecodeRejectsUnknownKindAndTrailingBytes) {
  EXPECT_FALSE(DecodeFramePayload("\x09junk").ok());
  EXPECT_FALSE(DecodeFramePayload("").ok());
  WalFrame frame;
  frame.kind = FrameKind::kSample;
  frame.sample = Sample(10, 1.0);
  std::string payload = EncodeFramePayload(frame);
  ASSERT_TRUE(DecodeFramePayload(payload).ok());
  payload.push_back('\0');  // trailing garbage must not be silently ignored
  EXPECT_FALSE(DecodeFramePayload(payload).ok());
}

// --- Writer / scanner ------------------------------------------------------

TEST(WalTest, WriterScannerRoundTrip) {
  const std::string dir = MakeTempDir();
  WalOptions options;
  auto writer = WalWriter::Open(PosixEnv(), dir, options, 1);
  ASSERT_TRUE(writer.ok());

  TemplateCatalogEntry entry;
  entry.template_text = "SELECT 1";
  ASSERT_TRUE((*writer)->AppendTemplate(5, entry).ok());
  ASSERT_TRUE(
      (*writer)->AppendRecordBatch({Rec(1000'000, 1), Rec(1000'500, 2)}).ok());
  ASSERT_TRUE((*writer)->AppendSample(Sample(1000, 4.0)).ok());
  repair::RepairEvent event;
  event.time_ms = 1000'700.0;
  event.kind = repair::RepairEventKind::kAttempt;
  ASSERT_TRUE((*writer)->AppendRepairEvent(event).ok());
  const WalPosition end = (*writer)->position();
  ASSERT_TRUE((*writer)->Close().ok());

  WalScanStats stats;
  std::vector<WalFrame> frames;
  ASSERT_TRUE(ScanWal(PosixEnv(), dir, options, WalPosition{},
                      [&](const WalFrame& f) { frames.push_back(f); },
                      &stats)
                  .ok());
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_EQ(frames[0].kind, FrameKind::kTemplate);
  EXPECT_EQ(frames[1].kind, FrameKind::kRecordBatch);
  EXPECT_EQ(frames[1].records.size(), 2u);
  EXPECT_EQ(frames[2].kind, FrameKind::kSample);
  EXPECT_EQ(frames[3].kind, FrameKind::kRepairEvent);
  EXPECT_EQ(stats.frames_valid, 4u);
  EXPECT_EQ(stats.frames_corrupt, 0u);
  EXPECT_EQ(stats.records, 2u);
  EXPECT_EQ(stats.samples, 1u);
  EXPECT_EQ(stats.last_seq, 1u);
  EXPECT_EQ(stats.end, end);
  EXPECT_FALSE(stats.seq_gap);

  // Resuming from the end position replays nothing.
  WalScanStats tail_stats;
  size_t tail_frames = 0;
  ASSERT_TRUE(ScanWal(PosixEnv(), dir, options, end,
                      [&](const WalFrame&) { ++tail_frames; }, &tail_stats)
                  .ok());
  EXPECT_EQ(tail_frames, 0u);
}

TEST(WalTest, RotationSealsAndScansAcrossSegments) {
  const std::string dir = MakeTempDir();
  WalOptions options;
  options.segment_bytes = 512;  // force rotation quickly
  options.fsync = FsyncPolicy::kNever;
  auto writer = WalWriter::Open(PosixEnv(), dir, options, 1);
  ASSERT_TRUE(writer.ok());
  for (int64_t sec = 2000; sec < 2040; ++sec) {
    ASSERT_TRUE((*writer)
                    ->AppendRecordBatch({Rec(sec * 1000, 1), Rec(sec * 1000, 2)})
                    .ok());
    ASSERT_TRUE((*writer)->AppendSample(Sample(sec, 5.0)).ok());
  }
  EXPECT_GT((*writer)->stats().segments_sealed, 0u);
  EXPECT_FALSE((*writer)->sealed().empty());
  ASSERT_TRUE((*writer)->Close().ok());

  WalScanStats stats;
  size_t samples = 0;
  ASSERT_TRUE(ScanWal(PosixEnv(), dir, options, WalPosition{},
                      [&](const WalFrame& f) {
                        if (f.kind == FrameKind::kSample) ++samples;
                      },
                      &stats)
                  .ok());
  EXPECT_EQ(samples, 40u);
  EXPECT_EQ(stats.records, 80u);
  EXPECT_GT(stats.last_seq, 1u);
  EXPECT_EQ(stats.segments_scanned, stats.segments.size());
  EXPECT_FALSE(stats.seq_gap);
  EXPECT_FALSE(stats.stopped_early);
}

TEST(WalTest, TornTailIsTruncatedAndCounted) {
  const std::string dir = MakeTempDir();
  WalOptions options;
  auto writer = WalWriter::Open(PosixEnv(), dir, options, 1);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->AppendSample(Sample(1000, 4.0)).ok());
  ASSERT_TRUE((*writer)->AppendSample(Sample(1001, 4.0)).ok());
  ASSERT_TRUE((*writer)->Close().ok());

  // Simulate a kill -9 mid-append: half a frame header at the tail.
  const std::string path = dir + "/" + SegmentFileName(1);
  {
    std::ofstream f(path, std::ios::binary | std::ios::app);
    f.write("\x40\x00\x00", 3);
  }
  WalScanStats stats;
  size_t delivered = 0;
  ASSERT_TRUE(ScanWal(PosixEnv(), dir, options, WalPosition{},
                      [&](const WalFrame&) { ++delivered; }, &stats)
                  .ok());
  EXPECT_EQ(delivered, 2u);
  EXPECT_EQ(stats.frames_corrupt, 1u);
  EXPECT_EQ(stats.torn_tail_bytes_truncated, 3u);

  // The truncation is physical: a second scan is clean.
  WalScanStats again;
  ASSERT_TRUE(ScanWal(PosixEnv(), dir, options, WalPosition{},
                      [](const WalFrame&) {}, &again)
                  .ok());
  EXPECT_EQ(again.frames_corrupt, 0u);
  EXPECT_EQ(again.frames_valid, 2u);
}

TEST(WalTest, MidSegmentCorruptionDiscardsRestOfSegmentOnly) {
  const std::string dir = MakeTempDir();
  WalOptions options;
  options.segment_bytes = 256;
  options.fsync = FsyncPolicy::kNever;
  auto writer = WalWriter::Open(PosixEnv(), dir, options, 1);
  ASSERT_TRUE(writer.ok());
  for (int64_t sec = 3000; sec < 3030; ++sec) {
    ASSERT_TRUE((*writer)->AppendSample(Sample(sec, 5.0)).ok());
  }
  ASSERT_TRUE((*writer)->Close().ok());
  WalScanStats clean;
  ASSERT_TRUE(ScanWal(PosixEnv(), dir, options, WalPosition{},
                      [](const WalFrame&) {}, &clean)
                  .ok());
  ASSERT_GT(clean.last_seq, 2u) << "fixture needs several segments";

  // Flip one payload byte in the middle of segment 1.
  const std::string path = dir + "/" + SegmentFileName(1);
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(40);
    char byte = 0;
    f.seekg(40);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x10);
    f.seekp(40);
    f.write(&byte, 1);
  }
  WalScanStats stats;
  std::vector<int64_t> secs;
  ASSERT_TRUE(ScanWal(PosixEnv(), dir, options, WalPosition{},
                      [&](const WalFrame& f) { secs.push_back(f.sample.sec); },
                      &stats)
                  .ok());
  EXPECT_EQ(stats.frames_corrupt, 1u);
  EXPECT_GT(stats.bytes_discarded, 0u);
  // The rest of segment 1 is abandoned, but later segments still replay:
  // the writer re-appends torn frames to the next segment, so mid-WAL
  // skip-to-next keeps the stream contiguous for the writer's own faults.
  EXPECT_LT(secs.size(), 30u);
  EXPECT_EQ(secs.back(), 3029);
  // The corrupted frame itself was never delivered.
  for (size_t i = 1; i < secs.size(); ++i) EXPECT_GT(secs[i], secs[i - 1]);
}

TEST(WalTest, MissingBaseSegmentIsAGap) {
  const std::string dir = MakeTempDir();
  WalOptions options;
  options.segment_bytes = 256;
  options.fsync = FsyncPolicy::kNever;
  auto writer = WalWriter::Open(PosixEnv(), dir, options, 1);
  ASSERT_TRUE(writer.ok());
  for (int64_t sec = 3000; sec < 3030; ++sec) {
    ASSERT_TRUE((*writer)->AppendSample(Sample(sec, 5.0)).ok());
  }
  ASSERT_TRUE((*writer)->Close().ok());
  ASSERT_TRUE(PosixEnv()->DeleteFile(dir + "/" + SegmentFileName(1)).ok());

  // A from-scratch scan that cannot find segment 1 lost the stream's base:
  // flagged as a gap, never passed off as a complete replay.
  WalScanStats stats;
  ASSERT_TRUE(ScanWal(PosixEnv(), dir, options, WalPosition{},
                      [](const WalFrame&) {}, &stats)
                  .ok());
  EXPECT_TRUE(stats.seq_gap);
}

TEST(WalTest, DuplicateSegmentSequenceKeepsFirstAndCounts) {
  const std::string dir = MakeTempDir();
  WalOptions options;
  options.segment_bytes = 256;
  options.fsync = FsyncPolicy::kNever;
  auto writer = WalWriter::Open(PosixEnv(), dir, options, 1);
  ASSERT_TRUE(writer.ok());
  for (int64_t sec = 3000; sec < 3030; ++sec) {
    ASSERT_TRUE((*writer)->AppendSample(Sample(sec, 5.0)).ok());
  }
  ASSERT_TRUE((*writer)->Close().ok());
  WalScanStats clean;
  ASSERT_TRUE(ScanWal(PosixEnv(), dir, options, WalPosition{},
                      [](const WalFrame&) {}, &clean)
                  .ok());

  // A second file whose header claims an already-seen sequence (e.g. a
  // botched copy-restore): the lexicographically-first name wins, the
  // duplicate is counted and ignored, and the replay is unchanged.
  std::string seg1;
  ASSERT_TRUE(
      PosixEnv()->ReadFile(dir + "/" + SegmentFileName(1), &seg1).ok());
  {
    std::ofstream dup(dir + "/" + SegmentFileName(99), std::ios::binary);
    dup.write(seg1.data(), static_cast<std::streamsize>(seg1.size()));
  }
  WalScanStats stats;
  size_t delivered = 0;
  ASSERT_TRUE(ScanWal(PosixEnv(), dir, options, WalPosition{},
                      [&](const WalFrame&) { ++delivered; }, &stats)
                  .ok());
  EXPECT_EQ(stats.segments_duplicate_seq, 1u);
  EXPECT_EQ(delivered, clean.frames_valid);
  EXPECT_EQ(stats.last_seq, clean.last_seq);
}

TEST(WalTest, CrcValidFrameWithImpossibleTimestampIsRejected) {
  const std::string dir = MakeTempDir();
  ASSERT_TRUE(PosixEnv()->CreateDirs(dir).ok());
  WalOptions options;

  // Hand-craft a segment: header, one valid frame at sec 1000, then a
  // CRC-valid frame dated ten days later — bytes that checksum are not
  // enough to be believed.
  std::string file;
  {
    codec::Writer w(&file);
    file.append("PSQLWAL1", 8);
    w.U32(1);  // version
    w.U64(1);  // seq
    w.U32(Crc32c(file.data(), file.size()));
  }
  WalFrame good;
  good.kind = FrameKind::kRecordBatch;
  good.records = {Rec(1'000'000, 1)};
  file += WrapFrame(EncodeFramePayload(good));
  WalFrame late;
  late.kind = FrameKind::kRecordBatch;
  late.records = {Rec(1'000'000 + 10LL * 24 * 3600 * 1000, 2)};
  file += WrapFrame(EncodeFramePayload(late));
  {
    std::ofstream f(dir + "/" + SegmentFileName(1), std::ios::binary);
    f.write(file.data(), static_cast<std::streamsize>(file.size()));
  }

  WalScanStats stats;
  std::vector<uint64_t> seen;
  ASSERT_TRUE(ScanWal(PosixEnv(), dir, options, WalPosition{},
                      [&](const WalFrame& f) {
                        for (const auto& r : f.records) seen.push_back(r.sql_id);
                      },
                      &stats)
                  .ok());
  EXPECT_EQ(stats.frames_valid, 1u);
  EXPECT_EQ(stats.frames_time_rejected, 1u);
  EXPECT_TRUE(stats.stopped_early);
  EXPECT_EQ(seen, (std::vector<uint64_t>{1}));
}

TEST(WalTest, OverflowingTimestampIsRejectedBeforeArithmetic) {
  const std::string dir = MakeTempDir();
  ASSERT_TRUE(PosixEnv()->CreateDirs(dir).ok());
  WalOptions options;

  // First frame of the segment is a CRC-valid sample claiming a second
  // that cannot be multiplied into milliseconds without signed overflow.
  // As the segment's first timestamped frame it sees no range check
  // against a prior frame — the bounds check itself must reject it.
  std::string file;
  {
    codec::Writer w(&file);
    file.append("PSQLWAL1", 8);
    w.U32(1);  // version
    w.U64(1);  // seq
    w.U32(Crc32c(file.data(), file.size()));
  }
  WalFrame huge;
  huge.kind = FrameKind::kSample;
  huge.sample = Sample(std::numeric_limits<int64_t>::max() / 1000 + 1, 1.0);
  file += WrapFrame(EncodeFramePayload(huge));
  WalFrame good;
  good.kind = FrameKind::kSample;
  good.sample = Sample(1000, 4.0);
  file += WrapFrame(EncodeFramePayload(good));
  {
    std::ofstream f(dir + "/" + SegmentFileName(1), std::ios::binary);
    f.write(file.data(), static_cast<std::streamsize>(file.size()));
  }

  WalScanStats stats;
  size_t delivered = 0;
  ASSERT_TRUE(ScanWal(PosixEnv(), dir, options, WalPosition{},
                      [&](const WalFrame&) { ++delivered; }, &stats)
                  .ok());
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(stats.frames_valid, 0u);
  EXPECT_EQ(stats.frames_time_rejected, 1u);
  EXPECT_TRUE(stats.stopped_early);

  // A repair event whose double timestamp is outside int64 range is
  // equally impossible: rejected before the cast, never delivered.
  const std::string dir2 = MakeTempDir();
  ASSERT_TRUE(PosixEnv()->CreateDirs(dir2).ok());
  std::string file2;
  {
    codec::Writer w(&file2);
    file2.append("PSQLWAL1", 8);
    w.U32(1);  // version
    w.U64(1);  // seq
    w.U32(Crc32c(file2.data(), file2.size()));
  }
  file2 += WrapFrame(EncodeFramePayload(good));
  WalFrame event;
  event.kind = FrameKind::kRepairEvent;
  event.event.time_ms = 1e300;
  event.event.kind = repair::RepairEventKind::kAttempt;
  file2 += WrapFrame(EncodeFramePayload(event));
  {
    std::ofstream f(dir2 + "/" + SegmentFileName(1), std::ios::binary);
    f.write(file2.data(), static_cast<std::streamsize>(file2.size()));
  }
  WalScanStats stats2;
  ASSERT_TRUE(ScanWal(PosixEnv(), dir2, options, WalPosition{},
                      [](const WalFrame&) {}, &stats2)
                  .ok());
  EXPECT_EQ(stats2.frames_valid, 1u);
  EXPECT_EQ(stats2.frames_time_rejected, 1u);
}

TEST(WalTest, TornHeaderLeftoverIsTruncatedOnReopenNotPoisoned) {
  const std::string dir = MakeTempDir();
  WalOptions options;
  auto writer = WalWriter::Open(PosixEnv(), dir, options, 1);
  ASSERT_TRUE(writer.ok());
  for (int64_t sec = 1000; sec < 1005; ++sec) {
    ASSERT_TRUE((*writer)->AppendSample(Sample(sec, 4.0)).ok());
  }
  ASSERT_TRUE((*writer)->Close().ok());

  // kill -9 mid-header: segment 2 exists on disk with a torn header.
  {
    std::ofstream f(dir + "/" + SegmentFileName(2), std::ios::binary);
    f.write("PSQL", 4);
  }
  WalScanStats first;
  ASSERT_TRUE(ScanWal(PosixEnv(), dir, options, WalPosition{},
                      [](const WalFrame&) {}, &first)
                  .ok());
  EXPECT_EQ(first.frames_valid, 5u);
  EXPECT_EQ(first.segments_invalid_header, 1u);
  EXPECT_EQ(first.last_seq, 1u);

  // The next incarnation reopens wal-2: opening truncates the garbage, so
  // its header lands at offset 0 instead of after it — the segment must
  // not be poisoned and the stream must stay contiguous.
  auto resumed = WalWriter::Open(PosixEnv(), dir, options, first.last_seq + 1);
  ASSERT_TRUE(resumed.ok());
  for (int64_t sec = 1005; sec < 1010; ++sec) {
    ASSERT_TRUE((*resumed)->AppendSample(Sample(sec, 4.0)).ok());
  }
  ASSERT_TRUE((*resumed)->Close().ok());

  WalScanStats second;
  std::vector<int64_t> secs;
  ASSERT_TRUE(ScanWal(PosixEnv(), dir, options, WalPosition{},
                      [&](const WalFrame& f) { secs.push_back(f.sample.sec); },
                      &second)
                  .ok());
  EXPECT_EQ(second.frames_valid, 10u);
  EXPECT_EQ(second.segments_invalid_header, 0u);
  EXPECT_FALSE(second.seq_gap);
  EXPECT_EQ(second.last_seq, 2u);
  ASSERT_EQ(secs.size(), 10u);
  for (size_t i = 1; i < secs.size(); ++i) EXPECT_GT(secs[i], secs[i - 1]);
}

TEST(WalTest, CheckpointAtSegmentEndKeepsLsnSegment) {
  const std::string dir = MakeTempDir();
  WalOptions options;
  options.segment_bytes = 256;
  options.fsync = FsyncPolicy::kNever;
  auto writer = WalWriter::Open(PosixEnv(), dir, options, 1);
  ASSERT_TRUE(writer.ok());
  for (int64_t sec = 3000; sec < 3030; ++sec) {
    ASSERT_TRUE((*writer)->AppendSample(Sample(sec, 5.0)).ok());
  }
  ASSERT_TRUE((*writer)->Close().ok());
  const std::vector<SealedSegment> sealed = (*writer)->sealed();
  ASSERT_GE(sealed.size(), 3u) << "fixture needs several sealed segments";

  // A checkpoint taken exactly at a sealed segment's end: its LSN points
  // one past that segment's last frame. Retention must keep the LSN's own
  // segment, or a recovery from this checkpoint finds its start below the
  // oldest segment on disk and falsely reports a sequence gap.
  const SealedSegment& boundary = sealed[1];
  const WalPosition lsn{boundary.seq, boundary.size};
  const size_t deleted = (*writer)->DeleteSealedSegments(
      std::numeric_limits<int64_t>::max(), lsn, PosixEnv());
  EXPECT_EQ(deleted, 1u);  // only segments strictly below the LSN's
  EXPECT_TRUE(PosixEnv()->FileExists(boundary.path));

  WalScanStats stats;
  size_t delivered = 0;
  ASSERT_TRUE(ScanWal(PosixEnv(), dir, options, lsn,
                      [&](const WalFrame&) { ++delivered; }, &stats)
                  .ok());
  EXPECT_FALSE(stats.seq_gap);
  EXPECT_FALSE(stats.stopped_early);
  EXPECT_GT(delivered, 0u);
  EXPECT_LT(delivered, 30u);
}

// --- Checkpoints -----------------------------------------------------------

CheckpointData SmallCheckpoint() {
  CheckpointData data;
  data.lsn = WalPosition{3, 4096};
  data.service.processed_any = true;
  data.service.last_processed_sec = 1234;
  data.service.seconds_processed = 42;
  data.service.archive_records = {Rec(1'200'000, 1), Rec(1'201'000, 2)};
  repair::RepairEvent event;
  event.time_ms = 1'234'000.0;
  event.kind = repair::RepairEventKind::kApplied;
  event.action = repair::ActionType::kThrottle;
  event.sql_id = 9;
  data.audit.push_back(event);
  return data;
}

TEST(CheckpointTest, BodyRoundTrip) {
  const CheckpointData data = SmallCheckpoint();
  auto decoded = DecodeCheckpointBody(EncodeCheckpointBody(data));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->lsn, data.lsn);
  EXPECT_EQ(decoded->service.last_processed_sec, 1234);
  ASSERT_EQ(decoded->service.archive_records.size(), 2u);
  EXPECT_EQ(decoded->service.archive_records[1].sql_id, 2u);
  ASSERT_EQ(decoded->audit.size(), 1u);
  EXPECT_EQ(decoded->audit[0].kind, repair::RepairEventKind::kApplied);
}

TEST(CheckpointTest, NewestValidWinsAndCorruptNewestFallsBack) {
  const std::string dir = MakeTempDir();
  Env* env = PosixEnv();
  EXPECT_EQ(LoadLatestCheckpoint(env, dir).status().code(),
            StatusCode::kNotFound);

  CheckpointData old_data = SmallCheckpoint();
  old_data.service.last_processed_sec = 1000;
  ASSERT_TRUE(WriteCheckpoint(env, dir, 3, old_data).ok());
  CheckpointData new_data = SmallCheckpoint();
  new_data.service.last_processed_sec = 2000;
  ASSERT_TRUE(WriteCheckpoint(env, dir, 4, new_data).ok());

  auto loaded = LoadLatestCheckpoint(env, dir);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->counter, 4u);
  EXPECT_EQ(loaded->data.service.last_processed_sec, 2000);
  EXPECT_EQ(loaded->corrupt_skipped, 0u);

  // Flip a byte in the newest file: recovery must fall back to counter 3,
  // counting the skip, and housekeeping must delete the corrupt sibling —
  // not the good fallback.
  const std::string newest = dir + "/" + CheckpointFileName(4);
  std::string bytes;
  ASSERT_TRUE(env->ReadFile(newest, &bytes).ok());
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
  {
    std::ofstream f(newest, std::ios::binary | std::ios::trunc);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto fallback = LoadLatestCheckpoint(env, dir);
  ASSERT_TRUE(fallback.ok());
  EXPECT_EQ(fallback->counter, 3u);
  EXPECT_EQ(fallback->data.service.last_processed_sec, 1000);
  EXPECT_EQ(fallback->corrupt_skipped, 1u);

  EXPECT_EQ(DeleteOtherCheckpoints(env, dir, 3), 1u);
  EXPECT_FALSE(env->FileExists(newest));
  auto survivor = LoadLatestCheckpoint(env, dir);
  ASSERT_TRUE(survivor.ok());
  EXPECT_EQ(survivor->counter, 3u);
}

TEST(CheckpointTest, PruneKeepsNewestAndSweepsTempFiles) {
  const std::string dir = MakeTempDir();
  Env* env = PosixEnv();
  for (uint64_t c = 1; c <= 4; ++c) {
    ASSERT_TRUE(WriteCheckpoint(env, dir, c, SmallCheckpoint()).ok());
  }
  {
    std::ofstream f(dir + "/" + CheckpointFileName(9) + ".tmp",
                    std::ios::binary);
    f << "interrupted";
  }
  EXPECT_EQ(PruneCheckpoints(env, dir, 2), 3u);  // 1, 2, and the .tmp
  EXPECT_FALSE(env->FileExists(dir + "/" + CheckpointFileName(1)));
  EXPECT_FALSE(env->FileExists(dir + "/" + CheckpointFileName(2)));
  EXPECT_TRUE(env->FileExists(dir + "/" + CheckpointFileName(3)));
  EXPECT_TRUE(env->FileExists(dir + "/" + CheckpointFileName(4)));
}

// --- Durable service: graceful restart ------------------------------------

TEST(DurableServiceTest, UninterruptedRunMatchesReplayFingerprint) {
  const online::ReplayLog log = SyntheticIncident();
  const std::string dir = MakeTempDir();
  auto service = DurableOnlineService::Open(DurableOpts(), dir);
  ASSERT_TRUE(service.ok());
  RegisterCatalog(service->get());
  Feed(service->get(), log, 0, 1'000'000);
  ASSERT_TRUE((*service)->Stop().ok());
  ASSERT_FALSE((*service)->outcomes().empty()) << "the incident must trigger";
  EXPECT_EQ((*service)->Fingerprint(), ReferenceFingerprint(log));
}

TEST(DurableServiceTest, GracefulRestartMidStreamIsByteIdentical) {
  const online::ReplayLog log = SyntheticIncident();
  const int64_t split = log.samples[log.samples.size() / 2].sec + 1;
  const std::string dir = MakeTempDir();
  {
    auto service = DurableOnlineService::Open(DurableOpts(), dir);
    ASSERT_TRUE(service.ok());
    RegisterCatalog(service->get());
    Feed(service->get(), log, 0, split);
    ASSERT_TRUE((*service)->Stop().ok());
  }
  auto resumed = DurableOnlineService::Open(DurableOpts(), dir);
  ASSERT_TRUE(resumed.ok());
  EXPECT_TRUE((*resumed)->recovery().checkpoint_loaded);
  Feed(resumed->get(), log, split, 1'000'000);
  ASSERT_TRUE((*resumed)->Stop().ok());
  ASSERT_FALSE((*resumed)->outcomes().empty());
  EXPECT_EQ((*resumed)->Fingerprint(), ReferenceFingerprint(log));

  // Catalog survived: templates were journaled, not just kept in memory.
  EXPECT_NE((*resumed)->archive()->FindTemplate(9), nullptr);
}

// --- Durable service: recovery edge cases (satellite 3) --------------------

TEST(DurableServiceTest, EmptyDataDirStartsClean) {
  const std::string dir = MakeTempDir();
  auto service = DurableOnlineService::Open(DurableOpts(), dir);
  ASSERT_TRUE(service.ok());
  EXPECT_FALSE((*service)->recovery().checkpoint_loaded);
  EXPECT_EQ((*service)->recovery().wal.frames_valid, 0u);
  EXPECT_FALSE((*service)->recovery().wal.seq_gap);
  Feed(service->get(), SyntheticIncident(), 0, 100'010);
  ASSERT_TRUE((*service)->Stop().ok());
}

TEST(DurableServiceTest, CheckpointOnlyRecoveryRestoresState) {
  const online::ReplayLog log = SyntheticIncident();
  const std::string dir = MakeTempDir();
  {
    auto service = DurableOnlineService::Open(DurableOpts(), dir);
    ASSERT_TRUE(service.ok());
    RegisterCatalog(service->get());
    Feed(service->get(), log, 0, 1'000'000);
    ASSERT_TRUE((*service)->Stop().ok());
  }
  // Remove every WAL segment: Stop()'s final checkpoint alone must carry
  // the full state.
  auto names = PosixEnv()->ListDir(dir);
  ASSERT_TRUE(names.ok());
  for (const std::string& name : *names) {
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".log") == 0) {
      ASSERT_TRUE(PosixEnv()->DeleteFile(dir + "/" + name).ok());
    }
  }
  auto resumed = DurableOnlineService::Open(DurableOpts(), dir);
  ASSERT_TRUE(resumed.ok());
  EXPECT_TRUE((*resumed)->recovery().checkpoint_loaded);
  EXPECT_EQ((*resumed)->recovery().wal.frames_valid, 0u);
  ASSERT_TRUE((*resumed)->Stop().ok());
  EXPECT_EQ((*resumed)->Fingerprint(), ReferenceFingerprint(log));
}

TEST(DurableServiceTest, WalOnlyRecoveryReplaysEverything) {
  const online::ReplayLog log = SyntheticIncident();
  const std::string dir = MakeTempDir();
  {
    DurableServiceOptions options = DurableOpts();
    options.checkpoint_every_sec = 0;  // no periodic checkpoints
    auto service = DurableOnlineService::Open(options, dir);
    ASSERT_TRUE(service.ok());
    RegisterCatalog(service->get());
    Feed(service->get(), log, 0, 1'000'000);
    ASSERT_TRUE((*service)->Stop().ok());
  }
  // Remove every checkpoint: recovery must rebuild purely from the WAL.
  auto names = PosixEnv()->ListDir(dir);
  ASSERT_TRUE(names.ok());
  for (const std::string& name : *names) {
    if (name.size() > 5 && name.compare(name.size() - 5, 5, ".ckpt") == 0) {
      ASSERT_TRUE(PosixEnv()->DeleteFile(dir + "/" + name).ok());
    }
  }
  auto resumed = DurableOnlineService::Open(DurableOpts(), dir);
  ASSERT_TRUE(resumed.ok());
  EXPECT_FALSE((*resumed)->recovery().checkpoint_loaded);
  EXPECT_GT((*resumed)->recovery().wal.samples, 0u);
  EXPECT_FALSE((*resumed)->recovery().wal.seq_gap);
  ASSERT_TRUE((*resumed)->Stop().ok());
  EXPECT_EQ((*resumed)->Fingerprint(), ReferenceFingerprint(log));
}

TEST(DurableServiceTest, DuplicateSegmentSequenceIsCountedOnRecovery) {
  const online::ReplayLog log = SyntheticIncident();
  const std::string dir = MakeTempDir();
  {
    auto service = DurableOnlineService::Open(DurableOpts(), dir);
    ASSERT_TRUE(service.ok());
    RegisterCatalog(service->get());
    Feed(service->get(), log, 0, 1'000'000);
    ASSERT_TRUE((*service)->Stop().ok());
  }
  std::string seg1;
  ASSERT_TRUE(
      PosixEnv()->ReadFile(dir + "/" + SegmentFileName(1), &seg1).ok());
  {
    std::ofstream dup(dir + "/" + SegmentFileName(77), std::ios::binary);
    dup.write(seg1.data(), static_cast<std::streamsize>(seg1.size()));
  }
  auto resumed = DurableOnlineService::Open(DurableOpts(), dir);
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ((*resumed)->recovery().wal.segments_duplicate_seq, 1u);
  ASSERT_TRUE((*resumed)->Stop().ok());
  EXPECT_EQ((*resumed)->Fingerprint(), ReferenceFingerprint(log));
}

// --- Storage fault injection (always detected, never silently ingested) ---

TEST(StorageFaultTest, SeverityZeroIsAPassThrough) {
  const online::ReplayLog log = SyntheticIncident();
  const std::string dir = MakeTempDir();
  faults::StorageFaultPlan plan;  // severity 0
  plan.seed = 7;
  faults::StorageFaultInjector env(PosixEnv(), plan);
  {
    auto service = DurableOnlineService::Open(DurableOpts(), dir, &env);
    ASSERT_TRUE(service.ok());
    RegisterCatalog(service->get());
    Feed(service->get(), log, 0, 1'000'000);
    ASSERT_TRUE((*service)->Stop().ok());
    EXPECT_EQ((*service)->Fingerprint(), ReferenceFingerprint(log));
  }
  EXPECT_EQ(env.stats().writes_torn, 0u);
  EXPECT_EQ(env.stats().fsyncs_failed, 0u);
  EXPECT_EQ(env.stats().reads_bit_flipped, 0u);
}

TEST(StorageFaultTest, TornWritesAndFsyncFailuresDegradeButKeepStreaming) {
  const online::ReplayLog log = SyntheticIncident();
  const std::string dir = MakeTempDir();
  faults::StorageFaultPlan plan;
  plan.seed = 11;
  plan.severity = 0.6;
  plan.bit_flip_rate = 0;  // write-path faults only in this test
  plan.short_read_rate = 0;
  faults::StorageFaultInjector env(PosixEnv(), plan);
  auto service = DurableOnlineService::Open(DurableOpts(), dir, &env);
  ASSERT_TRUE(service.ok());
  RegisterCatalog(service->get());
  Feed(service->get(), log, 0, 1'000'000);
  (*service)->Stop();
  EXPECT_GT(env.stats().writes_torn + env.stats().fsyncs_failed, 0u)
      << "fault plan did not fire";
  // Write-path faults degrade durability, counted — they never kill the
  // stream. (Injector totals include checkpoint temp files, so the WAL's
  // own counters are a subset.)
  const DurableStats stats = (*service)->stats();
  EXPECT_LE(stats.wal.fsync_failures, env.stats().fsyncs_failed);
  EXPECT_GT(stats.service.seconds_processed, 0);
  // A recovery over what the torn disk retained must succeed, and any
  // data the faults destroyed must be *flagged* — a seq gap is only ever
  // reported alongside the corruption that caused it, never silently.
  auto resumed = DurableOnlineService::Open(DurableOpts(), dir);
  ASSERT_TRUE(resumed.ok());
  const WalScanStats& wal = (*resumed)->recovery().wal;
  if (wal.seq_gap) {
    EXPECT_GT(wal.segments_invalid_header + wal.frames_corrupt +
                  wal.frames_malformed,
              0u);
  }
  ASSERT_TRUE((*resumed)->Stop().ok());
}

TEST(StorageFaultTest, ReadPathBitFlipsAreAlwaysDetected) {
  const online::ReplayLog log = SyntheticIncident();
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const std::string dir = MakeTempDir();
    {
      auto service = DurableOnlineService::Open(DurableOpts(), dir);
      ASSERT_TRUE(service.ok());
      RegisterCatalog(service->get());
      Feed(service->get(), log, 0, 1'000'000);
      ASSERT_TRUE((*service)->Stop().ok());
    }
    faults::StorageFaultPlan plan;
    plan.seed = seed;
    plan.severity = 1.0;
    plan.bit_flip_rate = 1.0;  // every read flips one random bit
    plan.torn_write_rate = 0;
    plan.short_read_rate = 0;
    plan.fsync_failure_rate = 0;
    faults::StorageFaultInjector env(PosixEnv(), plan);
    auto resumed = DurableOnlineService::Open(DurableOpts(), dir, &env);
    ASSERT_TRUE(resumed.ok());
    ASSERT_GT(env.stats().reads_bit_flipped, 0u);
    const RecoveryStats& recovery = (*resumed)->recovery();
    // Every flipped file must have been caught by a CRC or header check —
    // a corrupt checkpoint skipped, a corrupt frame counted, or an invalid
    // segment header. Nothing corrupt is ever silently ingested.
    EXPECT_GT(recovery.checkpoints_corrupt_skipped +
                  recovery.wal.frames_corrupt +
                  recovery.wal.frames_malformed +
                  recovery.wal.frames_time_rejected +
                  recovery.wal.segments_invalid_header,
              0u)
        << "seed " << seed;
    (*resumed)->Stop();
  }
}

// --- Forecasting-detector state through the durable path -------------------

/// A creep only the EWMA member's CUSUM accumulates: flat baseline, then
/// +0.02 sessions/sec. Records trickle in so a confirmed trigger has
/// something to diagnose.
online::ReplayLog DriftIncident() {
  online::ReplayLog log;
  const int64_t t0 = 100'000;
  for (int64_t i = 0; i < 1900; ++i) {
    const int64_t sec = t0 + i;
    uint64_t state = static_cast<uint64_t>(sec) * 2654435761ULL + 17;
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const double noise =
        static_cast<double>(state % 2000) / 1000.0 - 1.0;
    const double ramp = i < 700 ? 0.0 : 0.02 * static_cast<double>(i - 700);
    log.samples.push_back(Sample(sec, 8.0 + ramp + 0.4 * noise));
    const int count = 5 + (i < 700 ? 0 : static_cast<int>((i - 700) / 120));
    for (int j = 0; j < count; ++j) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      QueryLogRecord r;
      r.sql_id = j < 5 ? 1 + (state >> 33) % 4 : 9;
      r.arrival_ms = sec * 1000 + static_cast<int64_t>((state >> 13) % 1000);
      r.response_ms =
          j < 5 ? 2.0 : 90.0 + static_cast<double>(i - 700) / 8.0;
      r.examined_rows = j < 5 ? 20 : 200'000;
      log.records.push_back(r);
    }
  }
  return log;
}

TEST(CheckpointTest, ForecasterSnapshotFieldsRoundTripThroughCodec) {
  // Build live mid-excursion forecaster state (partial CUSUM block, anchor
  // set, evidence accumulated) and require every field to survive the
  // checkpoint codec — a dropped field would silently fork the post-
  // recovery stream.
  online::OnlineDetectorOptions detector_options;
  detector_options.forecasters = detect::DefaultEnsembleForecasters();
  online::OnlineAnomalyDetector detector(detector_options);
  const online::ReplayLog log = DriftIncident();
  // Stop mid-ramp: CUSUM evidence exists but no trigger has fired yet.
  for (size_t i = 0; i < 1300; ++i) {
    detector.Observe(log.samples[i].sec, log.samples[i].active_session);
  }

  CheckpointData data = SmallCheckpoint();
  data.service.detector = detector.ExportState();
  auto decoded = DecodeCheckpointBody(EncodeCheckpointBody(data));
  ASSERT_TRUE(decoded.ok());

  const auto& want = data.service.detector.ensemble;
  const auto& got = decoded->service.detector.ensemble;
  ASSERT_EQ(want.forecasters.size(), got.forecasters.size());
  ASSERT_FALSE(want.forecasters.empty());
  bool any_evidence = false;
  for (size_t i = 0; i < want.forecasters.size(); ++i) {
    const detect::ForecastSnapshot& a = want.forecasters[i];
    const detect::ForecastSnapshot& b = got.forecasters[i];
    EXPECT_EQ(a.method, b.method);
    EXPECT_EQ(a.count, b.count);
    EXPECT_EQ(a.cusum, b.cusum);
    EXPECT_EQ(a.cusum_start, b.cusum_start);
    EXPECT_EQ(a.cusum_anchor, b.cusum_anchor);
    EXPECT_EQ(a.cusum_anchor_set, b.cusum_anchor_set);
    EXPECT_EQ(a.block_sum, b.block_sum);
    EXPECT_EQ(a.block_n, b.block_n);
    EXPECT_EQ(a.in_run, b.in_run);
    EXPECT_EQ(a.drift_run, b.drift_run);
    EXPECT_EQ(a.model, b.model);
    if (a.cusum > 0.0 || a.block_n > 0) any_evidence = true;
  }
  EXPECT_TRUE(any_evidence) << "mid-ramp state should carry CUSUM evidence";

  // The restored state continues the stream bit-identically.
  online::OnlineAnomalyDetector resumed(detector_options);
  resumed.ImportState(decoded->service.detector);
  for (size_t i = 1300; i < log.samples.size(); ++i) {
    const auto a =
        detector.Observe(log.samples[i].sec, log.samples[i].active_session);
    const auto b =
        resumed.Observe(log.samples[i].sec, log.samples[i].active_session);
    ASSERT_EQ(a.has_value(), b.has_value());
    if (a) {
      EXPECT_EQ(a->onset_sec, b->onset_sec);
      EXPECT_EQ(a->source, b->source);
    }
  }
  EXPECT_GE(detector.stats().triggers, 1u) << "the drift must confirm";
}

TEST(DurableServiceTest, RestartMidDriftResumesForecastersByteIdentically) {
  // Kill the service mid-ramp — after CUSUM evidence accumulated, before
  // the drift confirms — and require the recovered run to finish the
  // incident exactly like an uninterrupted replay, attributed to the
  // forecaster member. This is the durable-recovery contract for the new
  // detector state (block CUSUM progress included).
  const online::ReplayLog log = DriftIncident();
  // The drift confirms at ~sample 960 with this realization; stop at 900 —
  // CUSUM evidence accumulated, trigger still ahead.
  const int64_t split = log.samples[900].sec + 1;
  DurableServiceOptions options = DurableOpts();
  options.service.detector.forecasters = detect::DefaultEnsembleForecasters();
  const std::string dir = MakeTempDir();
  {
    auto service = DurableOnlineService::Open(options, dir);
    ASSERT_TRUE(service.ok());
    RegisterCatalog(service->get());
    Feed(service->get(), log, 0, split);
    EXPECT_TRUE((*service)->outcomes().empty()) << "must stop pre-trigger";
    ASSERT_TRUE((*service)->Stop().ok());
  }
  auto resumed = DurableOnlineService::Open(options, dir);
  ASSERT_TRUE(resumed.ok());
  EXPECT_TRUE((*resumed)->recovery().checkpoint_loaded);
  Feed(resumed->get(), log, split, 1'000'000);
  ASSERT_TRUE((*resumed)->Stop().ok());
  ASSERT_FALSE((*resumed)->outcomes().empty()) << "drift must trigger";
  EXPECT_EQ((*resumed)->outcomes()[0].trigger.source, "ewma");

  online::ReplayOptions reference;
  reference.service.detector.forecasters =
      detect::DefaultEnsembleForecasters();
  const std::string want =
      RunReplay(log, SyntheticCatalog(), reference).Fingerprint();
  EXPECT_EQ((*resumed)->Fingerprint(), want);
}

}  // namespace
}  // namespace pinsql::store
