#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "faults/net_faults.h"
#include "fleet/fleet_service.h"
#include "serve/server.h"
#include "util/json.h"

namespace pinsql::serve {
namespace {

/// Two-tenant serving stack: "victim" (instance 1) is well behaved,
/// "chaos" (instance 2) is the abusive tenant the chaos client plays.
struct Stack {
  std::unique_ptr<fleet::FleetService> fleet;
  std::unique_ptr<Server> server;

  Stack() = default;
  Stack(Stack&&) = default;
  Stack& operator=(Stack&&) = default;
  ~Stack() {
    if (server) server->Stop();
    if (fleet) fleet->Stop();
  }
};

Stack MakeStack(ServerOptions soptions) {
  Stack stack;
  fleet::FleetOptions foptions;
  stack.fleet = std::make_unique<fleet::FleetService>(
      std::vector<fleet::FleetInstanceSpec>{{1, 0}, {2, 0}}, foptions);
  TemplateCatalogEntry entry;
  entry.template_text = "SELECT * FROM t WHERE k = ?";
  entry.kind = sqltpl::StatementKind::kSelect;
  entry.tables = {"t"};
  for (uint64_t id = 1; id <= 9; ++id) {
    stack.fleet->RegisterTemplateFleetWide(id, entry);
  }
  stack.fleet->Start();

  TenantQuota victim;
  victim.records_per_sec = 1e6;
  victim.record_burst = 1e6;
  victim.bytes_per_sec = 1e9;
  victim.byte_burst = 1e9;
  victim.queue_capacity_batches = 10'000;
  victim.instances = {1};
  soptions.admission.tenants["victim"] = victim;
  TenantQuota chaos;
  chaos.records_per_sec = 500.0;  // the abusive tenant's real budget
  chaos.record_burst = 1000.0;
  chaos.bytes_per_sec = 256.0 * 1024;
  chaos.byte_burst = 512.0 * 1024;
  chaos.queue_capacity_batches = 16;
  chaos.instances = {2};
  soptions.admission.tenants["chaos"] = chaos;

  stack.server = std::make_unique<Server>(stack.fleet.get(), soptions);
  return stack;
}

faults::NetChaosOptions ChaosOptions(uint16_t port) {
  faults::NetChaosOptions options;
  options.port = port;
  options.tenant = "chaos";
  options.instance_id = 2;
  return options;
}

// --- Victim-side client helpers ------------------------------------------

int ConnectTo(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int RequestStatus(uint16_t port, const std::string& wire) {
  const int fd = ConnectTo(port);
  if (fd < 0) return -1;
  size_t off = 0;
  while (off < wire.size()) {
    const ssize_t n =
        ::send(fd, wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return -1;
    }
    off += static_cast<size_t>(n);
  }
  std::string buffer;
  char chunk[2048];
  while (buffer.find("\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  if (buffer.size() < 12 || buffer.compare(0, 5, "HTTP/") != 0) return -1;
  return std::atoi(buffer.c_str() + 9);
}

std::string VictimIngest(int64_t sec, int records) {
  std::string body = "{\"instance\":1,\"records\":[";
  for (int i = 0; i < records; ++i) {
    if (i > 0) body += ',';
    body += "{\"arrival_ms\":" + std::to_string(sec * 1000 + i) +
            ",\"sql_id\":" + std::to_string(1 + i % 4) +
            ",\"response_ms\":2.0,\"examined_rows\":10}";
  }
  body += "],\"samples\":[{\"sec\":" + std::to_string(sec) +
          ",\"active_session\":4.0}]}";
  return "POST /v1/ingest HTTP/1.1\r\nX-Pinsql-Tenant: victim\r\n"
         "Content-Length: " +
         std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" + body;
}

// --- Tests ---------------------------------------------------------------

TEST(ServeChaosTest, GarbageFramesGetClean4xxAndBoundedState) {
  ServerOptions soptions;
  // Frames that happen to parse as an incomplete request sit until the
  // read deadline; keep it tight so 32 frames stay fast.
  soptions.read_deadline_ms = 300;
  Stack stack = MakeStack(soptions);
  ASSERT_TRUE(stack.server->Start().ok());

  faults::NetChaosOptions coptions = ChaosOptions(stack.server->port());
  coptions.garbage_frames = 32;
  faults::NetChaosClient client(coptions);
  const faults::NetChaosStats stats = client.RunGarbage();
  EXPECT_EQ(stats.connects_failed, 0);
  EXPECT_EQ(stats.garbage_sent, 32);
  // The server survived and still answers cleanly.
  EXPECT_EQ(RequestStatus(stack.server->port(),
                          "GET /v1/healthz HTTP/1.1\r\n\r\n"),
            200);
  EXPECT_GT(stack.server->stats().parse_errors, 0u);
  EXPECT_EQ(stack.server->stats().ingest_accepted, 0u);
}

TEST(ServeChaosTest, MidBodyDisconnectsLeakNothing) {
  ServerOptions soptions;
  Stack stack = MakeStack(soptions);
  ASSERT_TRUE(stack.server->Start().ok());

  faults::NetChaosOptions coptions = ChaosOptions(stack.server->port());
  coptions.mid_body_disconnects = 16;
  faults::NetChaosClient client(coptions);
  const faults::NetChaosStats stats = client.RunMidBodyDisconnect();
  EXPECT_EQ(stats.mid_body_sent, 16);

  // No half request was ever handed to the ingest path, and the
  // connections were reclaimed.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(stack.server->stats().ingest_requests, 0u);
  EXPECT_EQ(RequestStatus(stack.server->port(),
                          "GET /v1/healthz HTTP/1.1\r\n\r\n"),
            200);
}

TEST(ServeChaosTest, SlowLorisConnectionsAreReaped) {
  ServerOptions soptions;
  soptions.read_deadline_ms = 400;  // tight so the test stays fast
  soptions.max_connections = 8;
  Stack stack = MakeStack(soptions);
  ASSERT_TRUE(stack.server->Start().ok());

  faults::NetChaosOptions coptions = ChaosOptions(stack.server->port());
  coptions.slow_loris_conns = 3;
  coptions.slow_loris_bytes = 8;
  coptions.slow_loris_interval_ms = 100;
  coptions.slow_loris_wait_ms = 5000;
  faults::NetChaosClient client(coptions);
  const faults::NetChaosStats stats = client.RunSlowLoris();
  // Every trickling connection was closed by the server's read deadline,
  // not left pinning a slot.
  EXPECT_EQ(stats.loris_survived, 0);
  EXPECT_EQ(stats.loris_closed_by_server, 3);
  EXPECT_GE(stack.server->stats().connections_closed_read_deadline, 3u);
  // The table has free slots again.
  EXPECT_EQ(RequestStatus(stack.server->port(),
                          "GET /v1/healthz HTTP/1.1\r\n\r\n"),
            200);
}

TEST(ServeChaosTest, TenantFloodIsContainedAndVictimKeepsGoodput) {
  ServerOptions soptions;
  Stack stack = MakeStack(soptions);
  ASSERT_TRUE(stack.server->Start().ok());
  const uint16_t port = stack.server->port();

  // The abusive tenant floods from a background thread while the victim
  // streams at its modest steady rate.
  faults::NetChaosOptions coptions = ChaosOptions(port);
  coptions.flood_requests = 40;
  coptions.flood_records_per_request = 500;  // 20k records vs a 500/s budget
  std::atomic<bool> flood_done{false};
  faults::NetChaosStats flood_stats;
  std::thread flooder([&]() {
    faults::NetChaosClient client(coptions);
    flood_stats = client.RunTenantFlood();
    flood_done.store(true);
  });

  int victim_sent = 0;
  int victim_accepted = 0;
  for (int64_t sec = 700'000; sec < 700'040; ++sec) {
    ++victim_sent;
    if (RequestStatus(port, VictimIngest(sec, 10)) == 202) {
      ++victim_accepted;
    }
  }
  flooder.join();

  // The flood was mostly rejected (429/503 with Retry-After) and the
  // rejections carried backoff guidance.
  EXPECT_EQ(flood_stats.flood_sent, 40);
  EXPECT_GT(flood_stats.flood_rejected, flood_stats.flood_accepted);
  EXPECT_GT(flood_stats.flood_retry_after, 0);
  // The victim's goodput is essentially untouched (≥ 90%).
  EXPECT_GE(victim_accepted * 10, victim_sent * 9);
  // Reports stayed reachable throughout and after.
  EXPECT_EQ(RequestStatus(port,
                          "GET /v1/reports HTTP/1.1\r\n"
                          "X-Pinsql-Tenant: victim\r\n\r\n"),
            200);
  // Per-tenant accounting separates the two cleanly.
  const auto tenants = stack.server->tenant_stats();
  EXPECT_EQ(tenants.at("victim").dropped_rate_limited +
                tenants.at("victim").dropped_shed,
            0u);
  EXPECT_GT(tenants.at("chaos").dropped_rate_limited +
                tenants.at("chaos").dropped_over_quota +
                tenants.at("chaos").dropped_shed,
            0u);
}

TEST(ServeChaosTest, FullCampaignLeavesAConsistentServer) {
  ServerOptions soptions;
  soptions.read_deadline_ms = 500;
  Stack stack = MakeStack(soptions);
  ASSERT_TRUE(stack.server->Start().ok());
  const uint16_t port = stack.server->port();

  faults::NetChaosOptions coptions = ChaosOptions(port);
  coptions.slow_loris_conns = 2;
  coptions.slow_loris_bytes = 6;
  coptions.slow_loris_interval_ms = 80;
  coptions.slow_loris_wait_ms = 4000;
  coptions.mid_body_disconnects = 6;
  coptions.garbage_frames = 12;
  coptions.flood_requests = 12;
  coptions.flood_records_per_request = 300;
  faults::NetChaosClient client(coptions);
  const faults::NetChaosStats stats = client.RunAll();
  EXPECT_EQ(stats.loris_survived, 0);

  // After the whole campaign: health is served, metrics parse, stop is
  // clean (the ASan/TSan jobs assert the absence of leaks/races here).
  EXPECT_EQ(RequestStatus(port, "GET /v1/healthz HTTP/1.1\r\n\r\n"), 200);
  stack.server->Stop();
  stack.fleet->Stop();
}

}  // namespace
}  // namespace pinsql::serve
