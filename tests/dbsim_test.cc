#include <gtest/gtest.h>

#include "dbsim/closed_loop.h"
#include "dbsim/engine.h"
#include "dbsim/lock_manager.h"
#include "dbsim/monitor.h"
#include "util/rng.h"

namespace pinsql::dbsim {
namespace {

// ------------------------------------------------------------ Lock keys

TEST(LockKeyTest, MdlAndRowKeysAreDisjoint) {
  const uint64_t mdl = MakeMdlKey(5);
  const uint64_t row = MakeRowKey(5, 0);
  EXPECT_NE(mdl, row);
  EXPECT_TRUE(IsMdlKey(mdl));
  EXPECT_FALSE(IsMdlKey(row));
  EXPECT_EQ(TableOfKey(mdl), 5u);
  EXPECT_EQ(TableOfKey(row), 5u);
}

TEST(LockKeyTest, RowGroupsDistinct) {
  EXPECT_NE(MakeRowKey(1, 0), MakeRowKey(1, 1));
  EXPECT_NE(MakeRowKey(1, 0), MakeRowKey(2, 0));
}

// ---------------------------------------------------------- LockManager

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager lm;
  const uint64_t key = MakeRowKey(1, 1);
  EXPECT_TRUE(lm.Request(1, key, LockMode::kShared));
  EXPECT_TRUE(lm.Request(2, key, LockMode::kShared));
  EXPECT_TRUE(lm.Holds(1, key));
  EXPECT_TRUE(lm.Holds(2, key));
}

TEST(LockManagerTest, ExclusiveBlocksShared) {
  LockManager lm;
  const uint64_t key = MakeRowKey(1, 1);
  EXPECT_TRUE(lm.Request(1, key, LockMode::kExclusive));
  EXPECT_FALSE(lm.Request(2, key, LockMode::kShared));
  EXPECT_EQ(lm.WaiterCount(key), 1u);
  std::vector<uint64_t> granted;
  lm.Release(1, key, &granted);
  EXPECT_EQ(granted, (std::vector<uint64_t>{2}));
  EXPECT_TRUE(lm.Holds(2, key));
}

TEST(LockManagerTest, SharedBlocksExclusive) {
  LockManager lm;
  const uint64_t key = MakeRowKey(1, 1);
  EXPECT_TRUE(lm.Request(1, key, LockMode::kShared));
  EXPECT_FALSE(lm.Request(2, key, LockMode::kExclusive));
  std::vector<uint64_t> granted;
  lm.Release(1, key, &granted);
  EXPECT_EQ(granted, (std::vector<uint64_t>{2}));
}

TEST(LockManagerTest, NoBargingPastQueuedExclusive) {
  // S held; X queued; a later S must NOT jump the queue (this is what
  // makes DDL pile-ups happen).
  LockManager lm;
  const uint64_t key = MakeMdlKey(1);
  EXPECT_TRUE(lm.Request(1, key, LockMode::kShared));
  EXPECT_FALSE(lm.Request(2, key, LockMode::kExclusive));
  EXPECT_FALSE(lm.Request(3, key, LockMode::kShared));
  EXPECT_EQ(lm.WaiterCount(key), 2u);
  std::vector<uint64_t> granted;
  lm.Release(1, key, &granted);
  // Only the exclusive head is granted.
  EXPECT_EQ(granted, (std::vector<uint64_t>{2}));
  granted.clear();
  lm.Release(2, key, &granted);
  EXPECT_EQ(granted, (std::vector<uint64_t>{3}));
}

TEST(LockManagerTest, ConsecutiveSharedGrantedTogether) {
  LockManager lm;
  const uint64_t key = MakeRowKey(1, 1);
  EXPECT_TRUE(lm.Request(1, key, LockMode::kExclusive));
  EXPECT_FALSE(lm.Request(2, key, LockMode::kShared));
  EXPECT_FALSE(lm.Request(3, key, LockMode::kShared));
  EXPECT_FALSE(lm.Request(4, key, LockMode::kExclusive));
  std::vector<uint64_t> granted;
  lm.Release(1, key, &granted);
  // Both shared waiters granted together; the exclusive one still waits.
  EXPECT_EQ(granted, (std::vector<uint64_t>{2, 3}));
  EXPECT_EQ(lm.WaiterCount(key), 1u);
}

TEST(LockManagerTest, CancelWaitRemovesWaiter) {
  LockManager lm;
  const uint64_t key = MakeRowKey(1, 1);
  EXPECT_TRUE(lm.Request(1, key, LockMode::kExclusive));
  EXPECT_FALSE(lm.Request(2, key, LockMode::kExclusive));
  std::vector<uint64_t> granted;
  EXPECT_TRUE(lm.CancelWait(2, key, &granted));
  EXPECT_TRUE(granted.empty());
  EXPECT_EQ(lm.WaiterCount(key), 0u);
  EXPECT_FALSE(lm.CancelWait(2, key, &granted));
}

TEST(LockManagerTest, CancelHeadUnblocksCompatibleFollowers) {
  LockManager lm;
  const uint64_t key = MakeRowKey(1, 1);
  EXPECT_TRUE(lm.Request(1, key, LockMode::kShared));
  EXPECT_FALSE(lm.Request(2, key, LockMode::kExclusive));
  EXPECT_FALSE(lm.Request(3, key, LockMode::kShared));
  std::vector<uint64_t> granted;
  // Cancelling the exclusive head lets the shared follower in immediately
  // (the original shared owner still holds the lock).
  EXPECT_TRUE(lm.CancelWait(2, key, &granted));
  EXPECT_EQ(granted, (std::vector<uint64_t>{3}));
}

TEST(LockManagerTest, StateIsCleanedUpWhenIdle) {
  LockManager lm;
  const uint64_t key = MakeRowKey(1, 1);
  lm.Request(1, key, LockMode::kExclusive);
  EXPECT_EQ(lm.ActiveKeyCount(), 1u);
  std::vector<uint64_t> granted;
  lm.Release(1, key, &granted);
  EXPECT_EQ(lm.ActiveKeyCount(), 0u);
}

// ---------------------------------------------------------------- Engine

QueryArrival MakeArrival(int64_t t_ms, uint64_t sql_id, double cpu_ms,
                         std::vector<LockRequest> locks = {}) {
  QueryArrival a;
  a.arrival_ms = t_ms;
  a.spec.sql_id = sql_id;
  a.spec.cpu_ms = cpu_ms;
  a.spec.examined_rows = 10;
  a.spec.locks = std::move(locks);
  return a;
}

TEST(EngineTest, SingleQueryLifecycle) {
  Engine engine(SimConfig{});
  engine.AddArrival(MakeArrival(1000, 42, 5.0));
  engine.RunToCompletion();
  ASSERT_EQ(engine.completed().size(), 1u);
  const CompletedQuery& q = engine.completed()[0];
  EXPECT_EQ(q.sql_id, 42u);
  EXPECT_EQ(q.arrival_ms, 1000);
  EXPECT_EQ(q.outcome, QueryOutcome::kCompleted);
  EXPECT_NEAR(q.response_ms(), 5.0, 0.1);
}

TEST(EngineTest, LogStoreReceivesCompletedQueries) {
  LogStore logs;
  Engine engine(SimConfig{});
  engine.AttachLogStore(&logs);
  engine.AddArrival(MakeArrival(0, 1, 2.0));
  engine.AddArrival(MakeArrival(10, 2, 2.0));
  engine.RunToCompletion();
  EXPECT_EQ(logs.size(), 2u);
  EXPECT_EQ(logs.SortedRecords()[0].sql_id, 1u);
}

TEST(EngineTest, ProcessorSharingSlowsOverload) {
  // 100 concurrent queries on 4 cores must take much longer than alone.
  SimConfig config;
  config.cpu_cores = 4.0;
  Engine engine(config);
  for (int i = 0; i < 100; ++i) {
    engine.AddArrival(MakeArrival(0, 1, 10.0));
  }
  engine.RunToCompletion();
  double max_response = 0.0;
  for (const auto& q : engine.completed()) {
    max_response = std::max(max_response, q.response_ms());
  }
  // Last-started queries see slowdown ~100/4 = 25x.
  EXPECT_GT(max_response, 100.0);
}

TEST(EngineTest, RowLockConflictSerializes) {
  Engine engine(SimConfig{});
  const uint64_t key = MakeRowKey(1, 1);
  engine.AddArrival(MakeArrival(0, 1, 100.0, {{key, LockMode::kExclusive}}));
  engine.AddArrival(MakeArrival(1, 2, 1.0, {{key, LockMode::kShared}}));
  engine.RunToCompletion();
  ASSERT_EQ(engine.completed().size(), 2u);
  const CompletedQuery* blocked = nullptr;
  for (const auto& q : engine.completed()) {
    if (q.sql_id == 2) blocked = &q;
  }
  ASSERT_NE(blocked, nullptr);
  EXPECT_TRUE(blocked->waited_row_lock);
  EXPECT_FALSE(blocked->waited_mdl);
  // It had to wait ~99 ms for the exclusive holder.
  EXPECT_GT(blocked->response_ms(), 90.0);
}

TEST(EngineTest, MdlExclusiveBlocksTable) {
  Engine engine(SimConfig{});
  const uint64_t mdl = MakeMdlKey(3);
  engine.AddArrival(MakeArrival(0, 1, 500.0, {{mdl, LockMode::kExclusive}}));
  for (int i = 0; i < 5; ++i) {
    engine.AddArrival(
        MakeArrival(10 + i, 2, 1.0, {{mdl, LockMode::kShared}}));
  }
  engine.RunToCompletion();
  size_t waited = 0;
  for (const auto& q : engine.completed()) {
    if (q.sql_id == 2 && q.waited_mdl) ++waited;
  }
  EXPECT_EQ(waited, 5u);
}

TEST(EngineTest, LockWaitTimeoutAborts) {
  SimConfig config;
  config.lock_wait_timeout_ms = 100.0;
  Engine engine(config);
  const uint64_t key = MakeRowKey(1, 1);
  engine.AddArrival(MakeArrival(0, 1, 10'000.0, {{key, LockMode::kExclusive}}));
  engine.AddArrival(MakeArrival(1, 2, 1.0, {{key, LockMode::kExclusive}}));
  engine.RunToCompletion();
  const CompletedQuery* aborted = nullptr;
  for (const auto& q : engine.completed()) {
    if (q.sql_id == 2) aborted = &q;
  }
  ASSERT_NE(aborted, nullptr);
  EXPECT_EQ(aborted->outcome, QueryOutcome::kLockTimeout);
  EXPECT_NEAR(aborted->response_ms(), 100.0, 1.0);
  EXPECT_EQ(engine.timeout_count(), 1u);
}

TEST(EngineTest, ThrottleRejectsExcessArrivals) {
  Engine engine(SimConfig{});
  engine.SetThrottle(7, 2.0);
  for (int i = 0; i < 10; ++i) {
    engine.AddArrival(MakeArrival(i * 10, 7, 1.0));
  }
  engine.RunToCompletion();
  size_t ok = 0;
  size_t throttled = 0;
  for (const auto& q : engine.completed()) {
    if (q.outcome == QueryOutcome::kThrottled) {
      ++throttled;
    } else {
      ++ok;
    }
  }
  EXPECT_EQ(ok, 2u);  // 2 QPS limit, all arrivals in one second
  EXPECT_EQ(throttled, 8u);
  EXPECT_EQ(engine.throttled_count(), 8u);

  engine.ClearThrottle(7);
  engine.AddArrival(MakeArrival(5000, 7, 1.0));
  engine.RunToCompletion();
  EXPECT_EQ(engine.throttled_count(), 8u);
}

TEST(EngineTest, ThrottledQueriesNotLogged) {
  LogStore logs;
  Engine engine(SimConfig{});
  engine.AttachLogStore(&logs);
  engine.SetThrottle(7, 1.0);
  engine.AddArrival(MakeArrival(0, 7, 1.0));
  engine.AddArrival(MakeArrival(1, 7, 1.0));
  engine.RunToCompletion();
  EXPECT_EQ(logs.size(), 1u);
}

TEST(EngineTest, CostMultiplierModelsOptimization) {
  Engine engine(SimConfig{});
  engine.AddArrival(MakeArrival(0, 7, 100.0));
  engine.RunUntil(1000);
  engine.SetCostMultiplier(7, 0.1, 0.1, 0.1);
  engine.AddArrival(MakeArrival(2000, 7, 100.0));
  engine.RunToCompletion();
  ASSERT_EQ(engine.completed().size(), 2u);
  EXPECT_NEAR(engine.completed()[0].response_ms(), 100.0, 1.0);
  EXPECT_NEAR(engine.completed()[1].response_ms(), 10.0, 1.0);
  EXPECT_EQ(engine.completed()[1].examined_rows, 1);
}

TEST(EngineTest, AutoScaleReducesSlowdown) {
  auto run = [](double cores) {
    SimConfig config;
    config.cpu_cores = cores;
    Engine engine(config);
    for (int i = 0; i < 64; ++i) engine.AddArrival(MakeArrival(0, 1, 10.0));
    engine.RunToCompletion();
    double total = 0.0;
    for (const auto& q : engine.completed()) total += q.response_ms();
    return total / 64.0;
  };
  EXPECT_LT(run(32.0), run(4.0));
}

TEST(EngineTest, MonitoringOverheadShrinksCapacity) {
  SimConfig config;
  config.cpu_cores = 10.0;
  Engine engine(config);
  EXPECT_DOUBLE_EQ(engine.EffectiveCores(), 10.0);
  engine.set_monitoring(MonitoringConfig::kPfsConIns);
  EXPECT_NEAR(engine.EffectiveCores(), 7.2, 1e-9);
}

TEST(EngineTest, MonitoringOverheadOrdering) {
  EXPECT_EQ(MonitoringOverheadFraction(MonitoringConfig::kNormal), 0.0);
  EXPECT_LT(MonitoringOverheadFraction(MonitoringConfig::kPfs),
            MonitoringOverheadFraction(MonitoringConfig::kPfsIns));
  EXPECT_LT(MonitoringOverheadFraction(MonitoringConfig::kPfsCon),
            MonitoringOverheadFraction(MonitoringConfig::kPfsConIns));
}

TEST(EngineTest, TakeCompletedDrains) {
  Engine engine(SimConfig{});
  engine.AddArrival(MakeArrival(0, 1, 1.0));
  engine.RunToCompletion();
  EXPECT_EQ(engine.TakeCompleted().size(), 1u);
  EXPECT_TRUE(engine.completed().empty());
}

TEST(EngineTest, DuplicateLockKeysMerged) {
  // A query naming the same row group twice must not self-deadlock.
  Engine engine(SimConfig{});
  const uint64_t key = MakeRowKey(1, 1);
  engine.AddArrival(MakeArrival(0, 1, 1.0,
                                {{key, LockMode::kShared},
                                 {key, LockMode::kExclusive}}));
  engine.RunToCompletion();
  ASSERT_EQ(engine.completed().size(), 1u);
  EXPECT_EQ(engine.completed()[0].outcome, QueryOutcome::kCompleted);
}

TEST(EngineTest, DeadlockFreeUnderOpposingLockOrders) {
  // Locks are acquired in canonical key order, so opposite declaration
  // orders cannot deadlock.
  Engine engine(SimConfig{});
  const uint64_t a = MakeRowKey(1, 1);
  const uint64_t b = MakeRowKey(1, 2);
  for (int i = 0; i < 50; ++i) {
    engine.AddArrival(MakeArrival(i, 1, 5.0,
                                  {{a, LockMode::kExclusive},
                                   {b, LockMode::kExclusive}}));
    engine.AddArrival(MakeArrival(i, 2, 5.0,
                                  {{b, LockMode::kExclusive},
                                   {a, LockMode::kExclusive}}));
  }
  engine.RunToCompletion();
  EXPECT_EQ(engine.completed().size(), 100u);
  for (const auto& q : engine.completed()) {
    EXPECT_EQ(q.outcome, QueryOutcome::kCompleted);
  }
}

// --------------------------------------------------------------- Monitor

TEST(MonitorTest, ActiveSessionCountsConcurrentQueries) {
  // Two long overlapping queries -> active session 2 in the overlap.
  std::vector<CompletedQuery> completed(2);
  completed[0].arrival_ms = 0;
  completed[0].service_start_ms = 0;
  completed[0].completion_ms = 5000;
  completed[1].arrival_ms = 1000;
  completed[1].service_start_ms = 1000;
  completed[1].completion_ms = 5000;
  Rng rng(1);
  const InstanceMetrics m =
      ComputeInstanceMetrics(completed, 0, 6, 8.0, 8000.0, &rng);
  EXPECT_EQ(m.active_session.size(), 6u);
  EXPECT_DOUBLE_EQ(m.active_session[2], 2.0);
  EXPECT_DOUBLE_EQ(m.active_session[5], 0.0);
}

TEST(MonitorTest, ThrottledQueriesNotCounted) {
  std::vector<CompletedQuery> completed(1);
  completed[0].arrival_ms = 0;
  completed[0].completion_ms = 5000;
  completed[0].outcome = QueryOutcome::kThrottled;
  Rng rng(1);
  const InstanceMetrics m =
      ComputeInstanceMetrics(completed, 0, 6, 8.0, 8000.0, &rng);
  EXPECT_DOUBLE_EQ(m.active_session.Sum(), 0.0);
}

TEST(MonitorTest, CpuUsageReflectsWork) {
  // One query consuming 4000 ms CPU over 1 s on 8 cores = 50 %.
  std::vector<CompletedQuery> completed(1);
  completed[0].arrival_ms = 0;
  completed[0].service_start_ms = 0;
  completed[0].completion_ms = 1000;
  completed[0].cpu_ms = 4000;
  Rng rng(1);
  const InstanceMetrics m =
      ComputeInstanceMetrics(completed, 0, 2, 8.0, 8000.0, &rng);
  EXPECT_NEAR(m.cpu_usage[0], 50.0, 1e-6);
  EXPECT_NEAR(m.cpu_usage[1], 0.0, 1e-6);
}

TEST(MonitorTest, CpuUsageClampedAt100) {
  std::vector<CompletedQuery> completed(1);
  completed[0].arrival_ms = 0;
  completed[0].service_start_ms = 0;
  completed[0].completion_ms = 1000;
  completed[0].cpu_ms = 1e6;
  Rng rng(1);
  const InstanceMetrics m =
      ComputeInstanceMetrics(completed, 0, 1, 8.0, 8000.0, &rng);
  EXPECT_DOUBLE_EQ(m.cpu_usage[0], 100.0);
}

TEST(MonitorTest, LockWaitCountersAndQps) {
  std::vector<CompletedQuery> completed(3);
  completed[0].arrival_ms = 500;
  completed[0].completion_ms = 700;
  completed[0].waited_row_lock = true;
  completed[1].arrival_ms = 1500;
  completed[1].completion_ms = 1800;
  completed[1].waited_mdl = true;
  completed[2].arrival_ms = 1600;
  completed[2].completion_ms = 2100;
  Rng rng(1);
  const InstanceMetrics m =
      ComputeInstanceMetrics(completed, 0, 3, 8.0, 8000.0, &rng);
  EXPECT_DOUBLE_EQ(m.row_lock_waits[0], 1.0);
  EXPECT_DOUBLE_EQ(m.mdl_waits[1], 1.0);
  EXPECT_DOUBLE_EQ(m.qps[0], 1.0);
  EXPECT_DOUBLE_EQ(m.qps[1], 1.0);
  EXPECT_DOUBLE_EQ(m.qps[2], 1.0);
}

TEST(MonitorTest, TrueTemplateSessionsIntegrateActiveTime) {
  std::vector<CompletedQuery> completed(1);
  completed[0].sql_id = 5;
  completed[0].arrival_ms = 500;
  completed[0].service_start_ms = 500;
  completed[0].completion_ms = 2500;  // active 2 s spanning 3 seconds
  const auto sessions = ComputeTrueTemplateSessions(completed, 0, 3);
  ASSERT_EQ(sessions.size(), 1u);
  const TimeSeries& s = sessions.at(5);
  EXPECT_NEAR(s[0], 0.5, 1e-9);
  EXPECT_NEAR(s[1], 1.0, 1e-9);
  EXPECT_NEAR(s[2], 0.5, 1e-9);
  const TimeSeries total = ComputeTrueInstanceSession(completed, 0, 3);
  EXPECT_NEAR(total.Sum(), 2.0, 1e-9);
}

// ------------------------------------------------------------ ClosedLoop

TEST(ClosedLoopTest, KeepsExactlyOneQueryInFlightPerThread) {
  SimConfig config;
  config.cpu_cores = 4.0;
  Engine engine(config);
  ClosedLoopDriver driver(
      {{[](Rng* rng) {
          QuerySpec spec;
          spec.sql_id = 1;
          spec.cpu_ms = rng->Uniform(0.5, 1.5);
          return spec;
        },
        1.0}},
      /*num_threads=*/8, /*stop_after_ms=*/1000.0, /*seed=*/3);
  engine.SetArrivalDriver(&driver);
  engine.AddArrivals(driver.InitialArrivals(0));
  engine.RunToCompletion();
  // Throughput-bound: roughly threads/response * duration completions.
  EXPECT_GT(engine.completed().size(), 1000u);
  EXPECT_EQ(engine.completed().size(), driver.issued());
}

TEST(ClosedLoopTest, MixWeightsRoughlyRespected) {
  SimConfig config;
  Engine engine(config);
  auto make = [](uint64_t id) {
    return [id](Rng*) {
      QuerySpec spec;
      spec.sql_id = id;
      spec.cpu_ms = 1.0;
      return spec;
    };
  };
  ClosedLoopDriver driver({{make(1), 3.0}, {make(2), 1.0}},
                          /*num_threads=*/4, /*stop_after_ms=*/2000.0,
                          /*seed=*/5);
  engine.SetArrivalDriver(&driver);
  engine.AddArrivals(driver.InitialArrivals(0));
  engine.RunToCompletion();
  size_t ones = 0;
  size_t twos = 0;
  for (const auto& q : engine.completed()) {
    if (q.sql_id == 1) ++ones;
    if (q.sql_id == 2) ++twos;
  }
  const double ratio = static_cast<double>(ones) / static_cast<double>(twos);
  EXPECT_NEAR(ratio, 3.0, 0.6);
}

TEST(ClosedLoopTest, QpsScalesWithEffectiveCapacity) {
  // The Table IV mechanism: monitoring overhead cuts closed-loop QPS.
  auto run_qps = [](MonitoringConfig monitoring) {
    SimConfig config;
    config.cpu_cores = 4.0;
    config.monitoring = monitoring;
    Engine engine(config);
    ClosedLoopDriver driver(
        {{[](Rng* rng) {
            QuerySpec spec;
            spec.sql_id = 1;
            spec.cpu_ms = rng->Uniform(0.8, 1.2);
            return spec;
          },
          1.0}},
        /*num_threads=*/32, /*stop_after_ms=*/3000.0, /*seed=*/7);
    engine.SetArrivalDriver(&driver);
    engine.AddArrivals(driver.InitialArrivals(0));
    engine.RunToCompletion();
    return static_cast<double>(engine.completed().size()) / 3.0;
  };
  const double normal = run_qps(MonitoringConfig::kNormal);
  const double heavy = run_qps(MonitoringConfig::kPfsConIns);
  const double decline = (normal - heavy) / normal;
  EXPECT_GT(decline, 0.15);
  EXPECT_LT(decline, 0.45);
}

}  // namespace
}  // namespace pinsql::dbsim
