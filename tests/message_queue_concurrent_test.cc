// Concurrency hammer for the pipeline's Kafka stand-in and the thread
// pool: multi-producer publish must lose nothing, duplicate nothing, and
// keep per-partition FIFO order; the pool must survive exceptions, nested
// ParallelFor, and shutdown with work still queued.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <stdexcept>
#include <thread>
#include <unordered_set>
#include <vector>

#include "pipeline/message_queue.h"
#include "util/thread_pool.h"

namespace pinsql {
namespace {

// Each published value encodes (producer, sequence) so the consumer side
// can check exactly which records arrived and in what order.
uint64_t Encode(uint64_t producer, uint64_t seq) {
  return (producer << 32) | seq;
}
uint64_t ProducerOf(uint64_t value) { return value >> 32; }
uint64_t SeqOf(uint64_t value) { return value & 0xffffffffULL; }

constexpr size_t kPartitions = 5;
constexpr size_t kProducers = 8;
constexpr size_t kPerProducer = 4000;

void HammerPublish(pipeline::Topic<uint64_t>* topic) {
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (size_t producer = 0; producer < kProducers; ++producer) {
    producers.emplace_back([topic, producer] {
      for (size_t seq = 0; seq < kPerProducer; ++seq) {
        // Key varies per record, so each producer sprays all partitions.
        topic->Publish(producer * 31 + seq * 7,
                       Encode(producer, seq));
      }
    });
  }
  for (std::thread& t : producers) t.join();
}

/// No record lost, none duplicated, and within every partition each
/// producer's sequence numbers appear strictly increasing (per-partition
/// FIFO: a producer's publishes to one partition keep their order).
void CheckIntegrity(const std::vector<std::vector<uint64_t>>& by_partition) {
  size_t total = 0;
  std::unordered_set<uint64_t> seen;
  for (size_t p = 0; p < by_partition.size(); ++p) {
    std::vector<uint64_t> last_seq(kProducers, 0);
    std::vector<bool> any(kProducers, false);
    for (const uint64_t value : by_partition[p]) {
      ++total;
      EXPECT_TRUE(seen.insert(value).second)
          << "duplicate record " << value << " in partition " << p;
      const uint64_t producer = ProducerOf(value);
      const uint64_t seq = SeqOf(value);
      ASSERT_LT(producer, kProducers);
      if (any[producer]) {
        EXPECT_GT(seq, last_seq[producer])
            << "producer " << producer << " reordered in partition " << p;
      }
      any[producer] = true;
      last_seq[producer] = seq;
    }
  }
  EXPECT_EQ(total, kProducers * kPerProducer);
  EXPECT_EQ(seen.size(), kProducers * kPerProducer);
}

TEST(TopicConcurrentTest, MultiProducerLosesNothing) {
  pipeline::Topic<uint64_t> topic("hammer", kPartitions);
  HammerPublish(&topic);

  EXPECT_EQ(topic.TotalSize(), kProducers * kPerProducer);
  std::vector<std::vector<uint64_t>> by_partition;
  for (size_t p = 0; p < topic.num_partitions(); ++p) {
    by_partition.push_back(topic.Partition(p));
  }
  CheckIntegrity(by_partition);
}

TEST(TopicConcurrentTest, ConcurrentConsumersOverDisjointPartitions) {
  pipeline::Topic<uint64_t> topic("hammer", kPartitions);

  // Producers and per-partition consumer threads run at the same time;
  // consumers poll in small batches until producers finish and the
  // partition is drained.
  std::atomic<bool> producing{true};
  std::vector<std::vector<uint64_t>> by_partition(kPartitions);
  std::vector<std::thread> consumers;
  for (size_t p = 0; p < kPartitions; ++p) {
    consumers.emplace_back([&topic, &producing, &by_partition, p] {
      pipeline::Consumer<uint64_t> consumer(&topic);
      while (true) {
        const std::vector<uint64_t> batch = consumer.PollPartition(p, 64);
        by_partition[p].insert(by_partition[p].end(), batch.begin(),
                               batch.end());
        if (batch.empty() && !producing.load(std::memory_order_acquire)) {
          // One final poll after the producers are done catches records
          // published between the empty poll and the flag read.
          const std::vector<uint64_t> tail =
              consumer.PollPartition(p, kProducers * kPerProducer);
          by_partition[p].insert(by_partition[p].end(), tail.begin(),
                                 tail.end());
          return;
        }
      }
    });
  }

  HammerPublish(&topic);
  producing.store(false, std::memory_order_release);
  for (std::thread& t : consumers) t.join();

  CheckIntegrity(by_partition);
}

TEST(TopicConcurrentTest, RoundRobinPollSeesEverything) {
  pipeline::Topic<uint64_t> topic("hammer", kPartitions);
  HammerPublish(&topic);

  pipeline::Consumer<uint64_t> consumer(&topic);
  std::vector<std::vector<uint64_t>> by_partition(kPartitions);
  size_t polled = 0;
  while (true) {
    const std::vector<uint64_t> batch = consumer.Poll(97);
    if (batch.empty()) break;
    polled += batch.size();
    // Poll interleaves partitions; re-split by key-independent content is
    // impossible here, so just count and dedup globally.
    for (const uint64_t value : batch) by_partition[0].push_back(value);
  }
  EXPECT_EQ(polled, kProducers * kPerProducer);
  EXPECT_EQ(consumer.Lag(), 0u);
  std::unordered_set<uint64_t> seen(by_partition[0].begin(),
                                    by_partition[0].end());
  EXPECT_EQ(seen.size(), kProducers * kPerProducer);
}

TEST(ThreadPoolTest, SubmitRunsTasksAndReportsExceptions) {
  util::ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&ran] { ++ran; }));
  }
  std::future<void> failing =
      pool.Submit([] { throw std::runtime_error("task failed"); });
  for (std::future<void>& f : futures) f.get();
  EXPECT_EQ(ran.load(), 100);
  EXPECT_THROW(failing.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  util::ThreadPool pool(4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&hits](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForRethrowsFirstException) {
  util::ThreadPool pool(4);
  std::atomic<int> executed{0};
  EXPECT_THROW(
      pool.ParallelFor(1000,
                       [&executed](size_t i) {
                         ++executed;
                         if (i == 3) throw std::runtime_error("iteration 3");
                       }),
      std::runtime_error);
  // The abort flag stops unstarted iterations, so not all 1000 ran — but
  // the pool must stay usable afterwards.
  std::atomic<int> after{0};
  pool.ParallelFor(64, [&after](size_t) { ++after; });
  EXPECT_EQ(after.load(), 64);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // 2 threads, 4 outer iterations each spawning an inner loop: with a
  // naive blocking implementation the workers would all wait on inner
  // loops that no free thread can service. Caller participation makes
  // this complete.
  util::ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(4, [&pool, &inner_total](size_t) {
    pool.ParallelFor(8, [&inner_total](size_t) { ++inner_total; });
  });
  EXPECT_EQ(inner_total.load(), 4 * 8);
}

TEST(ThreadPoolTest, ShutdownWithPendingWorkDrainsQueue) {
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  {
    util::ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      futures.push_back(pool.Submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        ++ran;
      }));
    }
    // Destructor runs here with most of the queue still pending.
  }
  EXPECT_EQ(ran.load(), 200);
  for (std::future<void>& f : futures) {
    EXPECT_NO_THROW(f.get());
  }
}

}  // namespace
}  // namespace pinsql
