#include <gtest/gtest.h>

#include "util/json.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"

namespace pinsql {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kParseError, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("payload");
  ASSERT_TRUE(v.ok());
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "payload");
}

// ---------------------------------------------------------------- Strings

TEST(StringsTest, SplitKeepsEmptyPieces) {
  EXPECT_EQ(StrSplit("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("x", ','), (std::vector<std::string>{"x"}));
}

TEST(StringsTest, JoinRoundTrips) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(StringsTest, Strip) {
  EXPECT_EQ(StripAsciiWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripAsciiWhitespace("\t \n"), "");
  EXPECT_EQ(StripAsciiWhitespace("abc"), "abc");
}

TEST(StringsTest, CaseConversion) {
  EXPECT_EQ(AsciiToLower("SeLeCt * FROM T1"), "select * from t1");
  EXPECT_EQ(AsciiToUpper("select"), "SELECT");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("SELECT 1", "SELECT"));
  EXPECT_FALSE(StartsWith("SEL", "SELECT"));
  EXPECT_TRUE(EndsWith("a.sudden_increase", ".sudden_increase"));
  EXPECT_FALSE(EndsWith("x", "long_suffix"));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringsTest, Fnv1a64KnownVectors) {
  // Standard FNV-1a test vectors.
  EXPECT_EQ(Fnv1a64(""), 0xCBF29CE484222325ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xAF63DC4C8601EC8CULL);
  EXPECT_NE(Fnv1a64("SELECT 1"), Fnv1a64("SELECT 2"));
}

TEST(StringsTest, HashToHexIsFixedWidthUppercase) {
  EXPECT_EQ(HashToHex(0), "0000000000000000");
  EXPECT_EQ(HashToHex(0xABCDEF0123456789ULL), "ABCDEF0123456789");
}

// ---------------------------------------------------------------- Rng

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform01(), b.Uniform01());
  }
}

TEST(RngTest, UniformBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
    const int64_t n = rng.UniformInt(-3, 3);
    EXPECT_GE(n, -3);
    EXPECT_LE(n, 3);
  }
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(2);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, PoissonMeanRoughlyCorrect) {
  Rng rng(3);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(4.0));
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(RngTest, LogNormalMeanRoughlyCorrect) {
  Rng rng(4);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.LogNormalWithMean(10.0, 0.5);
  EXPECT_NEAR(sum / n, 10.0, 0.5);
}

TEST(RngTest, ForkDecorrelatesStreams) {
  Rng base(5);
  Rng a = base.Fork(1);
  Rng b = base.Fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(0, 1000000) == b.UniformInt(0, 1000000)) ++equal;
  }
  EXPECT_LT(equal, 3);
}

// ---------------------------------------------------------------- Json

TEST(JsonTest, ParsePrimitives) {
  EXPECT_TRUE(Json::Parse("null")->is_null());
  EXPECT_EQ(Json::Parse("true")->AsBool(), true);
  EXPECT_EQ(Json::Parse("false")->AsBool(), false);
  EXPECT_DOUBLE_EQ(Json::Parse("3.5")->AsNumber(), 3.5);
  EXPECT_DOUBLE_EQ(Json::Parse("-2e3")->AsNumber(), -2000.0);
  EXPECT_EQ(Json::Parse("\"hi\"")->AsString(), "hi");
}

TEST(JsonTest, ParseNestedDocument) {
  auto doc = Json::Parse(R"({"a": [1, 2, {"b": "x"}], "c": null})");
  ASSERT_TRUE(doc.ok());
  const Json* a = doc->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  EXPECT_EQ(a->AsArray().size(), 3u);
  EXPECT_EQ(a->AsArray()[2].Find("b")->AsString(), "x");
  EXPECT_TRUE(doc->Find("c")->is_null());
  EXPECT_EQ(doc->Find("missing"), nullptr);
}

TEST(JsonTest, StringEscapes) {
  auto doc = Json::Parse(R"("line\nbreak\t\"q\" \\ A")");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->AsString(), "line\nbreak\t\"q\" \\ A");
}

TEST(JsonTest, UnicodeEscapeUtf8) {
  auto doc = Json::Parse(R"("é中")");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->AsString(), "\xC3\xA9\xE4\xB8\xAD");
}

TEST(JsonTest, ParseErrorsAreReported) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Json::Parse("tru").ok());
  EXPECT_FALSE(Json::Parse("1 2").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  EXPECT_FALSE(Json::Parse("01a").ok());
  EXPECT_FALSE(Json::Parse("1e").ok());
}

TEST(JsonTest, DeepNestingIsRejected) {
  std::string deep(500, '[');
  deep += std::string(500, ']');
  EXPECT_FALSE(Json::Parse(deep).ok());
}

// Hardening: hostile/truncated documents must yield a parse-error Status,
// never a crash or runaway recursion. Run under ASan in CI.

TEST(JsonTest, TruncatedDocumentsAreParseErrors) {
  const char* full = R"({"a":[1,{"b":"c\u00e9"},true],"d":null})";
  const std::string text(full);
  // Every proper prefix of a valid document is itself invalid.
  for (size_t len = 0; len < text.size(); ++len) {
    const auto parsed = Json::Parse(text.substr(0, len));
    EXPECT_FALSE(parsed.ok()) << "prefix length " << len;
    EXPECT_EQ(parsed.status().code(), StatusCode::kParseError)
        << "prefix length " << len;
  }
  EXPECT_TRUE(Json::Parse(text).ok());
}

TEST(JsonTest, DeepMixedAndObjectNestingRejected) {
  // Alternating object/array nesting (the worst case for naive depth
  // accounting) and deep object chains both hit the depth limit cleanly.
  std::string mixed;
  for (int i = 0; i < 300; ++i) mixed += "[{\"k\":";
  mixed += "1";
  for (int i = 0; i < 300; ++i) mixed += "}]";
  EXPECT_FALSE(Json::Parse(mixed).ok());

  std::string objects;
  for (int i = 0; i < 400; ++i) objects += "{\"a\":";
  objects += "null";
  objects += std::string(400, '}');
  EXPECT_FALSE(Json::Parse(objects).ok());

  // Just under the limit parses fine: the guard is a limit, not a ban.
  std::string shallow(100, '[');
  shallow += "1";
  shallow += std::string(100, ']');
  EXPECT_TRUE(Json::Parse(shallow).ok());
}

TEST(JsonTest, BadEscapesAreParseErrors) {
  EXPECT_FALSE(Json::Parse("\"\\q\"").ok());       // unknown escape
  EXPECT_FALSE(Json::Parse("\"\\u12\"").ok());     // short unicode escape
  EXPECT_FALSE(Json::Parse("\"\\u12zz\"").ok());   // non-hex unicode escape
  EXPECT_FALSE(Json::Parse("\"\\").ok());          // escape at end of input
  EXPECT_FALSE(Json::Parse("\"a\\").ok());
  EXPECT_FALSE(Json::Parse("{\"k\\").ok());        // escape inside a key
}

TEST(JsonTest, HostileInputsNeverCrash) {
  // None of these need to parse; they must all return, not crash.
  const std::string nul_bytes("[\"a\0b\"]", 7);
  for (const std::string& text :
       {std::string("[[[[[\"\\"), std::string("{\"\":{\"\":{\"\":"),
        std::string("-"), std::string("+1"), std::string("\x80\xff"),
        std::string("[1e999999]"), nul_bytes,
        std::string(10000, '"'), std::string(10000, '\\')}) {
    (void)Json::Parse(text);
  }
}

TEST(JsonTest, DumpCompactRoundTrip) {
  const std::string text = R"({"a":[1,2.5,"x"],"b":{"c":true},"d":null})";
  auto doc = Json::Parse(text);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Dump(), text);
  auto again = Json::Parse(doc->Dump());
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(*again == *doc);
}

TEST(JsonTest, DumpPrettyParsesBack) {
  auto doc = Json::Parse(R"({"a": [1, {"b": [2, 3]}], "c": "x"})");
  ASSERT_TRUE(doc.ok());
  const std::string pretty = doc->Dump(/*pretty=*/true);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  auto again = Json::Parse(pretty);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(*again == *doc);
}

TEST(JsonTest, BuilderApi) {
  Json obj = Json::MakeObject();
  obj.Set("n", 3).Set("s", "x");
  Json arr = Json::MakeArray();
  arr.Append(1).Append(2);
  obj.Set("a", std::move(arr));
  EXPECT_EQ(obj.Dump(), R"({"a":[1,2],"n":3,"s":"x"})");
}

TEST(JsonTest, TypedGettersWithDefaults) {
  auto doc = Json::Parse(R"({"n": 4, "b": true, "s": "v"})");
  ASSERT_TRUE(doc.ok());
  EXPECT_DOUBLE_EQ(doc->GetNumberOr("n", -1), 4.0);
  EXPECT_DOUBLE_EQ(doc->GetNumberOr("missing", -1), -1.0);
  EXPECT_TRUE(doc->GetBoolOr("b", false));
  EXPECT_EQ(doc->GetStringOr("s", "d"), "v");
  EXPECT_EQ(doc->GetStringOr("n", "d"), "d");  // type mismatch -> default
}

TEST(JsonTest, NumbersSerializeIntegersExactly) {
  EXPECT_EQ(Json(5).Dump(), "5");
  EXPECT_EQ(Json(-5).Dump(), "-5");
  EXPECT_EQ(Json(int64_t{123456789012}).Dump(), "123456789012");
}

}  // namespace
}  // namespace pinsql
