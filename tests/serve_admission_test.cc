#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "serve/admission.h"

namespace pinsql::serve {
namespace {

StagedBatch Batch(const std::string& tenant, uint32_t instance,
                  size_t records, size_t wire_bytes) {
  StagedBatch batch;
  batch.tenant = tenant;
  batch.instance_id = instance;
  batch.records.resize(records);
  batch.wire_bytes = wire_bytes;
  return batch;
}

AdmissionOptions TwoTenantOptions() {
  AdmissionOptions options;
  TenantQuota acme;
  acme.records_per_sec = 100.0;
  acme.record_burst = 200.0;
  acme.bytes_per_sec = 10'000.0;
  acme.byte_burst = 20'000.0;
  acme.instances = {1, 2};
  options.tenants["acme"] = acme;
  TenantQuota umbrella = acme;
  umbrella.instances = {7};
  options.tenants["umbrella"] = umbrella;
  return options;
}

TEST(AdmissionTest, UnknownTenantAndForbiddenInstance) {
  AdmissionController controller(TwoTenantOptions());
  EXPECT_FALSE(controller.KnownTenant("mallory"));
  EXPECT_TRUE(controller.KnownTenant("acme"));
  EXPECT_EQ(controller.PreAdmit("mallory", 10, 0).outcome,
            AdmitOutcome::kUnknownTenant);
  // acme may not write into umbrella's instance.
  EXPECT_EQ(controller.Enqueue(Batch("acme", 7, 1, 10), 0).outcome,
            AdmitOutcome::kForbiddenInstance);
  EXPECT_TRUE(controller.Authorized("acme", 1));
  EXPECT_FALSE(controller.Authorized("acme", 7));
}

TEST(AdmissionTest, RecordBucketRefillsContinuously) {
  AdmissionController controller(TwoTenantOptions());
  int64_t now = 0;
  // Burst capacity: 200 records admitted at t=0.
  EXPECT_EQ(controller.Enqueue(Batch("acme", 1, 200, 10), now).outcome,
            AdmitOutcome::kAdmitted);
  // Bucket empty: the next record is rejected with a sane Retry-After.
  const AdmitDecision denied =
      controller.Enqueue(Batch("acme", 1, 50, 10), now);
  EXPECT_EQ(denied.outcome, AdmitOutcome::kRateLimited);
  EXPECT_GE(denied.retry_after_ms, 1);
  EXPECT_LE(denied.retry_after_ms, 1000);  // 50 records at 100/s ≤ 500ms
  // After 500ms, 50 tokens have accrued.
  now += 500;
  EXPECT_EQ(controller.Enqueue(Batch("acme", 1, 50, 10), now).outcome,
            AdmitOutcome::kAdmitted);
  // Idle time banks at most the burst cap, never unbounded credit.
  now += 60'000;
  size_t admitted = 0;
  while (controller.Enqueue(Batch("acme", 1, 100, 10), now).outcome ==
         AdmitOutcome::kAdmitted) {
    admitted += 100;
  }
  EXPECT_EQ(admitted, 200u);  // = record_burst
  // Long-run rate: hammering for 10 simulated seconds admits ≈ rate * 10,
  // no matter how the traffic is shaped.
  size_t sustained = 0;
  for (int step = 0; step < 100; ++step) {
    now += 100;
    while (controller.Enqueue(Batch("acme", 1, 10, 10), now).outcome ==
           AdmitOutcome::kAdmitted) {
      sustained += 10;
    }
  }
  EXPECT_GE(sustained, 900u);
  EXPECT_LE(sustained, 1100u);
}

TEST(AdmissionTest, PreAdmitChargesBytesAndSheds) {
  AdmissionOptions options = TwoTenantOptions();
  options.max_pending_bytes = 50'000;
  AdmissionController controller(options);
  // Byte burst is 20'000: a single oversized declaration is rate-limited.
  EXPECT_EQ(controller.PreAdmit("acme", 20'001, 0).outcome,
            AdmitOutcome::kRateLimited);
  EXPECT_EQ(controller.PreAdmit("acme", 15'000, 0).outcome,
            AdmitOutcome::kAdmitted);
  // Global shed: stage past max_pending_bytes and PreAdmit refuses
  // *before* charging the tenant's bucket.
  ASSERT_EQ(controller.Enqueue(Batch("acme", 1, 10, 30'000), 0).outcome,
            AdmitOutcome::kAdmitted);
  ASSERT_EQ(controller.Enqueue(Batch("umbrella", 7, 10, 19'000), 0).outcome,
            AdmitOutcome::kAdmitted);
  const AdmitDecision shed = controller.PreAdmit("umbrella", 5'000, 0);
  EXPECT_EQ(shed.outcome, AdmitOutcome::kShed);
  EXPECT_GE(shed.retry_after_ms, 1);
  const auto stats = controller.TenantStats();
  EXPECT_EQ(stats.at("umbrella").dropped_shed, 1u);
  // The shed did not burn umbrella's byte tokens: after the backlog
  // drains, the same declaration is admitted.
  controller.DequeueFair(16, 0);
  EXPECT_EQ(controller.PreAdmit("umbrella", 1'000, 0).outcome,
            AdmitOutcome::kAdmitted);
}

TEST(AdmissionTest, EnqueueReappliesGlobalShedCeiling) {
  AdmissionOptions options = TwoTenantOptions();
  options.max_pending_bytes = 50'000;
  for (auto& [name, quota] : options.tenants) {
    quota.bytes_per_sec = 1e12;
    quota.byte_burst = 1e12;
    quota.records_per_sec = 1e9;
    quota.record_burst = 1e9;
  }
  AdmissionController controller(options);
  // Two in-flight requests both pass the header-time ceiling check (no
  // bytes are reserved at PreAdmit)...
  EXPECT_EQ(controller.PreAdmit("acme", 30'000, 0).outcome,
            AdmitOutcome::kAdmitted);
  EXPECT_EQ(controller.PreAdmit("umbrella", 30'000, 0).outcome,
            AdmitOutcome::kAdmitted);
  // ...but Enqueue re-applies it against actually staged bytes, so the
  // second body cannot push the pool past max_pending_bytes.
  EXPECT_EQ(controller.Enqueue(Batch("acme", 1, 10, 30'000), 0).outcome,
            AdmitOutcome::kAdmitted);
  const AdmitDecision shed =
      controller.Enqueue(Batch("umbrella", 7, 10, 30'000), 0);
  EXPECT_EQ(shed.outcome, AdmitOutcome::kShed);
  EXPECT_GE(shed.retry_after_ms, 1);
  EXPECT_EQ(controller.TenantStats().at("umbrella").dropped_shed, 1u);
  EXPECT_LE(controller.pending_bytes(), 50'000u);
  // The shed burned no record tokens: once the pool drains, the same
  // batch is admitted.
  controller.DequeueFair(16, 0);
  EXPECT_EQ(controller.Enqueue(Batch("umbrella", 7, 10, 30'000), 0).outcome,
            AdmitOutcome::kAdmitted);
}

TEST(AdmissionTest, QueueCapacityIsPerTenant) {
  AdmissionOptions options = TwoTenantOptions();
  for (auto& [name, quota] : options.tenants) {
    quota.queue_capacity_batches = 3;
    quota.records_per_sec = 1e9;
    quota.record_burst = 1e9;
  }
  AdmissionController controller(options);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(controller.Enqueue(Batch("acme", 1, 1, 10), 0).outcome,
              AdmitOutcome::kAdmitted);
  }
  EXPECT_EQ(controller.Enqueue(Batch("acme", 1, 1, 10), 0).outcome,
            AdmitOutcome::kOverQuota);
  // umbrella's queue is unaffected by acme's backlog.
  EXPECT_EQ(controller.Enqueue(Batch("umbrella", 7, 1, 10), 0).outcome,
            AdmitOutcome::kAdmitted);
  EXPECT_EQ(controller.TenantStats().at("acme").dropped_over_quota, 1u);
}

TEST(AdmissionTest, DeficitRoundRobinIsWeightedAndFair) {
  AdmissionOptions options;
  TenantQuota base;
  base.records_per_sec = 1e9;
  base.record_burst = 1e9;
  base.bytes_per_sec = 1e12;
  base.byte_burst = 1e12;
  base.queue_capacity_batches = 10'000;
  options.drr_quantum_bytes = 1000;
  TenantQuota heavy = base;
  heavy.weight = 3;
  heavy.instances = {1};
  TenantQuota light = base;
  light.weight = 1;
  light.instances = {2};
  options.tenants["heavy"] = heavy;
  options.tenants["light"] = light;
  AdmissionController controller(options);

  // Both tenants stage 200 batches of 1000 bytes each.
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(controller.Enqueue(Batch("heavy", 1, 1, 1000), 0).outcome,
              AdmitOutcome::kAdmitted);
    ASSERT_EQ(controller.Enqueue(Batch("light", 2, 1, 1000), 0).outcome,
              AdmitOutcome::kAdmitted);
  }
  // Drain 100 batches: weight 3 vs 1 should split ~75/25.
  const auto drained = controller.DequeueFair(100, 0);
  ASSERT_EQ(drained.size(), 100u);
  size_t heavy_count = 0;
  for (const auto& batch : drained) {
    if (batch.tenant == "heavy") ++heavy_count;
  }
  EXPECT_GE(heavy_count, 70u);
  EXPECT_LE(heavy_count, 80u);
  // Nothing is lost: the rest drains eventually.
  size_t total = drained.size();
  while (true) {
    const auto more = controller.DequeueFair(64, 0);
    if (more.empty()) break;
    total += more.size();
  }
  EXPECT_EQ(total, 400u);
  EXPECT_EQ(controller.pending_bytes(), 0u);
  EXPECT_EQ(controller.pending_batches(), 0u);
}

TEST(AdmissionTest, DrainOrderIsDeterministic) {
  // Same admitted sequence → same single-threaded drain order, twice.
  const auto run = [] {
    AdmissionOptions options;
    TenantQuota quota;
    quota.records_per_sec = 1e9;
    quota.record_burst = 1e9;
    quota.bytes_per_sec = 1e12;
    quota.byte_burst = 1e12;
    quota.queue_capacity_batches = 1000;
    for (const char* name : {"a", "b", "c"}) {
      TenantQuota q = quota;
      q.instances = {static_cast<uint32_t>(name[0] - 'a' + 1)};
      options.tenants[name] = q;
    }
    AdmissionController controller(options);
    for (int i = 0; i < 30; ++i) {
      const char* name = i % 3 == 0 ? "c" : (i % 3 == 1 ? "a" : "b");
      controller.Enqueue(Batch(name, static_cast<uint32_t>(name[0] - 'a' + 1),
                               1, 100 + 10 * (i % 7)),
                         i);
    }
    std::vector<std::string> order;
    while (true) {
      const auto drained = controller.DequeueFair(7, 1000);
      if (drained.empty()) break;
      for (const auto& batch : drained) order.push_back(batch.tenant);
    }
    return order;
  };
  EXPECT_EQ(run(), run());
}

TEST(AdmissionTest, DeliveredAndDeadlineAccounting) {
  AdmissionController controller(TwoTenantOptions());
  ASSERT_EQ(controller.Enqueue(Batch("acme", 1, 5, 100), 0).outcome,
            AdmitOutcome::kAdmitted);
  controller.NoteDelivered("acme", 5, 2);
  controller.NoteDeadlineExpired("acme");
  controller.NoteShed("acme");
  const auto stats = controller.TenantStats().at("acme");
  EXPECT_EQ(stats.records_admitted, 5u);
  EXPECT_EQ(stats.records_delivered, 5u);
  EXPECT_EQ(stats.samples_delivered, 2u);
  EXPECT_EQ(stats.dropped_deadline, 1u);
  EXPECT_EQ(stats.dropped_shed, 1u);
}

}  // namespace
}  // namespace pinsql::serve
