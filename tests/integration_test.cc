/// End-to-end integration tests: simulate a full anomaly case through the
/// dbsim + pipeline substrates and check that PinSQL's diagnosis pinpoints
/// the injected root cause, for every anomaly category the paper names.

#include <gtest/gtest.h>

#include "core/diagnoser.h"
#include "eval/case_generator.h"
#include "eval/runner.h"
#include "pipeline/stream_aggregator.h"
#include "repair/rule_engine.h"

namespace pinsql {
namespace {

class EndToEndTest
    : public ::testing::TestWithParam<workload::AnomalyType> {};

TEST_P(EndToEndTest, PinpointsInjectedRootCauseInTop5) {
  eval::CaseGenOptions options;
  options.type = GetParam();
  options.seed = 77;
  const eval::AnomalyCaseData data = eval::GenerateCase(options);

  // Mild injections occasionally evade the detector (the diagnosis then
  // falls back to the injected period); the pinpointing assertions below
  // must hold either way.
  ASSERT_FALSE(data.rsql_truth.empty());
  ASSERT_FALSE(data.hsql_truth.empty());

  const core::DiagnosisInput input = eval::MakeDiagnosisInput(data);
  const StatusOr<core::DiagnosisResult> status_or =
      core::Diagnose(input, core::DiagnoserOptions{});
  ASSERT_TRUE(status_or.ok()) << status_or.status().ToString();
  const core::DiagnosisResult& result = *status_or;

  // R-SQL within top-5 and H-SQL within top-5 (the paper reports ~84 % and
  // ~99 % Hits@5; a fixed seed must not flake).
  const int r_rank = eval::RsqlRank(result.rsql.ranking, data);
  const int h_rank =
      eval::HsqlRank(result.TopHsql(result.hsql_ranking.size()), data);
  EXPECT_GE(r_rank, 1);
  EXPECT_LE(r_rank, 5);
  EXPECT_GE(h_rank, 1);
  EXPECT_LE(h_rank, 5);
}

INSTANTIATE_TEST_SUITE_P(AllAnomalyTypes, EndToEndTest,
                         ::testing::Values(
                             workload::AnomalyType::kBusinessSpike,
                             workload::AnomalyType::kPoorSql,
                             workload::AnomalyType::kMdlLock,
                             workload::AnomalyType::kRowLock));

TEST(EndToEndTest, CaseGenerationIsDeterministic) {
  eval::CaseGenOptions options;
  options.type = workload::AnomalyType::kPoorSql;
  options.seed = 99;
  const eval::AnomalyCaseData a = eval::GenerateCase(options);
  const eval::AnomalyCaseData b = eval::GenerateCase(options);
  EXPECT_EQ(a.logs.size(), b.logs.size());
  EXPECT_EQ(a.rsql_truth, b.rsql_truth);
  EXPECT_EQ(a.hsql_truth, b.hsql_truth);
  EXPECT_EQ(a.metrics.active_session.values(),
            b.metrics.active_session.values());
}

TEST(EndToEndTest, GroundTruthTemplatesExistInCatalog) {
  eval::CaseGenOptions options;
  options.type = workload::AnomalyType::kRowLock;
  options.seed = 3;
  const eval::AnomalyCaseData data = eval::GenerateCase(options);
  for (uint64_t id : data.rsql_truth) {
    EXPECT_NE(data.logs.FindTemplate(id), nullptr);
  }
  for (uint64_t id : data.hsql_truth) {
    EXPECT_NE(data.logs.FindTemplate(id), nullptr);
  }
}

TEST(EndToEndTest, HistoryProvidedForPreexistingTemplatesOnly) {
  eval::CaseGenOptions options;
  options.type = workload::AnomalyType::kPoorSql;
  options.seed = 4;
  const eval::AnomalyCaseData data = eval::GenerateCase(options);
  // The injected poor SQL is new: no history.
  EXPECT_EQ(data.history.ExecutionHistory(data.rsql_truth[0], 1), nullptr);
  // A regular template has all three windows.
  for (const auto& tpl : data.workload.templates) {
    if (tpl.weight > 0.0) {
      for (int days : {1, 3, 7}) {
        EXPECT_NE(data.history.ExecutionHistory(tpl.sql_id, days), nullptr);
      }
      break;
    }
  }
}

TEST(EndToEndTest, DiagnosisTimingsPopulated) {
  eval::CaseGenOptions options;
  options.seed = 5;
  const eval::AnomalyCaseData data = eval::GenerateCase(options);
  const StatusOr<core::DiagnosisResult> status_or =
      core::Diagnose(eval::MakeDiagnosisInput(data),
                     core::DiagnoserOptions{});
  ASSERT_TRUE(status_or.ok()) << status_or.status().ToString();
  const core::DiagnosisResult& result = *status_or;
  EXPECT_GT(result.total_seconds, 0.0);
  EXPECT_GT(result.estimate_seconds, 0.0);
  EXPECT_LE(result.estimate_seconds + result.hsql_seconds +
                result.cluster_seconds + result.verify_seconds,
            result.total_seconds * 1.01);
  EXPECT_EQ(result.te_sec, std::min(data.anomaly_end(),
                                    data.window_end_sec));
}

TEST(EndToEndTest, RepairSuggestionTargetsRootCause) {
  eval::CaseGenOptions options;
  options.type = workload::AnomalyType::kPoorSql;
  options.seed = 77;
  const eval::AnomalyCaseData data = eval::GenerateCase(options);
  const core::DiagnosisInput input = eval::MakeDiagnosisInput(data);
  const StatusOr<core::DiagnosisResult> status_or =
      core::Diagnose(input, core::DiagnoserOptions{});
  ASSERT_TRUE(status_or.ok()) << status_or.status().ToString();
  const core::DiagnosisResult& result = *status_or;
  const auto suggestions = repair::RepairRuleEngine::Default().Suggest(
      data.phenomena, result.rsql.ranking, result.metrics,
      input.anomaly_start_sec, input.anomaly_end_sec);
  // A poor SQL burning CPU with huge examined_rows must draw an optimize
  // suggestion aimed at it.
  bool optimize_on_truth = false;
  for (const auto& s : suggestions) {
    if (s.action.type == repair::ActionType::kOptimize &&
        s.sql_id == data.rsql_truth[0]) {
      optimize_on_truth = true;
    }
  }
  EXPECT_TRUE(optimize_on_truth);
}

TEST(EndToEndTest, BaselinesFindHsqlButMissRsqlOnLockCase) {
  // The paper's core claim: Top-SQL baselines surface the *affected*
  // queries, not the root cause, on lock anomalies.
  eval::CaseGenOptions options;
  options.type = workload::AnomalyType::kMdlLock;
  options.seed = 77;
  const eval::AnomalyCaseData data = eval::GenerateCase(options);
  const auto metrics = pinsql::AggregateWindow(
      data.logs, data.window_start_sec, data.window_end_sec);
  const auto tops = baselines::RankAllTopSql(metrics, data.anomaly_start(),
                                             data.anomaly_end());
  const int rt_h = eval::HsqlRank(tops.by_response_time, data);
  const int rt_r = eval::RsqlRank(tops.by_response_time, data);
  EXPECT_GE(rt_h, 1);
  EXPECT_LE(rt_h, 5);
  // The single DDL query cannot top any volume metric.
  EXPECT_TRUE(rt_r == 0 || rt_r > 5);
}

}  // namespace
}  // namespace pinsql
