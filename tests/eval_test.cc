#include <set>

#include <gtest/gtest.h>

#include "eval/case_generator.h"
#include "eval/runner.h"
#include "obs/trace.h"

namespace pinsql::eval {
namespace {

CaseGenOptions SmallCase(workload::AnomalyType type, uint64_t seed) {
  CaseGenOptions options;
  options.type = type;
  options.seed = seed;
  // Smaller than the benchmark defaults to keep the test quick.
  options.scenario.num_clusters = 3;
  options.scenario.min_templates_per_cluster = 5;
  options.scenario.max_templates_per_cluster = 10;
  options.pre_anomaly_sec = 300;
  options.anomaly_duration_sec = 150;
  options.post_anomaly_sec = 40;
  return options;
}

TEST(CaseGeneratorTest, WindowLayoutIsConsistent) {
  const AnomalyCaseData data =
      GenerateCase(SmallCase(workload::AnomalyType::kPoorSql, 1));
  EXPECT_EQ(data.injected_as, data.window_start_sec + 300);
  EXPECT_EQ(data.injected_ae, data.injected_as + 150);
  EXPECT_EQ(data.window_end_sec, data.injected_ae + 40);
  EXPECT_EQ(data.metrics.active_session.start_time(),
            data.window_start_sec);
  EXPECT_EQ(data.metrics.active_session.end_time(), data.window_end_sec);
}

TEST(CaseGeneratorTest, LogsStayInsideWindow) {
  const AnomalyCaseData data =
      GenerateCase(SmallCase(workload::AnomalyType::kBusinessSpike, 2));
  ASSERT_GT(data.logs.size(), 0u);
  for (const QueryLogRecord& rec : data.logs.SortedRecords()) {
    EXPECT_GE(rec.arrival_ms, data.window_start_sec * 1000);
    EXPECT_LT(rec.arrival_ms, data.window_end_sec * 1000);
    EXPECT_GE(rec.response_ms, 0.0);
  }
}

TEST(CaseGeneratorTest, EveryLoggedTemplateIsInCatalog) {
  const AnomalyCaseData data =
      GenerateCase(SmallCase(workload::AnomalyType::kRowLock, 3));
  std::set<uint64_t> seen;
  for (const QueryLogRecord& rec : data.logs.SortedRecords()) {
    seen.insert(rec.sql_id);
  }
  for (uint64_t id : seen) {
    EXPECT_NE(data.logs.FindTemplate(id), nullptr)
        << "unregistered template " << id;
  }
}

TEST(CaseGeneratorTest, RsqlTruthIsNonEmptyAndResolvable) {
  for (auto type : {workload::AnomalyType::kBusinessSpike,
                    workload::AnomalyType::kPoorSql,
                    workload::AnomalyType::kMdlLock,
                    workload::AnomalyType::kRowLock}) {
    const AnomalyCaseData data = GenerateCase(SmallCase(type, 4));
    ASSERT_FALSE(data.rsql_truth.empty());
    for (uint64_t id : data.rsql_truth) {
      EXPECT_NE(data.workload.FindTemplate(id), nullptr);
    }
  }
}

TEST(CaseGeneratorTest, OverridesReproduceIdenticalArrivals) {
  const AnomalyCaseData data =
      GenerateCase(SmallCase(workload::AnomalyType::kPoorSql, 5));
  const auto a = workload::GenerateArrivals(
      data.workload, data.overrides, data.window_start_sec,
      data.window_end_sec, data.arrival_seed);
  const auto b = workload::GenerateArrivals(
      data.workload, data.overrides, data.window_start_sec,
      data.window_end_sec, data.arrival_seed);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.size(), data.logs.size() +
                          0u);  // every arrival produced one log record
  for (size_t i = 0; i < std::min<size_t>(a.size(), 50); ++i) {
    EXPECT_EQ(a[i].arrival_ms, b[i].arrival_ms);
    EXPECT_EQ(a[i].spec.sql_id, b[i].spec.sql_id);
  }
}

TEST(CaseGeneratorTest, HistoryWindowsDifferAcrossDays) {
  const AnomalyCaseData data =
      GenerateCase(SmallCase(workload::AnomalyType::kBusinessSpike, 6));
  const workload::TemplateDef* tpl = nullptr;
  for (const auto& t : data.workload.templates) {
    if (t.weight > 0.0) {
      tpl = &t;
      break;
    }
  }
  ASSERT_NE(tpl, nullptr);
  const TimeSeries* d1 = data.history.ExecutionHistory(tpl->sql_id, 1);
  const TimeSeries* d3 = data.history.ExecutionHistory(tpl->sql_id, 3);
  ASSERT_NE(d1, nullptr);
  ASSERT_NE(d3, nullptr);
  EXPECT_EQ(d1->size(), d3->size());
  EXPECT_NE(d1->values(), d3->values());  // different realizations
}

TEST(CaseGeneratorTest, HsqlTruthRequiresRelativeInflation) {
  const AnomalyCaseData data =
      GenerateCase(SmallCase(workload::AnomalyType::kMdlLock, 7));
  ASSERT_FALSE(data.hsql_truth.empty());
  // Every labeled H-SQL must genuinely inflate during the anomaly.
  const auto sessions = data.metrics.active_session;  // instance level
  EXPECT_GT(sessions.Slice(data.injected_as, data.injected_ae).Mean(),
            sessions.Slice(data.window_start_sec, data.injected_as).Mean());
}

// ------------------------------------------------------------------ Runner

TEST(RunnerTest, ForEachCaseCyclesTypesAndSeeds) {
  EvalOptions options;
  options.num_cases = 4;
  options.seed = 9;
  options.case_options = SmallCase(workload::AnomalyType::kBusinessSpike, 0);
  options.types = {workload::AnomalyType::kBusinessSpike,
                   workload::AnomalyType::kPoorSql};
  std::vector<workload::AnomalyType> seen;
  ForEachCase(options, [&](size_t index, const AnomalyCaseData& data) {
    (void)index;
    seen.push_back(data.type);
  });
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0], workload::AnomalyType::kBusinessSpike);
  EXPECT_EQ(seen[1], workload::AnomalyType::kPoorSql);
  EXPECT_EQ(seen[2], workload::AnomalyType::kBusinessSpike);
  EXPECT_EQ(seen[3], workload::AnomalyType::kPoorSql);
}

TEST(RunnerTest, MakeDiagnosisInputWiresEverything) {
  const AnomalyCaseData data =
      GenerateCase(SmallCase(workload::AnomalyType::kPoorSql, 10));
  const core::DiagnosisInput input = MakeDiagnosisInput(data);
  EXPECT_EQ(input.logs, &data.logs);
  EXPECT_EQ(input.history, &data.history);
  EXPECT_EQ(input.anomaly_start_sec, data.anomaly_start());
  EXPECT_EQ(input.anomaly_end_sec, data.anomaly_end());
  EXPECT_EQ(input.helper_metrics.size(), 4u);
  EXPECT_TRUE(input.helper_metrics.count("cpu_usage") > 0);
  EXPECT_TRUE(input.helper_metrics.count("mdl_waits") > 0);
}

TEST(RunnerTest, MethodAccumulatorAggregates) {
  MethodAccumulator acc("m");
  acc.AddRanks(1, 2, 0.5);
  acc.AddRanks(0, 1, 1.5);
  const MethodScores s = acc.Summary();
  EXPECT_EQ(s.name, "m");
  EXPECT_DOUBLE_EQ(s.rsql.hits_at_1, 50.0);
  EXPECT_DOUBLE_EQ(s.hsql.hits_at_5, 100.0);
  EXPECT_DOUBLE_EQ(s.mean_time_sec, 1.0);
}

TEST(RunnerTest, StageTimingAggregateFoldsTraces) {
  StageTimingAggregate agg;
  obs::PipelineTrace first;
  first.total_seconds = 1.0;
  first.stages.push_back(obs::StageTrace{"session_estimation", 0.6, {}});
  first.stages.push_back(obs::StageTrace{"hsql_scoring", 0.4, {}});
  obs::PipelineTrace second;
  second.total_seconds = 2.0;
  second.stages.push_back(obs::StageTrace{"session_estimation", 1.4, {}});
  agg.AddTrace(first);
  agg.AddTrace(second);

  EXPECT_EQ(agg.cases, 2u);
  EXPECT_DOUBLE_EQ(agg.total_seconds, 3.0);
  ASSERT_EQ(agg.stages.size(), 2u);
  EXPECT_EQ(agg.stages[0].name, "session_estimation");
  EXPECT_DOUBLE_EQ(agg.stages[0].total_seconds, 2.0);
  EXPECT_DOUBLE_EQ(agg.stages[0].max_seconds, 1.4);
  EXPECT_EQ(agg.stages[0].cases, 2u);
  EXPECT_EQ(agg.stages[1].name, "hsql_scoring");
  EXPECT_EQ(agg.stages[1].cases, 1u);

  const std::string table = agg.ToTable();
  EXPECT_NE(table.find("session_estimation"), std::string::npos);
  EXPECT_NE(table.find("hsql_scoring"), std::string::npos);
}

TEST(RunnerTest, EvaluationCollectsStageTimings) {
  EvalOptions options;
  options.num_cases = 2;
  options.seed = 5;
  options.case_options = SmallCase(workload::AnomalyType::kBusinessSpike, 0);
  StageTimingAggregate agg;
  const auto scores =
      RunOverallEvaluation(options, core::DiagnoserOptions{}, &agg);
  EXPECT_FALSE(scores.empty());
  EXPECT_EQ(agg.cases, 2u);
  ASSERT_FALSE(agg.stages.empty());
  EXPECT_EQ(agg.stages[0].name, "session_estimation");
  EXPECT_EQ(agg.stages[0].cases, 2u);
}

}  // namespace
}  // namespace pinsql::eval
