#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fleet/fleet_service.h"
#include "online/replay.h"
#include "serve/server.h"
#include "util/json.h"

namespace pinsql::serve {
namespace {

// --- Minimal blocking HTTP client ----------------------------------------

struct ClientResponse {
  int status = 0;
  std::string headers;
  std::string body;
  bool ok = false;
};

int ConnectTo(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

/// Reads one HTTP/1.1 response (Content-Length framing) off `fd`.
/// `carry` holds bytes read past the response (pipelined replies), so
/// calling again with the same carry parses the next response.
ClientResponse ReadResponse(int fd, std::string* carry = nullptr) {
  ClientResponse response;
  std::string local;
  std::string& buffer = carry != nullptr ? *carry : local;
  char chunk[4096];
  size_t header_end;
  while ((header_end = buffer.find("\r\n\r\n")) == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return response;
    }
    buffer.append(chunk, static_cast<size_t>(n));
    if (buffer.size() > 1 << 20) return response;
  }
  response.headers = buffer.substr(0, header_end);
  response.status = std::atoi(response.headers.c_str() + 9);
  size_t content_length = 0;
  const size_t cl = response.headers.find("Content-Length: ");
  if (cl != std::string::npos) {
    content_length = static_cast<size_t>(
        std::atoll(response.headers.c_str() + cl + 16));
  }
  buffer.erase(0, header_end + 4);
  while (buffer.size() < content_length) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return response;
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }
  response.body = buffer.substr(0, content_length);
  buffer.erase(0, content_length);
  response.ok = true;
  return response;
}

ClientResponse Request(uint16_t port, const std::string& method,
                       const std::string& target, const std::string& tenant,
                       const std::string& body = "") {
  const int fd = ConnectTo(port);
  ClientResponse response;
  if (fd < 0) return response;
  std::string wire = method + " " + target + " HTTP/1.1\r\n";
  if (!tenant.empty()) wire += "X-Pinsql-Tenant: " + tenant + "\r\n";
  if (!body.empty()) {
    wire += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  wire += "Connection: close\r\n\r\n" + body;
  if (SendAll(fd, wire)) response = ReadResponse(fd);
  ::close(fd);
  return response;
}

// --- Synthetic incident (same shape as the online replay tests) ----------

online::PerfSample Sample(int64_t sec, double session) {
  online::PerfSample s;
  s.sec = sec;
  s.active_session = session;
  s.cpu_usage = session * 0.05;
  s.iops_usage = session * 0.1;
  return s;
}

online::ReplayLog SyntheticIncident() {
  online::ReplayLog log;
  const int64_t t0 = 100'000;
  const int64_t onset = t0 + 200;
  const int64_t t1 = onset + 120;
  for (int64_t sec = t0; sec < t1; ++sec) {
    const bool anomalous = sec >= onset;
    log.samples.push_back(Sample(sec, anomalous ? 380.0 : 4.0));
    uint64_t state = static_cast<uint64_t>(sec) * 2654435761ULL + 17;
    const int base = 6;
    const int extra = anomalous ? 40 : 0;
    for (int i = 0; i < base + extra; ++i) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      QueryLogRecord r;
      r.sql_id = i < base ? 1 + (state >> 33) % 4 : 9;
      r.arrival_ms = sec * 1000 + static_cast<int64_t>((state >> 13) % 1000);
      r.response_ms = i < base ? 2.0 : 450.0;
      r.examined_rows = i < base ? 20 : 500'000;
      log.records.push_back(r);
    }
  }
  return log;
}

void RegisterCatalog(fleet::FleetService* fleet) {
  for (uint64_t id = 1; id <= 4; ++id) {
    TemplateCatalogEntry entry;
    entry.template_text = "SELECT * FROM t WHERE k = ?";
    entry.kind = sqltpl::StatementKind::kSelect;
    entry.tables = {"t"};
    fleet->RegisterTemplateFleetWide(id, entry);
  }
  TemplateCatalogEntry heavy;
  heavy.template_text = "SELECT * FROM big ORDER BY v";
  heavy.kind = sqltpl::StatementKind::kSelect;
  heavy.tables = {"big"};
  fleet->RegisterTemplateFleetWide(9, heavy);
}

LogStore CatalogStore() {
  LogStore catalog;
  for (uint64_t id = 1; id <= 4; ++id) {
    TemplateCatalogEntry entry;
    entry.template_text = "SELECT * FROM t WHERE k = ?";
    entry.kind = sqltpl::StatementKind::kSelect;
    entry.tables = {"t"};
    catalog.RegisterTemplate(id, entry);
  }
  TemplateCatalogEntry heavy;
  heavy.template_text = "SELECT * FROM big ORDER BY v";
  heavy.kind = sqltpl::StatementKind::kSelect;
  heavy.tables = {"big"};
  catalog.RegisterTemplate(9, heavy);
  return catalog;
}

std::string BatchBody(uint32_t instance,
                      const std::vector<QueryLogRecord>& records,
                      const std::vector<online::PerfSample>& samples) {
  Json root = Json::MakeObject();
  root.Set("instance", static_cast<int64_t>(instance));
  Json recs = Json::MakeArray();
  for (const auto& r : records) {
    Json item = Json::MakeObject();
    item.Set("arrival_ms", r.arrival_ms);
    item.Set("sql_id", static_cast<int64_t>(r.sql_id));
    item.Set("response_ms", r.response_ms);
    item.Set("examined_rows", r.examined_rows);
    recs.Append(std::move(item));
  }
  root.Set("records", std::move(recs));
  Json samps = Json::MakeArray();
  for (const auto& s : samples) {
    Json item = Json::MakeObject();
    item.Set("sec", s.sec);
    item.Set("active_session", s.active_session);
    item.Set("cpu_usage", s.cpu_usage);
    item.Set("iops_usage", s.iops_usage);
    item.Set("row_lock_waits", s.row_lock_waits);
    item.Set("mdl_waits", s.mdl_waits);
    samps.Append(std::move(item));
  }
  root.Set("samples", std::move(samps));
  return root.Dump();
}

struct Stack {
  std::unique_ptr<fleet::FleetService> fleet;
  std::unique_ptr<Server> server;

  Stack() = default;
  Stack(Stack&&) = default;
  Stack& operator=(Stack&&) = default;
  ~Stack() {
    if (server) server->Stop();
    if (fleet) fleet->Stop();
  }
};

Stack MakeStack(ServerOptions soptions = {},
                std::vector<fleet::FleetInstanceSpec> specs = {{1, 0}}) {
  Stack stack;
  fleet::FleetOptions foptions;
  stack.fleet =
      std::make_unique<fleet::FleetService>(specs, foptions);
  RegisterCatalog(stack.fleet.get());
  stack.fleet->Start();
  if (soptions.admission.tenants.empty()) {
    TenantQuota quota;
    quota.records_per_sec = 1e9;
    quota.record_burst = 1e9;
    quota.bytes_per_sec = 1e12;
    quota.byte_burst = 1e12;
    quota.queue_capacity_batches = 100'000;
    for (const auto& spec : specs) quota.instances.push_back(spec.instance_id);
    soptions.admission.tenants["acme"] = quota;
  }
  stack.server = std::make_unique<Server>(stack.fleet.get(), soptions);
  return stack;
}

// --- Tests ---------------------------------------------------------------

TEST(ServeServerTest, HealthAndMetricsEndpoints) {
  Stack stack = MakeStack();
  ASSERT_TRUE(stack.server->Start().ok());
  const uint16_t port = stack.server->port();
  ASSERT_GT(port, 0);

  const ClientResponse health = Request(port, "GET", "/v1/healthz", "");
  ASSERT_TRUE(health.ok);
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"status\":\"ok\""), std::string::npos);

  const ClientResponse metrics = Request(port, "GET", "/v1/metricsz", "");
  ASSERT_TRUE(metrics.ok);
  EXPECT_EQ(metrics.status, 200);
  // The unified drop ledger is present with both layers.
  auto parsed = Json::Parse(metrics.body);
  ASSERT_TRUE(parsed.ok()) << metrics.body.substr(0, 200);
  const Json* drops = parsed.value().Find("drops");
  ASSERT_NE(drops, nullptr);
  EXPECT_NE(drops->Find("admission"), nullptr);
  EXPECT_NE(drops->Find("ingest"), nullptr);
  EXPECT_NE(parsed.value().Find("admission"), nullptr);
  EXPECT_NE(parsed.value().Find("server"), nullptr);

  const ClientResponse missing = Request(port, "GET", "/v1/nope", "");
  EXPECT_EQ(missing.status, 404);
}

TEST(ServeServerTest, TenantAuthIsEnforcedOverTheWire) {
  Stack stack = MakeStack();
  ASSERT_TRUE(stack.server->Start().ok());
  const uint16_t port = stack.server->port();

  // No tenant header → 403 at pre-admission, before the body is read.
  ClientResponse response =
      Request(port, "POST", "/v1/ingest", "", "{\"instance\":1}");
  EXPECT_EQ(response.status, 403);
  response = Request(port, "POST", "/v1/ingest", "mallory",
                     "{\"instance\":1}");
  EXPECT_EQ(response.status, 403);
  response = Request(port, "GET", "/v1/reports", "mallory");
  EXPECT_EQ(response.status, 403);
  // Authorized tenant, forbidden instance.
  response = Request(port, "POST", "/v1/ingest", "acme",
                     "{\"instance\":42,\"records\":[]}");
  EXPECT_EQ(response.status, 403);
}

TEST(ServeServerTest, RateLimitAnswers429WithRetryAfter) {
  ServerOptions soptions;
  TenantQuota tight;
  tight.records_per_sec = 10.0;
  tight.record_burst = 10.0;
  tight.bytes_per_sec = 1e9;
  tight.byte_burst = 1e9;
  tight.instances = {1};
  soptions.admission.tenants["acme"] = tight;
  Stack stack = MakeStack(soptions);
  ASSERT_TRUE(stack.server->Start().ok());
  const uint16_t port = stack.server->port();

  std::vector<QueryLogRecord> records(10);
  for (size_t i = 0; i < records.size(); ++i) {
    records[i].arrival_ms = 1'000'000 + static_cast<int64_t>(i);
    records[i].sql_id = 1;
    records[i].response_ms = 1.0;
    records[i].examined_rows = 1;
  }
  const std::string body = BatchBody(1, records, {});
  const ClientResponse first =
      Request(port, "POST", "/v1/ingest", "acme", body);
  EXPECT_EQ(first.status, 202);
  const ClientResponse second =
      Request(port, "POST", "/v1/ingest", "acme", body);
  EXPECT_EQ(second.status, 429);
  EXPECT_NE(second.headers.find("Retry-After:"), std::string::npos);
  const auto tenant_stats = stack.server->tenant_stats().at("acme");
  EXPECT_EQ(tenant_stats.dropped_rate_limited, 1u);
}

TEST(ServeServerTest, KeepAlivePipeliningServesSequentialRequests) {
  Stack stack = MakeStack();
  ASSERT_TRUE(stack.server->Start().ok());
  const int fd = ConnectTo(stack.server->port());
  ASSERT_GE(fd, 0);
  // Two pipelined GETs on one connection.
  ASSERT_TRUE(SendAll(fd,
                      "GET /v1/healthz HTTP/1.1\r\n\r\n"
                      "GET /v1/healthz HTTP/1.1\r\nConnection: close\r\n\r\n"));
  std::string carry;
  const ClientResponse first = ReadResponse(fd, &carry);
  EXPECT_EQ(first.status, 200);
  EXPECT_NE(first.headers.find("Connection: keep-alive"), std::string::npos);
  const ClientResponse second = ReadResponse(fd, &carry);
  EXPECT_EQ(second.status, 200);
  EXPECT_NE(second.headers.find("Connection: close"), std::string::npos);
  ::close(fd);
}

TEST(ServeServerTest, PartialFlushDoesNotReplayOrDuplicateResponses) {
  ServerOptions soptions;
  soptions.socket_send_buffer_bytes = 2048;  // force partial flushes
  Stack stack = MakeStack(soptions);
  ASSERT_TRUE(stack.server->Start().ok());
  const uint16_t port = stack.server->port();

  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(fd, 0);
  int rcvbuf = 2048;  // tiny receive window: responses cannot drain
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  // Pipeline large responses (metricsz) ahead of distinguishable small
  // ones. The server hits EAGAIN mid-response and must resume via POLLOUT
  // without re-processing an already-answered request — a stuck parser
  // here used to replay request 1 forever and the 404 would never arrive.
  std::string wire;
  constexpr int kBig = 16;
  for (int i = 0; i < kBig; ++i) {
    wire += "GET /v1/metricsz HTTP/1.1\r\n\r\n";
  }
  wire += "GET /v1/nope HTTP/1.1\r\n\r\n";
  wire += "GET /v1/healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
  ASSERT_TRUE(SendAll(fd, wire));
  // Give the server time to attempt (and partially fail) the flushes
  // before we start draining.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  std::string carry;
  for (int i = 0; i < kBig; ++i) {
    const ClientResponse response = ReadResponse(fd, &carry);
    ASSERT_TRUE(response.ok) << "response " << i;
    EXPECT_EQ(response.status, 200) << "response " << i;
  }
  const ClientResponse not_found = ReadResponse(fd, &carry);
  ASSERT_TRUE(not_found.ok);
  EXPECT_EQ(not_found.status, 404);
  const ClientResponse last = ReadResponse(fd, &carry);
  ASSERT_TRUE(last.ok);
  EXPECT_EQ(last.status, 200);
  EXPECT_NE(last.headers.find("Connection: close"), std::string::npos);
  ::close(fd);

  const ServerStats stats = stack.server->stats();
  EXPECT_EQ(stats.requests_received, static_cast<uint64_t>(kBig) + 2);
  EXPECT_EQ(stats.responses_sent, static_cast<uint64_t>(kBig) + 2);
}

TEST(ServeServerTest, PipelinedRequestSpanningMultipleReadsIsNotLost) {
  Stack stack = MakeStack();
  ASSERT_TRUE(stack.server->Start().ok());
  const int fd = ConnectTo(stack.server->port());
  ASSERT_GE(fd, 0);

  // A tiny GET followed, in the same burst, by an ingest POST whose body
  // exceeds the server's 16 KiB read chunk: the POST's bytes span several
  // recv() calls after the GET already completed, and must wait in the
  // kernel buffer — not be fed into (and discarded by) a complete parser.
  std::vector<QueryLogRecord> records(400);
  for (size_t i = 0; i < records.size(); ++i) {
    records[i].arrival_ms = 700'000'000 + static_cast<int64_t>(i);
    records[i].sql_id = 1 + i % 4;
    records[i].response_ms = 2.0;
    records[i].examined_rows = 10;
  }
  const std::string body = BatchBody(1, records, {});
  ASSERT_GT(body.size(), 16u * 1024);
  std::string wire = "GET /v1/healthz HTTP/1.1\r\n\r\n";
  wire +=
      "POST /v1/ingest HTTP/1.1\r\nX-Pinsql-Tenant: acme\r\n"
      "Content-Length: " +
      std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" + body;
  ASSERT_TRUE(SendAll(fd, wire));

  std::string carry;
  const ClientResponse first = ReadResponse(fd, &carry);
  ASSERT_TRUE(first.ok);
  EXPECT_EQ(first.status, 200);
  const ClientResponse second = ReadResponse(fd, &carry);
  ASSERT_TRUE(second.ok);
  EXPECT_EQ(second.status, 202);
  ::close(fd);
}

TEST(ServeServerTest, MalformedRequestsGetCleanErrors) {
  Stack stack = MakeStack();
  ASSERT_TRUE(stack.server->Start().ok());
  const uint16_t port = stack.server->port();

  const int fd = ConnectTo(port);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(SendAll(fd, "NOT-HTTP garbage\r\n\r\n"));
  const ClientResponse garbage = ReadResponse(fd);
  EXPECT_EQ(garbage.status, 400);
  ::close(fd);

  const int fd2 = ConnectTo(port);
  ASSERT_GE(fd2, 0);
  ASSERT_TRUE(SendAll(fd2, "GET / HTTP/3.0\r\n\r\n"));
  EXPECT_EQ(ReadResponse(fd2).status, 505);
  ::close(fd2);

  EXPECT_GE(stack.server->stats().parse_errors, 2u);
}

TEST(ServeServerTest, EndToEndIncidentDiagnosisAndReplayFingerprint) {
  ServerOptions soptions;
  soptions.capture_accepted = true;
  Stack stack = MakeStack(soptions);
  ASSERT_TRUE(stack.server->Start().ok());
  const uint16_t port = stack.server->port();

  // Stream the incident second by second: each request carries one
  // second's records plus its sample, like a per-second agent flush.
  const online::ReplayLog incident = SyntheticIncident();
  size_t cursor = 0;
  for (const online::PerfSample& sample : incident.samples) {
    std::vector<QueryLogRecord> second_records;
    const int64_t end_ms = (sample.sec + 1) * 1000;
    while (cursor < incident.records.size() &&
           incident.records[cursor].arrival_ms < end_ms) {
      second_records.push_back(incident.records[cursor]);
      ++cursor;
    }
    const ClientResponse response =
        Request(port, "POST", "/v1/ingest", "acme",
                BatchBody(1, second_records, {sample}));
    ASSERT_EQ(response.status, 202) << "sec " << sample.sec;
  }

  // The pump delivers asynchronously; poll /v1/reports for the diagnosis.
  bool got_report = false;
  Json report;
  for (int attempt = 0; attempt < 200 && !got_report; ++attempt) {
    const ClientResponse response =
        Request(port, "GET", "/v1/reports?limit=10", "acme");
    ASSERT_TRUE(response.ok);
    ASSERT_EQ(response.status, 200);
    auto parsed = Json::Parse(response.body);
    ASSERT_TRUE(parsed.ok());
    const Json* reports = parsed.value().Find("reports");
    ASSERT_NE(reports, nullptr);
    if (!reports->AsArray().empty()) {
      report = reports->AsArray().front();
      got_report = true;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  ASSERT_TRUE(got_report) << "no diagnosis surfaced via /v1/reports";
  EXPECT_EQ(report.GetNumberOr("instance", -1), 1.0);
  EXPECT_TRUE(report.GetBoolOr("ok", false));
  const Json* inner = report.Find("report");
  ASSERT_NE(inner, nullptr);
  // The root-cause ranking pinpoints the flooding template (sql_id 9).
  const std::string dumped = inner->Dump();
  EXPECT_NE(dumped.find("9"), std::string::npos);

  // Triggers endpoint sees the same trigger, tenant-scoped.
  const ClientResponse triggers = Request(port, "GET", "/v1/triggers", "acme");
  ASSERT_EQ(triggers.status, 200);
  auto tparsed = Json::Parse(triggers.body);
  ASSERT_TRUE(tparsed.ok());
  EXPECT_FALSE(tparsed.value().Find("triggers")->AsArray().empty());

  // Triggers/repairs honor the same limit parameter as reports, so their
  // responses stay bounded no matter how much history is cached.
  const ClientResponse limited =
      Request(port, "GET", "/v1/triggers?limit=1", "acme");
  ASSERT_EQ(limited.status, 200);
  auto lparsed = Json::Parse(limited.body);
  ASSERT_TRUE(lparsed.ok());
  EXPECT_LE(lparsed.value().Find("triggers")->AsArray().size(), 1u);

  // Repairs endpoint answers (events may be empty: fleet is diagnose-only).
  const ClientResponse repairs =
      Request(port, "GET", "/v1/repairs?limit=5", "acme");
  EXPECT_EQ(repairs.status, 200);

  // Graceful stop, then verify the determinism contract: the accepted
  // stream replays bit-identically at 1 and 4 ingest threads.
  stack.server->Stop();
  const auto streams = stack.server->accepted_streams();
  ASSERT_EQ(streams.count(1u), 1u);
  const online::ReplayLog& accepted = streams.at(1);
  EXPECT_EQ(accepted.records.size(), incident.records.size());
  EXPECT_EQ(accepted.samples.size(), incident.samples.size());

  const LogStore catalog = CatalogStore();
  online::ReplayOptions roptions;
  roptions.num_ingest_threads = 1;
  const std::string fp1 =
      online::RunReplay(accepted, catalog, roptions).Fingerprint();
  roptions.num_ingest_threads = 4;
  const std::string fp4 =
      online::RunReplay(accepted, catalog, roptions).Fingerprint();
  EXPECT_EQ(fp1, fp4);
  EXPECT_FALSE(fp1.empty());
}

TEST(ServeServerTest, StopDrainsAcceptedBatchesIntoTheFleet) {
  ServerOptions soptions;
  soptions.advance_interval_ms = 1000;  // pump likely idle until Stop
  Stack stack = MakeStack(soptions);
  ASSERT_TRUE(stack.server->Start().ok());
  const uint16_t port = stack.server->port();

  std::vector<QueryLogRecord> records(20);
  for (size_t i = 0; i < records.size(); ++i) {
    records[i].arrival_ms = 500'000'000 + static_cast<int64_t>(i * 10);
    records[i].sql_id = 1 + i % 4;
    records[i].response_ms = 2.0;
    records[i].examined_rows = 10;
  }
  const ClientResponse response =
      Request(port, "POST", "/v1/ingest", "acme",
              BatchBody(1, records, {Sample(500'000, 4.0)}));
  ASSERT_EQ(response.status, 202);

  stack.server->Stop();
  // Everything accepted was delivered before Stop() returned.
  const ServerStats stats = stack.server->stats();
  EXPECT_EQ(stats.records_delivered, records.size());
  EXPECT_EQ(stats.samples_delivered, 1u);
  const fleet::FleetStats fstats = stack.fleet->stats();
  EXPECT_EQ(fstats.ingest.records_enqueued, records.size());

  // A second Stop is a no-op.
  stack.server->Stop();
}

TEST(ServeServerTest, ConnectionTableIsBounded) {
  ServerOptions soptions;
  soptions.max_connections = 4;
  Stack stack = MakeStack(soptions);
  ASSERT_TRUE(stack.server->Start().ok());
  const uint16_t port = stack.server->port();

  std::vector<int> fds;
  for (int i = 0; i < 12; ++i) {
    const int fd = ConnectTo(port);
    if (fd >= 0) fds.push_back(fd);
  }
  // Give the event loop time to accept/reject the backlog.
  for (int attempt = 0; attempt < 100; ++attempt) {
    if (stack.server->stats().connections_rejected_table_full > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GT(stack.server->stats().connections_rejected_table_full, 0u);
  for (int fd : fds) ::close(fd);
}

}  // namespace
}  // namespace pinsql::serve
