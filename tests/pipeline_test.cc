#include <gtest/gtest.h>

#include "pipeline/message_queue.h"
#include "pipeline/stream_aggregator.h"
#include "pipeline/template_metrics.h"

namespace pinsql {
namespace {

QueryLogRecord Rec(int64_t arrival_ms, uint64_t sql_id, double response,
                   int64_t rows) {
  QueryLogRecord r;
  r.arrival_ms = arrival_ms;
  r.sql_id = sql_id;
  r.response_ms = response;
  r.examined_rows = rows;
  return r;
}

// ----------------------------------------------------------- MessageQueue

TEST(MessageQueueTest, PublishPartitionsByKey) {
  pipeline::Topic<int> topic("t", 4);
  for (int i = 0; i < 100; ++i) {
    topic.Publish(static_cast<uint64_t>(i), i);
  }
  EXPECT_EQ(topic.TotalSize(), 100u);
  // Key k lands in partition k % 4.
  EXPECT_EQ(topic.Partition(1)[0], 1);
  EXPECT_EQ(topic.Partition(3)[0], 3);
}

TEST(MessageQueueTest, ConsumerDrainsEverythingOnce) {
  pipeline::Topic<int> topic("t", 3);
  for (int i = 0; i < 10; ++i) topic.Publish(static_cast<uint64_t>(i), i);
  pipeline::Consumer<int> consumer(&topic);
  EXPECT_EQ(consumer.Lag(), 10u);
  auto batch1 = consumer.Poll(4);
  EXPECT_EQ(batch1.size(), 4u);
  EXPECT_EQ(consumer.Lag(), 6u);
  auto batch2 = consumer.Poll(100);
  EXPECT_EQ(batch2.size(), 6u);
  EXPECT_EQ(consumer.Lag(), 0u);
  EXPECT_TRUE(consumer.Poll(10).empty());
}

TEST(MessageQueueTest, PerPartitionOrderIsFifo) {
  pipeline::Topic<int> topic("t", 2);
  topic.Publish(0, 10);
  topic.Publish(0, 20);
  topic.Publish(0, 30);
  pipeline::Consumer<int> consumer(&topic);
  const auto all = consumer.Poll(100);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0], 10);
  EXPECT_EQ(all[1], 20);
  EXPECT_EQ(all[2], 30);
}

TEST(MessageQueueTest, SeekToBeginningReconsumes) {
  pipeline::Topic<int> topic("t", 1);
  topic.Publish(0, 1);
  pipeline::Consumer<int> consumer(&topic);
  EXPECT_EQ(consumer.Poll(10).size(), 1u);
  consumer.SeekToBeginning();
  EXPECT_EQ(consumer.Poll(10).size(), 1u);
}

// ---------------------------------------------------- TemplateMetricsStore

TEST(TemplateMetricsTest, AccumulateAggregatesPerSecond) {
  TemplateMetricsStore store(100, 110);
  store.Accumulate(Rec(100'500, 7, 20.0, 100));
  store.Accumulate(Rec(100'900, 7, 30.0, 50));
  store.Accumulate(Rec(101'000, 7, 5.0, 10));
  const TemplateSeries* series = store.Find(7);
  ASSERT_NE(series, nullptr);
  EXPECT_DOUBLE_EQ(series->execution_count.AtTime(100), 2.0);
  EXPECT_DOUBLE_EQ(series->total_response_ms.AtTime(100), 50.0);
  EXPECT_DOUBLE_EQ(series->examined_rows.AtTime(100), 150.0);
  EXPECT_DOUBLE_EQ(series->execution_count.AtTime(101), 1.0);
}

TEST(TemplateMetricsTest, RecordsOutsideWindowIgnored) {
  TemplateMetricsStore store(100, 110);
  store.Accumulate(Rec(99'999, 1, 1.0, 1));
  store.Accumulate(Rec(110'000, 1, 1.0, 1));
  EXPECT_EQ(store.Find(1), nullptr);
  EXPECT_EQ(store.num_templates(), 0u);
}

TEST(TemplateMetricsTest, SortedIterationIsDeterministic) {
  TemplateMetricsStore store(0, 10);
  store.Accumulate(Rec(500, 30, 1, 1));
  store.Accumulate(Rec(500, 10, 1, 1));
  store.Accumulate(Rec(500, 20, 1, 1));
  const auto all = store.AllSorted();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0]->sql_id, 10u);
  EXPECT_EQ(all[1]->sql_id, 20u);
  EXPECT_EQ(all[2]->sql_id, 30u);
  EXPECT_EQ(store.SqlIdsSorted(), (std::vector<uint64_t>{10, 20, 30}));
}

TEST(TemplateMetricsTest, TotalResponseAcrossTemplates) {
  TemplateMetricsStore store(0, 2);
  store.Accumulate(Rec(0, 1, 10.0, 1));
  store.Accumulate(Rec(0, 2, 20.0, 1));
  store.Accumulate(Rec(1000, 1, 5.0, 1));
  const TimeSeries total = store.TotalResponseAcrossTemplates();
  EXPECT_DOUBLE_EQ(total[0], 30.0);
  EXPECT_DOUBLE_EQ(total[1], 5.0);
}

TEST(TemplateMetricsTest, ResampleToMinute) {
  TemplateMetricsStore store(0, 120);
  for (int64_t s = 0; s < 120; ++s) {
    store.Accumulate(Rec(s * 1000, 9, 2.0, 3));
  }
  const TemplateMetricsStore coarse = store.Resample(60);
  const TemplateSeries* series = coarse.Find(9);
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->execution_count.size(), 2u);
  EXPECT_DOUBLE_EQ(series->execution_count[0], 60.0);
  EXPECT_DOUBLE_EQ(series->total_response_ms[1], 120.0);
  EXPECT_EQ(coarse.interval_sec(), 60);
}

// --------------------------------------------------------- StreamAggregator

TEST(StreamAggregatorTest, EndToEndKafkaFlinkPath) {
  pipeline::Topic<QueryLogRecord> topic("query_logs", 4);
  for (int64_t s = 0; s < 10; ++s) {
    for (int k = 0; k < 3; ++k) {
      topic.Publish(7, Rec(s * 1000 + k * 100, 7, 10.0, 5));
    }
  }
  LogStore archive;
  StreamAggregator aggregator(&topic, 0, 10);
  aggregator.AttachLogStore(&archive);
  const size_t consumed = aggregator.PumpAll();
  EXPECT_EQ(consumed, 30u);
  EXPECT_EQ(archive.size(), 30u);
  const TemplateSeries* series = aggregator.metrics().Find(7);
  ASSERT_NE(series, nullptr);
  EXPECT_DOUBLE_EQ(series->execution_count.Sum(), 30.0);
  EXPECT_DOUBLE_EQ(series->execution_count[0], 3.0);
}

TEST(StreamAggregatorTest, PumpOnceRespectsBatchSize) {
  pipeline::Topic<QueryLogRecord> topic("query_logs", 2);
  for (int i = 0; i < 100; ++i) topic.Publish(1, Rec(0, 1, 1.0, 1));
  StreamAggregator aggregator(&topic, 0, 10);
  EXPECT_EQ(aggregator.PumpOnce(10), 10u);
  EXPECT_EQ(aggregator.PumpOnce(1000), 90u);
  EXPECT_EQ(aggregator.PumpOnce(), 0u);
}

TEST(StreamAggregatorTest, AggregateWindowMatchesStreaming) {
  LogStore store;
  for (int64_t s = 0; s < 20; ++s) {
    store.Append(Rec(1000 * s + 100, 1, 4.0, 2));
  }
  const TemplateMetricsStore window = AggregateWindow(store, 5, 15);
  const TemplateSeries* series = window.Find(1);
  ASSERT_NE(series, nullptr);
  EXPECT_DOUBLE_EQ(series->execution_count.Sum(), 10.0);
  EXPECT_EQ(window.start_sec(), 5);
  EXPECT_EQ(window.end_sec(), 15);
}

}  // namespace
}  // namespace pinsql
