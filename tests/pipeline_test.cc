#include <gtest/gtest.h>

#include "pipeline/message_queue.h"
#include "pipeline/stream_aggregator.h"
#include "pipeline/template_metrics.h"

namespace pinsql {
namespace {

QueryLogRecord Rec(int64_t arrival_ms, uint64_t sql_id, double response,
                   int64_t rows) {
  QueryLogRecord r;
  r.arrival_ms = arrival_ms;
  r.sql_id = sql_id;
  r.response_ms = response;
  r.examined_rows = rows;
  return r;
}

// ----------------------------------------------------------- MessageQueue

TEST(MessageQueueTest, PublishPartitionsByKey) {
  pipeline::Topic<int> topic("t", 4);
  for (int i = 0; i < 100; ++i) {
    topic.Publish(static_cast<uint64_t>(i), i);
  }
  EXPECT_EQ(topic.TotalSize(), 100u);
  // Key k lands in partition k % 4.
  EXPECT_EQ(topic.Partition(1)[0], 1);
  EXPECT_EQ(topic.Partition(3)[0], 3);
}

TEST(MessageQueueTest, ConsumerDrainsEverythingOnce) {
  pipeline::Topic<int> topic("t", 3);
  for (int i = 0; i < 10; ++i) topic.Publish(static_cast<uint64_t>(i), i);
  pipeline::Consumer<int> consumer(&topic);
  EXPECT_EQ(consumer.Lag(), 10u);
  auto batch1 = consumer.Poll(4);
  EXPECT_EQ(batch1.size(), 4u);
  EXPECT_EQ(consumer.Lag(), 6u);
  auto batch2 = consumer.Poll(100);
  EXPECT_EQ(batch2.size(), 6u);
  EXPECT_EQ(consumer.Lag(), 0u);
  EXPECT_TRUE(consumer.Poll(10).empty());
}

TEST(MessageQueueTest, PerPartitionOrderIsFifo) {
  pipeline::Topic<int> topic("t", 2);
  topic.Publish(0, 10);
  topic.Publish(0, 20);
  topic.Publish(0, 30);
  pipeline::Consumer<int> consumer(&topic);
  const auto all = consumer.Poll(100);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0], 10);
  EXPECT_EQ(all[1], 20);
  EXPECT_EQ(all[2], 30);
}

TEST(MessageQueueTest, SeekToBeginningReconsumes) {
  pipeline::Topic<int> topic("t", 1);
  topic.Publish(0, 1);
  pipeline::Consumer<int> consumer(&topic);
  EXPECT_EQ(consumer.Poll(10).size(), 1u);
  consumer.SeekToBeginning();
  EXPECT_EQ(consumer.Poll(10).size(), 1u);
}

// ---------------------------------------------------- TemplateMetricsStore

TEST(TemplateMetricsTest, AccumulateAggregatesPerSecond) {
  TemplateMetricsStore store(100, 110);
  store.Accumulate(Rec(100'500, 7, 20.0, 100));
  store.Accumulate(Rec(100'900, 7, 30.0, 50));
  store.Accumulate(Rec(101'000, 7, 5.0, 10));
  const TemplateSeries* series = store.Find(7);
  ASSERT_NE(series, nullptr);
  EXPECT_DOUBLE_EQ(series->execution_count.AtTime(100), 2.0);
  EXPECT_DOUBLE_EQ(series->total_response_ms.AtTime(100), 50.0);
  EXPECT_DOUBLE_EQ(series->examined_rows.AtTime(100), 150.0);
  EXPECT_DOUBLE_EQ(series->execution_count.AtTime(101), 1.0);
}

TEST(TemplateMetricsTest, RecordsOutsideWindowIgnored) {
  TemplateMetricsStore store(100, 110);
  store.Accumulate(Rec(99'999, 1, 1.0, 1));
  store.Accumulate(Rec(110'000, 1, 1.0, 1));
  EXPECT_EQ(store.Find(1), nullptr);
  EXPECT_EQ(store.num_templates(), 0u);
}

TEST(TemplateMetricsTest, SortedIterationIsDeterministic) {
  TemplateMetricsStore store(0, 10);
  store.Accumulate(Rec(500, 30, 1, 1));
  store.Accumulate(Rec(500, 10, 1, 1));
  store.Accumulate(Rec(500, 20, 1, 1));
  const auto all = store.AllSorted();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0]->sql_id, 10u);
  EXPECT_EQ(all[1]->sql_id, 20u);
  EXPECT_EQ(all[2]->sql_id, 30u);
  EXPECT_EQ(store.SqlIdsSorted(), (std::vector<uint64_t>{10, 20, 30}));
}

TEST(TemplateMetricsTest, TotalResponseAcrossTemplates) {
  TemplateMetricsStore store(0, 2);
  store.Accumulate(Rec(0, 1, 10.0, 1));
  store.Accumulate(Rec(0, 2, 20.0, 1));
  store.Accumulate(Rec(1000, 1, 5.0, 1));
  const TimeSeries total = store.TotalResponseAcrossTemplates();
  EXPECT_DOUBLE_EQ(total[0], 30.0);
  EXPECT_DOUBLE_EQ(total[1], 5.0);
}

TEST(TemplateMetricsTest, ResampleToMinute) {
  TemplateMetricsStore store(0, 120);
  for (int64_t s = 0; s < 120; ++s) {
    store.Accumulate(Rec(s * 1000, 9, 2.0, 3));
  }
  const TemplateMetricsStore coarse = store.Resample(60);
  const TemplateSeries* series = coarse.Find(9);
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->execution_count.size(), 2u);
  EXPECT_DOUBLE_EQ(series->execution_count[0], 60.0);
  EXPECT_DOUBLE_EQ(series->total_response_ms[1], 120.0);
  EXPECT_EQ(coarse.interval_sec(), 60);
}

TEST(TemplateMetricsTest, ResamplePartialTrailingBucketRoundTrips) {
  // Window [0, 130) resampled to 60 s: buckets [0,60), [60,120) and the
  // *partial* [120,130). The partial bucket must survive every assembly
  // path identically.
  TemplateMetricsStore fine(0, 130);
  for (int64_t s = 0; s < 130; ++s) {
    fine.Accumulate(Rec(s * 1000, 9, 2.0, 3));
    fine.Accumulate(Rec(s * 1000 + 500, 4, 1.0, 1));
  }

  const TemplateMetricsStore coarse = fine.Resample(60);
  const TemplateSeries* series = coarse.Find(9);
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->execution_count.size(), 3u);
  EXPECT_DOUBLE_EQ(series->execution_count[0], 60.0);
  EXPECT_DOUBLE_EQ(series->execution_count[1], 60.0);
  EXPECT_DOUBLE_EQ(series->execution_count[2], 10.0);
  EXPECT_DOUBLE_EQ(series->total_response_ms[2], 20.0);

  // Batch aggregation directly at 60 s granularity sees the same records.
  TemplateMetricsStore batch(0, 130, 60);
  for (int64_t s = 0; s < 130; ++s) {
    batch.Accumulate(Rec(s * 1000, 9, 2.0, 3));
    batch.Accumulate(Rec(s * 1000 + 500, 4, 1.0, 1));
  }
  // The trailing records (secs 120..129) land in the partial bucket, not
  // on the floor.
  const TemplateSeries* direct = batch.Find(9);
  ASSERT_NE(direct, nullptr);
  ASSERT_EQ(direct->execution_count.size(), 3u);
  EXPECT_DOUBLE_EQ(direct->execution_count[2], 10.0);

  // Resampled sql_id-sharded halves merged into the batch-aggregated
  // store: bit-identical to batch for every bucket including the tail.
  TemplateMetricsStore shard9(0, 130), shard4(0, 130);
  for (int64_t s = 0; s < 130; ++s) {
    shard9.Accumulate(Rec(s * 1000, 9, 2.0, 3));
    shard4.Accumulate(Rec(s * 1000 + 500, 4, 1.0, 1));
  }
  TemplateMetricsStore merged = shard9.Resample(60);
  merged.MergeFrom(shard4.Resample(60));
  for (uint64_t id : {uint64_t{4}, uint64_t{9}}) {
    const TemplateSeries* a = merged.Find(id);
    const TemplateSeries* b = batch.Find(id);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    ASSERT_EQ(a->execution_count.size(), b->execution_count.size());
    for (size_t i = 0; i < a->execution_count.size(); ++i) {
      EXPECT_EQ(a->execution_count[i], b->execution_count[i]) << i;
      EXPECT_EQ(a->total_response_ms[i], b->total_response_ms[i]) << i;
      EXPECT_EQ(a->examined_rows[i], b->examined_rows[i]) << i;
    }
  }
  // And a disjoint-template merge into a directly-aggregated store with a
  // partial tail must also line up shape-wise (this was the crash /
  // truncation path when sizing used floor).
  TemplateMetricsStore into(0, 130, 60);
  into.Accumulate(Rec(125'000, 9, 2.0, 3));
  into.MergeFrom(shard4.Resample(60));
  ASSERT_NE(into.Find(4), nullptr);
  EXPECT_DOUBLE_EQ(into.Find(4)->execution_count[2], 10.0);
  EXPECT_DOUBLE_EQ(into.Find(9)->execution_count[2], 1.0);
}

TEST(TemplateMetricsTest, SeriesAreContiguousInFirstTouchOrder) {
  TemplateMetricsStore store(0, 10);
  store.Accumulate(Rec(500, 30, 1, 1));
  store.Accumulate(Rec(500, 10, 1, 1));
  store.Accumulate(Rec(1500, 30, 1, 1));
  const auto& series = store.series();
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].sql_id, 30u);
  EXPECT_EQ(series[1].sql_id, 10u);
  EXPECT_EQ(store.Find(30), &series[0]);
  EXPECT_EQ(store.Find(10), &series[1]);
}

// --------------------------------------------------------- StreamAggregator

TEST(StreamAggregatorTest, EndToEndKafkaFlinkPath) {
  pipeline::Topic<QueryLogRecord> topic("query_logs", 4);
  for (int64_t s = 0; s < 10; ++s) {
    for (int k = 0; k < 3; ++k) {
      topic.Publish(7, Rec(s * 1000 + k * 100, 7, 10.0, 5));
    }
  }
  LogStore archive;
  StreamAggregator aggregator(&topic, 0, 10);
  aggregator.AttachLogStore(&archive);
  const size_t consumed = aggregator.PumpAll();
  EXPECT_EQ(consumed, 30u);
  EXPECT_EQ(archive.size(), 30u);
  const TemplateSeries* series = aggregator.metrics().Find(7);
  ASSERT_NE(series, nullptr);
  EXPECT_DOUBLE_EQ(series->execution_count.Sum(), 30.0);
  EXPECT_DOUBLE_EQ(series->execution_count[0], 3.0);
}

TEST(StreamAggregatorTest, PumpOnceRespectsBatchSize) {
  pipeline::Topic<QueryLogRecord> topic("query_logs", 2);
  for (int i = 0; i < 100; ++i) topic.Publish(1, Rec(0, 1, 1.0, 1));
  StreamAggregator aggregator(&topic, 0, 10);
  EXPECT_EQ(aggregator.PumpOnce(10), 10u);
  EXPECT_EQ(aggregator.PumpOnce(1000), 90u);
  EXPECT_EQ(aggregator.PumpOnce(), 0u);
}

TEST(StreamAggregatorTest, AggregateWindowMatchesStreaming) {
  LogStore store;
  for (int64_t s = 0; s < 20; ++s) {
    store.Append(Rec(1000 * s + 100, 1, 4.0, 2));
  }
  const TemplateMetricsStore window = AggregateWindow(store, 5, 15);
  const TemplateSeries* series = window.Find(1);
  ASSERT_NE(series, nullptr);
  EXPECT_DOUBLE_EQ(series->execution_count.Sum(), 10.0);
  EXPECT_EQ(window.start_sec(), 5);
  EXPECT_EQ(window.end_sec(), 15);
}

}  // namespace
}  // namespace pinsql
