/// Property-based tests of the simulation engine's conservation laws: for
/// randomized workloads (parameterized over seeds), every arrival finishes
/// exactly once, no lock or session leaks, responses are causal, and the
/// monitor's views are consistent with the event stream.

#include <gtest/gtest.h>

#include "dbsim/engine.h"
#include "dbsim/monitor.h"
#include "util/rng.h"

namespace pinsql::dbsim {
namespace {

std::vector<QueryArrival> RandomArrivals(uint64_t seed, size_t count) {
  Rng rng(seed);
  std::vector<QueryArrival> arrivals;
  arrivals.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    QueryArrival a;
    a.arrival_ms = rng.UniformInt(0, 60'000);
    a.spec.sql_id = static_cast<uint64_t>(rng.UniformInt(1, 40));
    a.spec.cpu_ms = rng.Uniform(0.5, 30.0);
    a.spec.io_ms = rng.Bernoulli(0.3) ? rng.Uniform(0.5, 10.0) : 0.0;
    a.spec.examined_rows = rng.UniformInt(1, 10'000);
    const uint32_t table = static_cast<uint32_t>(rng.UniformInt(0, 4));
    a.spec.locks.push_back(
        {MakeMdlKey(table),
         rng.Bernoulli(0.01) ? LockMode::kExclusive : LockMode::kShared});
    const int row_locks = static_cast<int>(rng.UniformInt(0, 3));
    for (int r = 0; r < row_locks; ++r) {
      a.spec.locks.push_back(
          {MakeRowKey(table, static_cast<uint32_t>(rng.UniformInt(0, 7))),
           rng.Bernoulli(0.4) ? LockMode::kExclusive : LockMode::kShared});
    }
    arrivals.push_back(std::move(a));
  }
  return arrivals;
}

class EnginePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EnginePropertyTest, EveryArrivalFinishesExactlyOnce) {
  SimConfig config;
  config.cpu_cores = 4.0;
  config.lock_wait_timeout_ms = 5'000.0;
  Engine engine(config);
  const auto arrivals = RandomArrivals(GetParam(), 3'000);
  engine.AddArrivals(arrivals);
  engine.RunToCompletion();
  EXPECT_EQ(engine.completed().size(), arrivals.size());
  EXPECT_EQ(engine.ActiveCount(), 0u);
  EXPECT_EQ(engine.InServiceCount(), 0u);
}

TEST_P(EnginePropertyTest, ResponsesAreCausalAndOrdered) {
  SimConfig config;
  config.lock_wait_timeout_ms = 5'000.0;
  Engine engine(config);
  engine.AddArrivals(RandomArrivals(GetParam() * 31 + 7, 2'000));
  engine.RunToCompletion();
  for (const CompletedQuery& q : engine.completed()) {
    EXPECT_GE(q.completion_ms, static_cast<double>(q.arrival_ms));
    EXPECT_GE(q.service_start_ms, static_cast<double>(q.arrival_ms));
    EXPECT_LE(q.service_start_ms, q.completion_ms);
    if (q.outcome == QueryOutcome::kCompleted) {
      // Service lasted at least the raw CPU demand (slowdown >= 1).
      EXPECT_GE(q.completion_ms - q.service_start_ms, q.cpu_ms - 1e-6);
    }
  }
}

TEST_P(EnginePropertyTest, TimeoutsRespectTheConfiguredBound) {
  SimConfig config;
  config.lock_wait_timeout_ms = 2'000.0;
  Engine engine(config);
  engine.AddArrivals(RandomArrivals(GetParam() * 97 + 1, 2'000));
  engine.RunToCompletion();
  for (const CompletedQuery& q : engine.completed()) {
    if (q.outcome == QueryOutcome::kLockTimeout) {
      // An aborted query waited (possibly through several sequential lock
      // queues) and each wait is bounded by the timeout.
      EXPECT_GE(q.response_ms(), config.lock_wait_timeout_ms - 1.0);
    }
  }
}

TEST_P(EnginePropertyTest, MonitorSessionsMatchEventStream) {
  SimConfig config;
  config.lock_wait_timeout_ms = 5'000.0;
  Engine engine(config);
  engine.AddArrivals(RandomArrivals(GetParam() * 13 + 3, 2'000));
  engine.RunToCompletion();
  const auto& completed = engine.completed();

  // The integral of the true instance session must equal the total active
  // time of all non-throttled queries.
  const TimeSeries truth = ComputeTrueInstanceSession(completed, 0, 120);
  double total_active_sec = 0.0;
  for (const CompletedQuery& q : completed) {
    if (q.outcome == QueryOutcome::kThrottled) continue;
    const double begin =
        std::max(0.0, static_cast<double>(q.arrival_ms));
    const double end = std::min(q.completion_ms, 120'000.0);
    total_active_sec += std::max(0.0, end - begin) / 1000.0;
  }
  EXPECT_NEAR(truth.Sum(), total_active_sec, total_active_sec * 1e-6 + 1e-6);

  // Per-template truths sum to the instance truth.
  const auto per_template = ComputeTrueTemplateSessions(completed, 0, 120);
  TimeSeries sum(0, 1, 120);
  for (const auto& [id, series] : per_template) sum.AddInPlace(series);
  for (size_t i = 0; i < sum.size(); ++i) {
    EXPECT_NEAR(sum[i], truth[i], 1e-6);
  }
}

TEST_P(EnginePropertyTest, DeterministicReplay) {
  const auto arrivals = RandomArrivals(GetParam() * 7 + 5, 1'000);
  auto run = [&]() {
    SimConfig config;
    Engine engine(config);
    engine.AddArrivals(arrivals);
    engine.RunToCompletion();
    return engine.TakeCompleted();
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].sql_id, b[i].sql_id);
    EXPECT_DOUBLE_EQ(a[i].completion_ms, b[i].completion_ms);
    EXPECT_EQ(a[i].outcome, b[i].outcome);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnginePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 17, 23, 42));

}  // namespace
}  // namespace pinsql::dbsim
