#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace pinsql::obs {
namespace {

TEST(CounterTest, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetTracksValueAndHighWaterMark) {
  Gauge g;
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.max(), 0);
  g.Set(7);
  g.Set(3);
  // The gauge reads the last value; the max keeps the high-water mark —
  // what "the pool never exceeded its bound" assertions consume.
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(g.max(), 7);
  g.Set(11);
  EXPECT_EQ(g.max(), 11);
  g.Reset();
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.max(), 0);
}

TEST(GaugeTest, RegistrySnapshotAndMacro) {
  MetricsRegistry registry;
  Gauge& g = registry.GetGauge("test.g");
  EXPECT_EQ(&g, &registry.GetGauge("test.g"));
  g.Set(9);
  g.Set(4);
  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.gauges.count("test.g"), 1u);
  EXPECT_EQ(snap.gauges.at("test.g").value, 4);
  EXPECT_EQ(snap.gauges.at("test.g").max, 9);
  EXPECT_NE(snap.ToString().find("test.g"), std::string::npos);
  registry.Reset();
  EXPECT_EQ(g.max(), 0);

  MetricsRegistry::Global().GetGauge("obs_test.gauge").Reset();
  PINSQL_OBS_GAUGE_SET("obs_test.gauge", 5);
  const int64_t value =
      MetricsRegistry::Global().GetGauge("obs_test.gauge").value();
  EXPECT_EQ(value, kEnabled ? 5 : 0);
}

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 holds the value 0; bucket i >= 1 holds [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(7), 3u);
  EXPECT_EQ(Histogram::BucketIndex(8), 4u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  // The top of the range must stay in bounds, not index past the array.
  EXPECT_EQ(Histogram::BucketIndex(std::numeric_limits<uint64_t>::max()),
            Histogram::kNumBuckets - 1);
}

TEST(HistogramTest, RecordAccumulates) {
  Histogram h;
  h.Record(0);
  h.Record(1);
  h.Record(100);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 101u);
  const auto buckets = h.BucketCounts();
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[Histogram::BucketIndex(100)], 1u);
}

TEST(MetricsRegistryTest, StableReferencesAndSnapshot) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("test.a");
  Counter& again = registry.GetCounter("test.a");
  EXPECT_EQ(&a, &again);
  a.Add(3);
  registry.GetHistogram("test.h").Record(5);

  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.count("test.a"), 1u);
  EXPECT_EQ(snap.counters.at("test.a"), 3u);
  ASSERT_EQ(snap.histograms.count("test.h"), 1u);
  EXPECT_EQ(snap.histograms.at("test.h").count, 1u);
  EXPECT_EQ(snap.histograms.at("test.h").sum, 5u);
  EXPECT_FALSE(snap.ToString().empty());

  registry.Reset();
  EXPECT_EQ(a.value(), 0u);  // reference survived the reset
}

TEST(MetricsMacroTest, CountsIntoGlobalRegistryWhenEnabled) {
  MetricsRegistry::Global().GetCounter("obs_test.macro").Reset();
  PINSQL_OBS_COUNT("obs_test.macro", 2);
  PINSQL_OBS_COUNT("obs_test.macro", 1);
  const uint64_t value =
      MetricsRegistry::Global().GetCounter("obs_test.macro").value();
  if (kEnabled) {
    EXPECT_EQ(value, 3u);
  } else {
    EXPECT_EQ(value, 0u);
  }
}

TEST(TraceRecorderTest, RecordsSpansWithAttrs) {
  TraceRecorder recorder;
  {
    Span outer(&recorder, "outer");
    outer.AddAttr("k", "v");
    { Span inner(&recorder, "inner"); }
  }
  if (!kEnabled) {
    EXPECT_EQ(recorder.event_count(), 0u);
    return;
  }
  const std::vector<TraceEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by start time: the outer span opened first.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_GE(events[0].dur_us, events[1].dur_us);
  ASSERT_EQ(events[0].attrs.size(), 1u);
  EXPECT_EQ(events[0].attrs[0].first, "k");
  EXPECT_EQ(events[0].attrs[0].second, "v");
}

TEST(TraceRecorderTest, NullRecorderSpansAreNoops) {
  Span span(nullptr, "nothing");
  span.AddAttr("k", "v");  // must not crash
}

TEST(TraceRecorderTest, CollectsFromThreadPoolWorkers) {
  TraceRecorder recorder;
  util::ThreadPool pool(4);
  constexpr size_t kSpans = 100;
  util::ParallelFor(&pool, kSpans, [&](size_t i) {
    Span span(&recorder, i % 2 == 0 ? "even" : "odd");
  });
  // The ParallelFor barrier joined the workers, so the snapshot is safe.
  if (!kEnabled) {
    EXPECT_EQ(recorder.event_count(), 0u);
    return;
  }
  EXPECT_EQ(recorder.event_count(), kSpans);
  size_t even = 0;
  for (const TraceEvent& e : recorder.Snapshot()) {
    if (e.name == "even") ++even;
  }
  EXPECT_EQ(even, kSpans / 2);
}

TEST(TraceRecorderTest, ChromeJsonParsesBack) {
  TraceRecorder recorder;
  {
    Span span(&recorder, "stage");
    span.AddAttr("items", "7");
  }
  const std::string dump = recorder.ToChromeJson().Dump();
  const StatusOr<Json> parsed = Json::Parse(dump);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Json* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  if (!kEnabled) {
    EXPECT_TRUE(events->AsArray().empty());
    return;
  }
  ASSERT_EQ(events->AsArray().size(), 1u);
  const Json& event = events->AsArray()[0];
  EXPECT_EQ(event.GetStringOr("name", ""), "stage");
  EXPECT_EQ(event.GetStringOr("ph", ""), "X");
  EXPECT_GE(event.GetNumberOr("dur", -1.0), 0.0);
}

TEST(PipelineTraceTest, JsonRoundTrip) {
  PipelineTrace trace;
  trace.total_seconds = 1.25;
  StageTrace stage;
  stage.name = "session_estimation";
  stage.seconds = 0.75;
  stage.counters["session_points"] = 1080;
  stage.counters["templates"] = 42;
  trace.stages.push_back(stage);
  trace.stages.push_back(StageTrace{"hsql_scoring", 0.5, {}});

  const StatusOr<PipelineTrace> back = PipelineTrace::FromJson(trace.ToJson());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, trace);

  const StageTrace* found = back->Find("session_estimation");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->counters.at("session_points"), 1080);
  EXPECT_EQ(back->Find("no_such_stage"), nullptr);
}

TEST(PipelineTraceTest, FromJsonRejectsMalformedInput) {
  EXPECT_FALSE(PipelineTrace::FromJson(Json("not an object")).ok());
  Json obj = Json::MakeObject();
  obj.Set("stages", Json("not an array"));
  EXPECT_FALSE(PipelineTrace::FromJson(obj).ok());
}

TEST(PipelineTraceTest, TableRendersEveryStage) {
  PipelineTrace trace;
  trace.total_seconds = 2.0;
  trace.stages.push_back(StageTrace{"alpha", 1.5, {{"items", 3}}});
  trace.stages.push_back(StageTrace{"beta", 0.5, {}});
  const std::string table = trace.ToTable();
  EXPECT_NE(table.find("alpha"), std::string::npos);
  EXPECT_NE(table.find("beta"), std::string::npos);
  EXPECT_NE(table.find("items=3"), std::string::npos);
}

}  // namespace
}  // namespace pinsql::obs
