#include "util/arena.h"

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <thread>
#include <unordered_map>
#include <vector>

namespace pinsql::util {
namespace {

TEST(ArenaTest, AllocateResolveRoundTrip) {
  Arena arena(1024);
  struct Payload {
    int64_t a;
    double b;
  };
  std::vector<Arena::Handle> handles;
  for (int i = 0; i < 100; ++i) {
    handles.push_back(arena.Create(Payload{i, i * 0.5}));
  }
  for (int i = 0; i < 100; ++i) {
    const Payload* p = arena.Get<Payload>(handles[static_cast<size_t>(i)]);
    EXPECT_EQ(p->a, i);
    EXPECT_DOUBLE_EQ(p->b, i * 0.5);
  }
  const Arena::Stats s = arena.stats();
  EXPECT_EQ(s.live_bytes, 100 * sizeof(Payload));
  EXPECT_GE(s.slabs_allocated, 2u);  // 1600 bytes of payload, 1024-byte slabs
}

TEST(ArenaTest, PointersStableAcrossGrowth) {
  Arena arena(512);
  const Arena::Handle first = arena.Create<int64_t>(42);
  const int64_t* p = arena.Get<int64_t>(first);
  for (int i = 0; i < 10000; ++i) arena.Create<int64_t>(i);
  // Growth opens new slabs; it never moves or invalidates live objects.
  EXPECT_EQ(p, arena.Get<int64_t>(first));
  EXPECT_EQ(*p, 42);
}

TEST(ArenaTest, ReleaseRecyclesEmptySlabs) {
  Arena arena(256);
  std::vector<Arena::Handle> handles;
  for (int i = 0; i < 512; ++i) handles.push_back(arena.Create<int64_t>(i));
  const size_t allocated = arena.stats().slabs_allocated;
  EXPECT_GT(allocated, 10u);
  for (const Arena::Handle h : handles) arena.Release(h, sizeof(int64_t));
  const Arena::Stats s = arena.stats();
  EXPECT_EQ(s.live_bytes, 0u);
  EXPECT_GT(s.slabs_free, 0u);
  EXPECT_GT(s.slabs_recycled, 0u);
  // New allocations reuse recycled slabs instead of growing.
  for (int i = 0; i < 512; ++i) arena.Create<int64_t>(i);
  EXPECT_EQ(arena.stats().slabs_allocated, allocated);
}

TEST(ArenaTest, ClearBulkFreesAndReusesCapacity) {
  Arena arena(256);
  for (int i = 0; i < 1000; ++i) arena.Create<int64_t>(i);
  const size_t allocated = arena.stats().slabs_allocated;
  arena.Clear();
  EXPECT_EQ(arena.stats().live_bytes, 0u);
  EXPECT_EQ(arena.stats().slabs_in_use, 0u);
  for (int i = 0; i < 1000; ++i) arena.Create<int64_t>(i);
  EXPECT_EQ(arena.stats().slabs_allocated, allocated);
}

TEST(ArenaTest, ReleaseFreeSlabsReturnsMemoryAndStaysUsable) {
  Arena arena(256);
  std::vector<Arena::Handle> keep;
  for (int i = 0; i < 1000; ++i) {
    const Arena::Handle h = arena.Create<int64_t>(i);
    if (i % 100 == 0) {
      keep.push_back(h);
    } else {
      arena.Release(h, sizeof(int64_t));
    }
  }
  // Live objects survive the OS release of free slabs.
  const size_t released = arena.ReleaseFreeSlabs();
  (void)released;
  EXPECT_EQ(arena.stats().slabs_free, 0u);
  for (size_t i = 0; i < keep.size(); ++i) {
    EXPECT_EQ(*arena.Get<int64_t>(keep[i]), static_cast<int64_t>(i * 100));
  }
  // Allocation still works after the shrink.
  const Arena::Handle h = arena.Create<int64_t>(7);
  EXPECT_EQ(*arena.Get<int64_t>(h), 7);
  // Clear must not resurrect OS-released slab slots.
  arena.Clear();
  for (int i = 0; i < 1000; ++i) {
    const Arena::Handle h2 = arena.Create<int64_t>(i);
    EXPECT_EQ(*arena.Get<int64_t>(h2), i);
  }
}

TEST(ArenaTest, HighWaterTracksPeak) {
  Arena arena(1024);
  std::vector<Arena::Handle> handles;
  for (int i = 0; i < 100; ++i) handles.push_back(arena.Create<int64_t>(i));
  const size_t peak = arena.stats().high_water_bytes;
  EXPECT_EQ(peak, 100 * sizeof(int64_t));
  for (const Arena::Handle h : handles) arena.Release(h, sizeof(int64_t));
  EXPECT_EQ(arena.stats().live_bytes, 0u);
  EXPECT_EQ(arena.stats().high_water_bytes, peak);
}

TEST(ArenaTest, MixedSizesChurn) {
  // Random alloc/free churn with content verification: catches handle
  // aliasing between live objects when slabs recycle.
  Arena arena(4096);
  std::mt19937 rng(20260809);
  std::unordered_map<uint32_t, std::pair<size_t, unsigned char>> live;
  std::vector<Arena::Handle> order;
  for (int step = 0; step < 20000; ++step) {
    if (live.empty() || rng() % 3 != 0) {
      const size_t bytes = 1 + rng() % 512;
      const Arena::Handle h = arena.Allocate(bytes);
      const auto fill = static_cast<unsigned char>(rng() % 256);
      std::memset(arena.Resolve(h), fill, bytes);
      ASSERT_TRUE(live.emplace(h, std::make_pair(bytes, fill)).second);
      order.push_back(h);
    } else {
      const size_t pick = rng() % order.size();
      const Arena::Handle h = order[pick];
      auto it = live.find(h);
      if (it == live.end()) continue;  // already freed
      const auto [bytes, fill] = it->second;
      const auto* p = static_cast<const unsigned char*>(arena.Resolve(h));
      for (size_t i = 0; i < bytes; ++i) ASSERT_EQ(p[i], fill);
      arena.Release(h, bytes);
      live.erase(it);
    }
  }
  for (const auto& [h, meta] : live) {
    const auto* p = static_cast<const unsigned char*>(arena.Resolve(h));
    for (size_t i = 0; i < meta.first; ++i) ASSERT_EQ(p[i], meta.second);
  }
}

TEST(ArenaTest, MoveLeavesSourceUsable) {
  Arena a(512);
  const Arena::Handle h = a.Create<int64_t>(99);
  Arena b(std::move(a));
  EXPECT_EQ(*b.Get<int64_t>(h), 99);
  EXPECT_EQ(a.stats().live_bytes, 0u);  // NOLINT(bugprone-use-after-move)
  const Arena::Handle h2 = a.Create<int64_t>(5);
  EXPECT_EQ(*a.Get<int64_t>(h2), 5);
}

TEST(ChunkPoolTest, AcquireReleaseRecycles) {
  ChunkPool<int, 64> pool;
  auto* c1 = pool.Acquire();
  auto* c2 = pool.Acquire();
  EXPECT_NE(c1, c2);
  for (int i = 0; i < 64; ++i) c1->push(i);
  EXPECT_TRUE(c1->full());
  pool.Release(c1);
  auto* c3 = pool.Acquire();
  EXPECT_EQ(c3, c1);  // LIFO reuse
  EXPECT_EQ(c3->size, 0u);
  EXPECT_EQ(pool.stats().chunks_created, 2u);
  c2->next = c3;
  c3->next = nullptr;
  pool.ReleaseList(c2);
  EXPECT_EQ(pool.stats().chunks_free, 2u);
}

TEST(ChunkPoolTest, ConcurrentAcquireRelease) {
  ChunkPool<uint64_t, 32> pool;
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      for (int i = 0; i < kIters; ++i) {
        auto* chunk = pool.Acquire();
        while (!chunk->full()) {
          chunk->push(static_cast<uint64_t>(t) << 32 | i);
        }
        pool.Release(chunk);
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto s = pool.stats();
  EXPECT_EQ(s.chunks_created, s.chunks_free);
  EXPECT_LE(s.chunks_created, static_cast<size_t>(kThreads));
}

}  // namespace
}  // namespace pinsql::util
