#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "detect/ensemble.h"
#include "detect/forecast.h"
#include "detect/sketch.h"
#include "util/rng.h"

namespace pinsql::detect {
namespace {

/// Deterministic pseudo-noise without touching global rng state.
double Noise(uint64_t i, double amplitude) {
  uint64_t x = i * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL;
  x ^= x >> 29;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 32;
  return amplitude * (static_cast<double>(x % 2000) / 1000.0 - 1.0);
}

std::vector<double> FlatSeries(size_t n, double level, double noise) {
  std::vector<double> v;
  v.reserve(n);
  for (size_t i = 0; i < n; ++i) v.push_back(level + Noise(i, noise));
  return v;
}

const std::vector<ForecastMethod> kAllMethods = {
    ForecastMethod::kEwma, ForecastMethod::kHolt,
    ForecastMethod::kHoltWinters, ForecastMethod::kEwmaSketch};

ForecastOptions MethodOptions(ForecastMethod method) {
  ForecastOptions options;
  options.method = method;
  options.seasonal_period = 40;
  options.warmup = 90;
  return options;
}

// ----------------------------------------------------------- forecasting

TEST(ForecastDetectorTest, EveryMethodConstructsAndNames) {
  for (ForecastMethod method : kAllMethods) {
    auto det = MakeForecastDetector(MethodOptions(method), 0, 1);
    ASSERT_NE(det, nullptr);
    EXPECT_STREQ(det->name(), ForecastMethodName(method));
    EXPECT_FALSE(det->in_run());
  }
  EXPECT_STREQ(ForecastMethodName(ForecastMethod::kEwma), "ewma");
  EXPECT_STREQ(ForecastMethodName(ForecastMethod::kHolt), "holt");
  EXPECT_STREQ(ForecastMethodName(ForecastMethod::kHoltWinters),
               "holt_winters");
  EXPECT_STREQ(ForecastMethodName(ForecastMethod::kEwmaSketch),
               "ewma_sketch");
}

TEST(ForecastDetectorTest, QuietSeriesProducesNoEvents) {
  for (ForecastMethod method : kAllMethods) {
    SCOPED_TRACE(ForecastMethodName(method));
    auto det = MakeForecastDetector(MethodOptions(method), 0, 1);
    for (double v : FlatSeries(600, 10.0, 0.3)) {
      EXPECT_FALSE(det->Push(v).has_value());
    }
    EXPECT_FALSE(det->Finish().has_value());
  }
}

TEST(ForecastDetectorTest, SharpSpikeOpensAndClosesRun) {
  for (ForecastMethod method : kAllMethods) {
    SCOPED_TRACE(ForecastMethodName(method));
    auto det = MakeForecastDetector(MethodOptions(method), 1000, 1);
    std::vector<anomaly::FeatureEvent> events;
    auto feed = [&](double v) {
      if (auto e = det->Push(v)) events.push_back(*e);
    };
    for (double v : FlatSeries(300, 10.0, 0.3)) feed(v);
    for (size_t i = 0; i < 20; ++i) feed(60.0 + Noise(i, 0.3));
    EXPECT_TRUE(det->in_run());
    EXPECT_TRUE(det->run_up());
    for (size_t i = 0; i < 60; ++i) feed(10.0 + Noise(i + 320, 0.3));
    ASSERT_EQ(events.size(), 1u);
    EXPECT_GE(events[0].start_sec, 1000 + 295);
    EXPECT_LE(events[0].start_sec, 1000 + 302);
    EXPECT_GT(events[0].severity, 6.0);
  }
}

TEST(ForecastDetectorTest, EwmaCatchesSlowDriftViaCusum) {
  // A ramp of +0.05/step on a sigma~0.3 series: each step is far below any
  // per-sample threshold, but the EWMA forecast lags the ramp and the
  // one-sided CUSUM accumulates the residual.
  ForecastOptions options = MethodOptions(ForecastMethod::kEwma);
  options.alpha = 0.015;
  options.threshold = 8.0;
  auto det = MakeForecastDetector(options, 0, 1);
  for (double v : FlatSeries(400, 10.0, 0.3)) det->Push(v);
  EXPECT_FALSE(det->in_run());
  bool drift_detected = false;
  for (size_t i = 0; i < 900 && !drift_detected; ++i) {
    det->Push(10.0 + 0.05 * static_cast<double>(i) + Noise(i, 0.3));
    drift_detected = det->in_run() && det->drift_run();
  }
  EXPECT_TRUE(drift_detected);
  // The drift run closes as a level shift, not a spike.
  const auto event = det->Finish();
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->type, anomaly::FeatureType::kLevelShiftUp);
}

TEST(ForecastDetectorTest, HoltWintersAbsorbsSeasonality) {
  // A strong 40-sample season: Holt-Winters learns it and stays quiet; a
  // plain EWMA with the same threshold would see periodic residuals. Then
  // an off-season spike must still fire.
  ForecastOptions options = MethodOptions(ForecastMethod::kHoltWinters);
  options.threshold = 6.0;
  auto det = MakeForecastDetector(options, 0, 1);
  auto seasonal = [&](size_t i) {
    return 20.0 + 8.0 * std::sin(2.0 * M_PI * static_cast<double>(i % 40) /
                                 40.0) +
           Noise(i, 0.2);
  };
  size_t events = 0;
  for (size_t i = 0; i < 800; ++i) {
    if (det->Push(seasonal(i))) ++events;
  }
  EXPECT_EQ(events, 0u);
  EXPECT_FALSE(det->in_run());
  for (size_t i = 800; i < 820; ++i) det->Push(seasonal(i) + 40.0);
  EXPECT_TRUE(det->in_run());
}

TEST(ForecastDetectorTest, StreamingMatchesBatch) {
  // DetectForecastFeatures is a loop over Push+Finish; verify the
  // equivalence holds for every method on a spike-then-recover series.
  std::vector<double> values = FlatSeries(300, 12.0, 0.4);
  for (size_t i = 0; i < 15; ++i) values.push_back(70.0 + Noise(i, 0.4));
  for (size_t i = 0; i < 80; ++i) {
    values.push_back(12.0 + Noise(i + 500, 0.4));
  }
  const TimeSeries series(5000, 1, values);
  for (ForecastMethod method : kAllMethods) {
    SCOPED_TRACE(ForecastMethodName(method));
    const ForecastOptions options = MethodOptions(method);
    const auto batch = DetectForecastFeatures(series, options);

    auto det = MakeForecastDetector(options, series.start_time(),
                                    series.interval_sec());
    std::vector<anomaly::FeatureEvent> streamed;
    for (double v : values) {
      if (auto e = det->Push(v)) streamed.push_back(*e);
    }
    if (auto e = det->Finish()) streamed.push_back(*e);

    ASSERT_EQ(batch.size(), streamed.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(batch[i].type, streamed[i].type);
      EXPECT_EQ(batch[i].start_sec, streamed[i].start_sec);
      EXPECT_EQ(batch[i].end_sec, streamed[i].end_sec);
      EXPECT_DOUBLE_EQ(batch[i].severity, streamed[i].severity);
    }
  }
}

TEST(ForecastDetectorTest, SnapshotRestoreResumesBitIdentically) {
  // Split the stream at an arbitrary point (inside the spike, so run state
  // is live), snapshot, restore into a fresh detector, and require the
  // remaining pushes to produce identical events and identical final
  // state. Covers every method's model pack/unpack.
  std::vector<double> values = FlatSeries(250, 15.0, 0.5);
  for (size_t i = 0; i < 30; ++i) values.push_back(90.0 + Noise(i, 0.5));
  for (size_t i = 0; i < 120; ++i) {
    values.push_back(15.0 + Noise(i + 400, 0.5));
  }
  for (ForecastMethod method : kAllMethods) {
    SCOPED_TRACE(ForecastMethodName(method));
    const ForecastOptions options = MethodOptions(method);
    const size_t split = 262;  // mid-spike

    auto full = MakeForecastDetector(options, 0, 1);
    std::vector<anomaly::FeatureEvent> full_events;
    for (double v : values) {
      if (auto e = full->Push(v)) full_events.push_back(*e);
    }

    auto first = MakeForecastDetector(options, 0, 1);
    std::vector<anomaly::FeatureEvent> split_events;
    for (size_t i = 0; i < split; ++i) {
      if (auto e = first->Push(values[i])) split_events.push_back(*e);
    }
    const ForecastSnapshot snap = first->ExportSnapshot();

    auto resumed = MakeForecastDetector(options, 0, 1);
    resumed->Restore(snap);
    EXPECT_EQ(resumed->count(), first->count());
    EXPECT_EQ(resumed->in_run(), first->in_run());
    for (size_t i = split; i < values.size(); ++i) {
      if (auto e = resumed->Push(values[i])) split_events.push_back(*e);
    }

    ASSERT_EQ(full_events.size(), split_events.size());
    for (size_t i = 0; i < full_events.size(); ++i) {
      EXPECT_EQ(full_events[i].type, split_events[i].type);
      EXPECT_EQ(full_events[i].start_sec, split_events[i].start_sec);
      EXPECT_EQ(full_events[i].end_sec, split_events[i].end_sec);
      EXPECT_DOUBLE_EQ(full_events[i].severity, split_events[i].severity);
    }
    // Final snapshots are byte-equal field-by-field.
    const ForecastSnapshot a = full->ExportSnapshot();
    const ForecastSnapshot b = resumed->ExportSnapshot();
    EXPECT_EQ(a.count, b.count);
    EXPECT_DOUBLE_EQ(a.mad, b.mad);
    EXPECT_DOUBLE_EQ(a.cusum, b.cusum);
    EXPECT_EQ(a.in_run, b.in_run);
    EXPECT_EQ(a.drift_run, b.drift_run);
    ASSERT_EQ(a.model.size(), b.model.size());
    for (size_t i = 0; i < a.model.size(); ++i) {
      EXPECT_DOUBLE_EQ(a.model[i], b.model[i]);
    }
  }
}

// ----------------------------------------------------------------- sketch

TEST(SketchTest, EngineForecastsPerKeyIndependently) {
  SketchEwmaEngine engine(64, 3, 0.2, 0.1);
  for (int i = 0; i < 100; ++i) {
    engine.Update(1, 10.0);
    engine.Update(2, 500.0);
  }
  EXPECT_TRUE(engine.Ready(1));
  EXPECT_NEAR(engine.Forecast(1), 10.0, 1.0);
  EXPECT_NEAR(engine.Forecast(2), 500.0, 50.0);
  EXPECT_GE(engine.UpdateFloor(1), 100u);
}

TEST(SketchTest, EngineExportRestoreRoundTrips) {
  SketchEwmaEngine engine(32, 2, 0.2, 0.1);
  for (int i = 0; i < 50; ++i) {
    engine.Update(7, 10.0 + Noise(static_cast<uint64_t>(i), 1.0));
  }
  std::vector<double> state;
  engine.Export(&state);
  SketchEwmaEngine restored(32, 2, 0.2, 0.1);
  restored.Restore(state);
  EXPECT_DOUBLE_EQ(engine.Forecast(7), restored.Forecast(7));
  EXPECT_DOUBLE_EQ(engine.Scale(7), restored.Scale(7));
  EXPECT_EQ(engine.UpdateFloor(7), restored.UpdateFloor(7));
}

TEST(SketchTest, KeyedDetectorFlagsAnomalousKeyOnce) {
  ForecastOptions options;
  options.threshold = 6.0;
  options.scale_floor = 0.5;
  KeyedSketchDetector detector(options);
  // Warm 50 keys with distinct stable levels.
  for (int64_t sec = 0; sec < 40; ++sec) {
    for (uint64_t key = 0; key < 50; ++key) {
      auto hit = detector.Observe(key, sec, 10.0 + static_cast<double>(key));
      EXPECT_FALSE(hit.has_value());
    }
  }
  // Key 17 jumps; exactly one anomaly, attributed to key 17, and the
  // sustained anomaly does not re-fire while hot.
  size_t hits = 0;
  for (int64_t sec = 40; sec < 50; ++sec) {
    for (uint64_t key = 0; key < 50; ++key) {
      const double v = key == 17 ? 400.0 : 10.0 + static_cast<double>(key);
      if (auto hit = detector.Observe(key, sec, v)) {
        ++hits;
        EXPECT_EQ(hit->key, 17u);
        EXPECT_GT(hit->z, 6.0);
        EXPECT_EQ(hit->sec, 40);
      }
    }
  }
  EXPECT_EQ(hits, 1u);
  EXPECT_EQ(detector.hot_keys(), 1u);
  // Clean samples re-arm the key.
  for (int64_t sec = 50; sec < 52; ++sec) {
    detector.Observe(17, sec, 27.0);
  }
  EXPECT_EQ(detector.hot_keys(), 0u);
}

// --------------------------------------------------------------- ensemble

std::vector<double> SpikeSeries() {
  std::vector<double> values = FlatSeries(300, 8.0, 0.4);
  for (size_t i = 0; i < 40; ++i) values.push_back(45.0 + Noise(i, 0.4));
  for (size_t i = 0; i < 100; ++i) {
    values.push_back(8.0 + Noise(i + 600, 0.4));
  }
  return values;
}

std::vector<double> DriftSeries() {
  std::vector<double> values = FlatSeries(600, 8.0, 0.4);
  for (size_t i = 0; i < 1500; ++i) {
    values.push_back(8.0 + 0.02 * static_cast<double>(i) + Noise(i, 0.4));
  }
  return values;
}

EnsembleOptions StockEnsemble() {
  EnsembleOptions options;
  options.forecasters = DefaultEnsembleForecasters();
  return options;
}

TEST(EnsembleTest, ScreenConfirmsSharpAnomalyAndIsAttributed) {
  EnsembleDetector ensemble(StockEnsemble());
  std::vector<EnsembleTrigger> triggers;
  int64_t sec = 70000;
  for (double v : SpikeSeries()) {
    if (auto t = ensemble.Observe(sec++, v)) triggers.push_back(*t);
  }
  ASSERT_EQ(triggers.size(), 1u);
  EXPECT_STREQ(triggers[0].source, "robust_z_pettitt");
  EXPECT_LT(triggers[0].pettitt_p, 0.1);
  EXPECT_GE(triggers[0].onset_sec, 70295);
  EXPECT_LE(triggers[0].onset_sec, 70302);
}

TEST(EnsembleTest, ForecasterConfirmsDriftTheScreenMisses) {
  // Screen-only: the rolling clean baseline absorbs the creep.
  EnsembleOptions screen_only;
  EnsembleDetector screen(screen_only);
  // Stock ensemble: the EWMA member's CUSUM accumulates it.
  EnsembleDetector stock(StockEnsemble());
  size_t screen_triggers = 0;
  std::vector<EnsembleTrigger> stock_triggers;
  int64_t sec = 0;
  for (double v : DriftSeries()) {
    if (screen.Observe(sec, v)) ++screen_triggers;
    if (auto t = stock.Observe(sec, v)) stock_triggers.push_back(*t);
    ++sec;
  }
  EXPECT_EQ(screen_triggers, 0u);
  ASSERT_GE(stock_triggers.size(), 1u);
  EXPECT_STREQ(stock_triggers[0].source, "ewma");
  // Onset back-dates to where the CUSUM excursion began, inside the ramp.
  EXPECT_GE(stock_triggers[0].onset_sec, 600);
  EXPECT_GT(stock_triggers[0].trigger_sec, stock_triggers[0].onset_sec);
}

TEST(EnsembleTest, OneTriggerPerIncidentThenRearms) {
  EnsembleDetector ensemble(StockEnsemble());
  std::vector<const char*> sources;
  int64_t sec = 0;
  auto feed = [&](const std::vector<double>& values) {
    for (double v : values) {
      if (auto t = ensemble.Observe(sec, v)) sources.push_back(t->source);
      ++sec;
    }
  };
  feed(SpikeSeries());  // incident 1
  EXPECT_FALSE(ensemble.in_run());
  feed(SpikeSeries());  // incident 2 after full recovery
  ASSERT_EQ(sources.size(), 2u);
  EXPECT_STREQ(sources[0], "robust_z_pettitt");
  EXPECT_STREQ(sources[1], "robust_z_pettitt");
}

TEST(EnsembleTest, LegacyParityWithEmptyForecasters) {
  // use_screen + no forecasters must reproduce the legacy screen's trigger
  // sequence and rejection counts exactly (this is the bit-compatibility
  // contract the serve fleet relies on across the upgrade).
  EnsembleOptions legacy;
  EnsembleDetector a(legacy);
  EnsembleDetector b(legacy);
  int64_t sec = 0;
  for (double v : SpikeSeries()) {
    const auto ta = a.Observe(sec, v);
    const auto tb = b.Observe(sec, v);
    ASSERT_EQ(ta.has_value(), tb.has_value());
    if (ta) {
      EXPECT_EQ(ta->onset_sec, tb->onset_sec);
      EXPECT_DOUBLE_EQ(ta->severity, tb->severity);
    }
    ++sec;
  }
  EXPECT_EQ(a.pettitt_rejections(), b.pettitt_rejections());
}

TEST(EnsembleTest, SnapshotRestoreMidIncident) {
  const std::vector<double> values = DriftSeries();
  const size_t split = 1400;  // mid-ramp, CUSUM partially accumulated

  EnsembleDetector full(StockEnsemble());
  std::vector<EnsembleTrigger> full_triggers;
  for (size_t i = 0; i < values.size(); ++i) {
    if (auto t = full.Observe(static_cast<int64_t>(i), values[i])) {
      full_triggers.push_back(*t);
    }
  }

  EnsembleDetector first(StockEnsemble());
  std::vector<EnsembleTrigger> split_triggers;
  for (size_t i = 0; i < split; ++i) {
    if (auto t = first.Observe(static_cast<int64_t>(i), values[i])) {
      split_triggers.push_back(*t);
    }
  }
  const EnsembleSnapshot snap = first.ExportSnapshot();
  EnsembleDetector resumed(StockEnsemble());
  resumed.Restore(snap);
  for (size_t i = split; i < values.size(); ++i) {
    if (auto t = resumed.Observe(static_cast<int64_t>(i), values[i])) {
      split_triggers.push_back(*t);
    }
  }

  ASSERT_EQ(full_triggers.size(), split_triggers.size());
  for (size_t i = 0; i < full_triggers.size(); ++i) {
    EXPECT_EQ(full_triggers[i].onset_sec, split_triggers[i].onset_sec);
    EXPECT_EQ(full_triggers[i].trigger_sec, split_triggers[i].trigger_sec);
    EXPECT_DOUBLE_EQ(full_triggers[i].severity, split_triggers[i].severity);
    EXPECT_STREQ(full_triggers[i].source, split_triggers[i].source);
  }
  EXPECT_EQ(full.pettitt_rejections(), resumed.pettitt_rejections());
}

TEST(EnsembleTest, ResetDropsRunStateButKeepsRejectionStat) {
  EnsembleDetector ensemble(StockEnsemble());
  int64_t sec = 0;
  for (double v : FlatSeries(300, 8.0, 0.4)) ensemble.Observe(sec++, v);
  for (size_t i = 0; i < 10; ++i) {
    ensemble.Observe(sec++, 50.0 + Noise(i, 0.4));
  }
  EXPECT_TRUE(ensemble.in_run());
  const uint64_t rejections = ensemble.pettitt_rejections();
  ensemble.Reset();
  EXPECT_FALSE(ensemble.in_run());
  EXPECT_EQ(ensemble.pettitt_rejections(), rejections);
  // Post-reset the ensemble relearns from scratch: the next samples at a
  // new level are a baseline, not an anomaly.
  std::vector<EnsembleTrigger> triggers;
  for (double v : FlatSeries(300, 50.0, 0.4)) {
    if (auto t = ensemble.Observe(sec++, v)) triggers.push_back(*t);
  }
  EXPECT_TRUE(triggers.empty());
}

}  // namespace
}  // namespace pinsql::detect
