#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "detect/forecast.h"
#include "logstore/log_store.h"
#include "online/online_detector.h"
#include "online/replay.h"

namespace pinsql::online {
namespace {

/// Deterministic pseudo-noise without touching global rng state.
double Noise(uint64_t i, double amplitude) {
  uint64_t x = i * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL;
  x ^= x >> 29;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 32;
  return amplitude * (static_cast<double>(x % 2000) / 1000.0 - 1.0);
}

PerfSample Sample(int64_t sec, double session) {
  PerfSample s;
  s.sec = sec;
  s.active_session = session;
  s.cpu_usage = session * 0.05;
  s.iops_usage = session * 0.1;
  return s;
}

OnlineDetectorOptions StockOptions() {
  OnlineDetectorOptions options;
  options.forecasters = detect::DefaultEnsembleForecasters();
  return options;
}

/// A creep the robust-z screen absorbs but the EWMA member's CUSUM
/// accumulates: flat baseline, then +0.02 sessions/sec for 20 minutes.
std::vector<double> DriftSessions() {
  std::vector<double> values;
  for (size_t i = 0; i < 700; ++i) values.push_back(8.0 + Noise(i, 0.4));
  for (size_t i = 0; i < 1200; ++i) {
    values.push_back(8.0 + 0.02 * static_cast<double>(i) + Noise(i, 0.4));
  }
  return values;
}

/// The drift case as a recorded stream: per-second samples plus a steady
/// trickle of query records so a confirmed trigger has something to
/// diagnose.
ReplayLog DriftIncident() {
  ReplayLog log;
  const int64_t t0 = 100'000;
  const std::vector<double> sessions = DriftSessions();
  for (size_t i = 0; i < sessions.size(); ++i) {
    const int64_t sec = t0 + static_cast<int64_t>(i);
    log.samples.push_back(Sample(sec, sessions[i]));
    uint64_t state = static_cast<uint64_t>(sec) * 2654435761ULL + 17;
    const bool ramping = i >= 700;
    const int count = 5 + (ramping ? static_cast<int>((i - 700) / 120) : 0);
    for (int j = 0; j < count; ++j) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      QueryLogRecord r;
      r.sql_id = j < 5 ? 1 + (state >> 33) % 4 : 9;
      r.arrival_ms = sec * 1000 + static_cast<int64_t>((state >> 13) % 1000);
      r.response_ms = j < 5 ? 2.0 : 90.0 + static_cast<double>(i - 700) / 8.0;
      r.examined_rows = j < 5 ? 20 : 200'000;
      log.records.push_back(r);
    }
  }
  return log;
}

LogStore DriftCatalog() {
  LogStore catalog;
  for (uint64_t id = 1; id <= 4; ++id) {
    TemplateCatalogEntry entry;
    entry.template_text = "SELECT * FROM t WHERE k = ?";
    entry.kind = sqltpl::StatementKind::kSelect;
    entry.tables = {"t"};
    catalog.RegisterTemplate(id, entry);
  }
  TemplateCatalogEntry heavy;
  heavy.template_text = "SELECT * FROM big ORDER BY v";
  heavy.kind = sqltpl::StatementKind::kSelect;
  heavy.tables = {"big"};
  catalog.RegisterTemplate(9, heavy);
  return catalog;
}

TEST(DetectDeterminismTest, EnsembleReplayFingerprintAcrossIngestThreads) {
  const ReplayLog log = DriftIncident();
  const LogStore catalog = DriftCatalog();
  ReplayOptions options;
  options.service.detector = StockOptions();

  const ReplayResult base = RunReplay(log, catalog, options);
  // The whole point of the forecaster members: the creep is confirmed.
  ASSERT_FALSE(base.outcomes.empty()) << "drift must trigger a diagnosis";
  EXPECT_EQ(base.outcomes[0].trigger.source, "ewma");

  const ReplayResult repeat = RunReplay(log, catalog, options);
  EXPECT_EQ(base.Fingerprint(), repeat.Fingerprint());

  ReplayOptions threaded = options;
  threaded.num_ingest_threads = 4;
  const ReplayResult ingest4 = RunReplay(log, catalog, threaded);
  EXPECT_EQ(base.Fingerprint(), ingest4.Fingerprint());
}

TEST(DetectDeterminismTest, GapsNeitherTriggerNorDesyncForecasters) {
  const double kNaN = std::numeric_limits<double>::quiet_NaN();
  OnlineAnomalyDetector detector(StockOptions());
  int64_t sec = 0;
  size_t triggers = 0;
  auto feed = [&](double v) {
    if (detector.Observe(sec++, v)) ++triggers;
  };
  for (size_t i = 0; i < 400; ++i) feed(9.0 + Noise(i, 0.4));
  // A gap shorter than the baseline window: carried forward, never an
  // anomaly boundary, and the forecasters' CUSUMs must not accumulate a
  // fake drift out of the frozen value.
  for (size_t i = 0; i < 100; ++i) feed(kNaN);
  for (size_t i = 0; i < 300; ++i) feed(9.0 + Noise(i + 500, 0.4));
  EXPECT_EQ(triggers, 0u);
  EXPECT_EQ(detector.stats().gaps_carried, 100u);
  EXPECT_EQ(detector.stats().baseline_resets, 0u);
  // A gap that outlives the baseline window resets the whole ensemble;
  // the post-gap world at a new level is a baseline, not an anomaly.
  for (size_t i = 0; i < 200; ++i) feed(kNaN);
  for (size_t i = 0; i < 400; ++i) feed(55.0 + Noise(i + 900, 0.4));
  EXPECT_EQ(detector.stats().baseline_resets, 1u);
  EXPECT_EQ(triggers, 0u);
}

TEST(DetectDeterminismTest, ExportImportMidDriftEquivalence) {
  const std::vector<double> sessions = DriftSessions();
  const size_t split = 1400;  // mid-ramp: CUSUM evidence partially built

  OnlineAnomalyDetector full(StockOptions());
  std::vector<AnomalyTrigger> full_triggers;
  for (size_t i = 0; i < sessions.size(); ++i) {
    if (auto t = full.Observe(static_cast<int64_t>(i), sessions[i])) {
      full_triggers.push_back(*t);
    }
  }
  ASSERT_FALSE(full_triggers.empty());

  OnlineAnomalyDetector first(StockOptions());
  std::vector<AnomalyTrigger> split_triggers;
  for (size_t i = 0; i < split; ++i) {
    if (auto t = first.Observe(static_cast<int64_t>(i), sessions[i])) {
      split_triggers.push_back(*t);
    }
  }
  const OnlineDetectorState state = first.ExportState();
  OnlineAnomalyDetector resumed(StockOptions());
  resumed.ImportState(state);
  for (size_t i = split; i < sessions.size(); ++i) {
    if (auto t = resumed.Observe(static_cast<int64_t>(i), sessions[i])) {
      split_triggers.push_back(*t);
    }
  }

  ASSERT_EQ(full_triggers.size(), split_triggers.size());
  for (size_t i = 0; i < full_triggers.size(); ++i) {
    EXPECT_EQ(full_triggers[i].onset_sec, split_triggers[i].onset_sec);
    EXPECT_EQ(full_triggers[i].trigger_sec, split_triggers[i].trigger_sec);
    EXPECT_DOUBLE_EQ(full_triggers[i].severity, split_triggers[i].severity);
    EXPECT_EQ(full_triggers[i].source, split_triggers[i].source);
  }
  EXPECT_EQ(full.latencies_sec(), resumed.latencies_sec());
  EXPECT_EQ(full.stats().triggers, resumed.stats().triggers);
  EXPECT_EQ(full.stats().pettitt_rejections,
            resumed.stats().pettitt_rejections);
}

}  // namespace
}  // namespace pinsql::online
