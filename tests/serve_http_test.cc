#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fleet/fleet_service.h"
#include "serve/http.h"
#include "serve/server.h"
#include "util/rng.h"

namespace pinsql::serve {
namespace {

HttpParser::State FeedAll(HttpParser* parser, std::string_view bytes,
                          size_t chunk = 0) {
  if (chunk == 0) return parser->Feed(bytes);
  HttpParser::State state = parser->state();
  for (size_t off = 0; off < bytes.size(); off += chunk) {
    state = parser->Feed(bytes.substr(off, chunk));
  }
  return state;
}

// --- Parser basics -------------------------------------------------------

TEST(HttpParserTest, ParsesSimpleGet) {
  HttpParser parser{HttpLimits{}};
  const auto state = parser.Feed(
      "GET /v1/healthz?limit=3 HTTP/1.1\r\nHost: x\r\n\r\n");
  ASSERT_EQ(state, HttpParser::State::kComplete);
  EXPECT_EQ(parser.request().method, "GET");
  EXPECT_EQ(parser.request().Path(), "/v1/healthz");
  EXPECT_EQ(parser.request().QueryParam("limit"), "3");
  EXPECT_EQ(parser.request().QueryParam("missing"), "");
  EXPECT_TRUE(parser.request().keep_alive);
}

TEST(HttpParserTest, ByteAtATimeDeliveryMatchesOneShot) {
  const std::string wire =
      "POST /v1/ingest HTTP/1.1\r\nX-Pinsql-Tenant: acme\r\n"
      "Content-Length: 11\r\n\r\nhello world";
  for (size_t chunk : {size_t{1}, size_t{3}, size_t{0}}) {
    HttpParser parser{HttpLimits{}};
    ASSERT_EQ(FeedAll(&parser, wire, chunk), HttpParser::State::kComplete)
        << "chunk=" << chunk;
    EXPECT_EQ(parser.request().body, "hello world");
    const std::string* tenant = parser.request().FindHeader("x-pinsql-tenant");
    ASSERT_NE(tenant, nullptr);
    EXPECT_EQ(*tenant, "acme");
  }
}

TEST(HttpParserTest, HeadersDoneBeforeBodyEnablesEarlyAdmission) {
  HttpParser parser{HttpLimits{}};
  auto state = parser.Feed(
      "POST /v1/ingest HTTP/1.1\r\nContent-Length: 5\r\n\r\n");
  EXPECT_EQ(state, HttpParser::State::kHeadersDone);
  EXPECT_EQ(parser.request().content_length, 5u);
  state = parser.Feed("abcde");
  EXPECT_EQ(state, HttpParser::State::kComplete);
  EXPECT_EQ(parser.request().body, "abcde");
}

TEST(HttpParserTest, PipelinedRequestsSurviveReset) {
  HttpParser parser{HttpLimits{}};
  auto state = parser.Feed(
      "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n");
  ASSERT_EQ(state, HttpParser::State::kComplete);
  EXPECT_EQ(parser.request().target, "/a");
  parser.Reset();
  ASSERT_EQ(parser.state(), HttpParser::State::kComplete);
  EXPECT_EQ(parser.request().target, "/b");
}

TEST(HttpParserTest, LenientLineEndings) {
  HttpParser parser{HttpLimits{}};
  const auto state =
      parser.Feed("GET /x HTTP/1.1\nHost: y\r\n\n");  // mixed \n and \r\n
  ASSERT_EQ(state, HttpParser::State::kComplete);
  EXPECT_EQ(parser.request().target, "/x");
}

// --- Limit enforcement: every limit maps to a definite status ------------

TEST(HttpParserTest, OversizedHeaderBlockIs431) {
  HttpLimits limits;
  limits.max_header_bytes = 256;
  HttpParser parser{limits};
  std::string wire = "GET / HTTP/1.1\r\n";
  wire += "X-Long: " + std::string(1024, 'a') + "\r\n\r\n";
  EXPECT_EQ(parser.Feed(wire), HttpParser::State::kError);
  EXPECT_EQ(parser.error_status(), 431);
  // The buffer is released on error: no allocation accrues per bad client.
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

TEST(HttpParserTest, TooManyHeadersIs431) {
  HttpLimits limits;
  limits.max_headers = 4;
  HttpParser parser{limits};
  std::string wire = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 8; ++i) {
    wire += "H" + std::to_string(i) + ": v\r\n";
  }
  wire += "\r\n";
  EXPECT_EQ(parser.Feed(wire), HttpParser::State::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpParserTest, OversizedDeclaredBodyIs413BeforeAnyBodyByte) {
  HttpLimits limits;
  limits.max_body_bytes = 1024;
  HttpParser parser{limits};
  // Headers only: the rejection must come from the declared size alone.
  EXPECT_EQ(parser.Feed("POST /v1/ingest HTTP/1.1\r\n"
                        "Content-Length: 10485760\r\n\r\n"),
            HttpParser::State::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(HttpParserTest, TransferEncodingIs501) {
  HttpParser parser{HttpLimits{}};
  EXPECT_EQ(parser.Feed("POST / HTTP/1.1\r\n"
                        "Transfer-Encoding: chunked\r\n\r\n"),
            HttpParser::State::kError);
  EXPECT_EQ(parser.error_status(), 501);
}

TEST(HttpParserTest, ConflictingContentLengthIs400) {
  HttpParser parser{HttpLimits{}};
  EXPECT_EQ(parser.Feed("POST / HTTP/1.1\r\nContent-Length: 5\r\n"
                        "Content-Length: 6\r\n\r\n"),
            HttpParser::State::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParserTest, MalformedContentLengthIs400) {
  for (const char* bad : {"-5", "1e3", "0x10", "", " ", "99999999999999999999"}) {
    HttpParser parser{HttpLimits{}};
    const std::string wire = std::string("POST / HTTP/1.1\r\nContent-Length: ") +
                             bad + "\r\n\r\n";
    EXPECT_EQ(parser.Feed(wire), HttpParser::State::kError) << bad;
    EXPECT_EQ(parser.error_status(), 400) << bad;
  }
}

TEST(HttpParserTest, UnsupportedVersionIs505) {
  HttpParser parser{HttpLimits{}};
  EXPECT_EQ(parser.Feed("GET / HTTP/2.0\r\n\r\n"), HttpParser::State::kError);
  EXPECT_EQ(parser.error_status(), 505);
}

TEST(HttpParserTest, ControlBytesInHeaderValueAre400) {
  HttpParser parser{HttpLimits{}};
  EXPECT_EQ(parser.Feed("GET / HTTP/1.1\r\nX-Evil: a\x01g\r\n\r\n"),
            HttpParser::State::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParserTest, BufferStaysBoundedUnderEndlessHeaderTrickle) {
  HttpLimits limits;
  limits.max_header_bytes = 512;
  HttpParser parser{limits};
  // A client that sends valid header lines forever without a blank line.
  std::string line = "X-A: bbbbbbbbbbbbbbbb\r\n";
  parser.Feed("GET / HTTP/1.1\r\n");
  size_t max_buffered = 0;
  for (int i = 0; i < 1000 && parser.state() != HttpParser::State::kError;
       ++i) {
    parser.Feed(line);
    max_buffered = std::max(max_buffered, parser.buffered_bytes());
  }
  EXPECT_EQ(parser.state(), HttpParser::State::kError);
  // Never buffers meaningfully past the configured bound.
  EXPECT_LE(max_buffered, limits.max_header_bytes + line.size());
}

// --- Response serialization ----------------------------------------------

TEST(HttpResponseTest, SerializationCarriesLengthTypeAndConnection) {
  HttpResponse response;
  response.body = "{\"a\":1}";
  const std::string wire = SerializeResponse(response, true);
  EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 7\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Type: application/json\r\n"),
            std::string::npos);
  EXPECT_NE(wire.find("Connection: keep-alive\r\n"), std::string::npos);

  const HttpResponse retry = ErrorResponse(429, "slow down", 7);
  const std::string rwire = SerializeResponse(retry, false);
  EXPECT_NE(rwire.find("HTTP/1.1 429 Too Many Requests\r\n"),
            std::string::npos);
  EXPECT_NE(rwire.find("Retry-After: 7\r\n"), std::string::npos);
  EXPECT_NE(rwire.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(rwire.find("{\"error\":\"slow down\"}"), std::string::npos);
}

// --- Handler fuzz (satellite 3): hostile bodies through the ingest path --

/// Minimal serving stack without sockets: a one-instance fleet plus a
/// Server whose HandleRequest is called directly.
class HandlerFuzzTest : public ::testing::Test {
 protected:
  HandlerFuzzTest() {
    fleet::FleetOptions foptions;
    fleet_ = std::make_unique<fleet::FleetService>(
        std::vector<fleet::FleetInstanceSpec>{{1, 0}}, foptions);
    ServerOptions soptions;
    TenantQuota quota;
    quota.instances = {1};
    soptions.admission.tenants["acme"] = quota;
    soptions.max_records_per_batch = 256;
    soptions.max_samples_per_batch = 64;
    server_ = std::make_unique<Server>(fleet_.get(), soptions);
  }

  HttpRequest IngestRequest(std::string body) const {
    HttpRequest request;
    request.method = "POST";
    request.target = "/v1/ingest";
    request.version = "HTTP/1.1";
    request.headers.emplace_back("X-Pinsql-Tenant", "acme");
    request.content_length = body.size();
    request.body = std::move(body);
    return request;
  }

  std::unique_ptr<fleet::FleetService> fleet_;
  std::unique_ptr<Server> server_;
  int64_t now_ms_ = 1'000'000;
};

TEST_F(HandlerFuzzTest, WellFormedBatchIsAccepted) {
  const auto response = server_->HandleRequest(
      IngestRequest("{\"instance\":1,\"records\":[{\"arrival_ms\":1000,"
                    "\"sql_id\":3,\"response_ms\":2.5,\"examined_rows\":10}],"
                    "\"samples\":[{\"sec\":1,\"active_session\":4.0}]}"),
      now_ms_);
  EXPECT_EQ(response.status, 202);
  EXPECT_NE(response.body.find("\"records\":1"), std::string::npos);
}

TEST_F(HandlerFuzzTest, HostileBodiesAlwaysGetClean4xx) {
  const std::vector<std::string> bodies = {
      "",                                    // empty
      "{",                                   // truncated
      "{\"instance\":1,\"records\":[{",      // truncated mid-array
      "[1,2,3]",                             // not an object
      "\"just a string\"",                   // not an object
      "{\"records\":[]}",                    // missing instance
      "{\"instance\":-1}",                   // instance out of range
      "{\"instance\":4294967296}",           // instance overflows uint32
      "{\"instance\":1.5}",                  // non-integral instance
      "{\"instance\":1,\"records\":{}}",     // records not an array
      "{\"instance\":1,\"records\":[42]}",   // record not an object
      "{\"instance\":1,\"records\":[{\"arrival_ms\":1e999}]}",  // inf
      "{\"instance\":1,\"records\":[{\"arrival_ms\":1000,\"sql_id\":3,"
      "\"response_ms\":-1}]}",               // negative response
      "{\"instance\":1,\"samples\":[{\"sec\":1,\"cpu_usage\":1e999}]}",
      "{\"instance\":1,\"samples\":[{}]}",   // sample without sec
      std::string("\x00\x01\x02garbage", 10),  // control bytes
  };
  for (const std::string& body : bodies) {
    const auto response = server_->HandleRequest(IngestRequest(body), now_ms_);
    EXPECT_GE(response.status, 400) << "body: " << body.substr(0, 40);
    EXPECT_LT(response.status, 500) << "body: " << body.substr(0, 40);
    EXPECT_NE(response.body.find("\"error\""), std::string::npos);
  }
  // Nothing hostile was staged for delivery.
  EXPECT_EQ(server_->stats().ingest_accepted, 0u);
}

TEST_F(HandlerFuzzTest, DuplicateKeysParseDeterministically) {
  // util::Json is last-wins on duplicate keys; the request must not be
  // half-interpreted (first-wins for routing, last-wins for data).
  const auto response = server_->HandleRequest(
      IngestRequest("{\"instance\":999,\"instance\":1,\"records\":[]}"),
      now_ms_);
  EXPECT_EQ(response.status, 202);  // instance resolves to 1 (authorized)
  const auto reversed = server_->HandleRequest(
      IngestRequest("{\"instance\":1,\"instance\":999,\"records\":[]}"),
      now_ms_);
  EXPECT_EQ(reversed.status, 403);  // resolves to 999 (forbidden)
}

TEST_F(HandlerFuzzTest, OversizedShapesAreRejectedNotAllocated) {
  // More records than max_records_per_batch (256): clean 400.
  std::string big = "{\"instance\":1,\"records\":[";
  for (int i = 0; i < 300; ++i) {
    if (i > 0) big += ',';
    big += "{\"arrival_ms\":1000,\"sql_id\":1,\"response_ms\":1,"
           "\"examined_rows\":1}";
  }
  big += "]}";
  const auto response = server_->HandleRequest(IngestRequest(big), now_ms_);
  EXPECT_EQ(response.status, 400);
  EXPECT_NE(response.body.find("too many records"), std::string::npos);
}

TEST_F(HandlerFuzzTest, RandomBytesNeverCrashOrAccept) {
  Rng rng(20'260'809);
  for (int trial = 0; trial < 300; ++trial) {
    const size_t len = static_cast<size_t>(rng.UniformInt(0, 512));
    std::string body;
    body.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      body.push_back(static_cast<char>(rng.UniformInt(0, 255)));
    }
    const auto response =
        server_->HandleRequest(IngestRequest(std::move(body)), now_ms_);
    // Random bytes virtually never form a valid batch; anything accepted
    // must at least have parsed as an authorized instance-1 object.
    if (response.status == 202) continue;
    EXPECT_GE(response.status, 400);
    EXPECT_LT(response.status, 500);
  }
}

TEST_F(HandlerFuzzTest, UnknownTenantAndPathsAreRefused) {
  HttpRequest request = IngestRequest("{\"instance\":1}");
  request.headers.clear();
  EXPECT_EQ(server_->HandleRequest(request, now_ms_).status, 403);

  request = IngestRequest("{\"instance\":1}");
  request.headers = {{"X-Pinsql-Tenant", "mallory"}};
  EXPECT_EQ(server_->HandleRequest(request, now_ms_).status, 403);

  HttpRequest get;
  get.method = "GET";
  get.target = "/v1/nope";
  EXPECT_EQ(server_->HandleRequest(get, now_ms_).status, 404);
  get.target = "/v1/ingest";
  EXPECT_EQ(server_->HandleRequest(get, now_ms_).status, 405);

  HttpRequest del;
  del.method = "DELETE";
  del.target = "/v1/reports";
  EXPECT_EQ(server_->HandleRequest(del, now_ms_).status, 405);
}

}  // namespace
}  // namespace pinsql::serve
