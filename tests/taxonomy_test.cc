#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "util/rng.h"
#include "workload/arrivals.h"
#include "workload/scenario.h"
#include "workload/workload.h"

namespace pinsql::workload {
namespace {

constexpr int64_t kAs = 100'600;
constexpr int64_t kAe = 100'840;

struct BuiltCase {
  Workload workload;
  Injection injection;
};

BuiltCase Build(AnomalyType type, uint64_t seed) {
  Rng rng(seed);
  BuiltCase out;
  out.workload = MakeStandardWorkload(ScenarioParams{}, &rng);
  out.injection = MakeInjection(type, &out.workload, kAs, kAe, &rng);
  return out;
}

void ExpectSameWorkload(const Workload& a, const Workload& b) {
  ASSERT_EQ(a.tables.size(), b.tables.size());
  for (size_t i = 0; i < a.tables.size(); ++i) {
    EXPECT_EQ(a.tables[i].name, b.tables[i].name);
    EXPECT_EQ(a.tables[i].id, b.tables[i].id);
    EXPECT_EQ(a.tables[i].hot_row_groups, b.tables[i].hot_row_groups);
  }
  ASSERT_EQ(a.templates.size(), b.templates.size());
  for (size_t i = 0; i < a.templates.size(); ++i) {
    const TemplateDef& x = a.templates[i];
    const TemplateDef& y = b.templates[i];
    EXPECT_EQ(x.sql_pattern, y.sql_pattern);
    EXPECT_EQ(x.sql_id, y.sql_id);
    EXPECT_EQ(x.kind, y.kind);
    EXPECT_EQ(x.cluster_idx, y.cluster_idx);
    EXPECT_DOUBLE_EQ(x.weight, y.weight);
    EXPECT_DOUBLE_EQ(x.cpu_ms_mean, y.cpu_ms_mean);
    EXPECT_DOUBLE_EQ(x.io_ms_mean, y.io_ms_mean);
    EXPECT_DOUBLE_EQ(x.examined_rows_mean, y.examined_rows_mean);
    EXPECT_EQ(x.table_id, y.table_id);
    EXPECT_EQ(x.row_groups_touched, y.row_groups_touched);
    EXPECT_EQ(x.row_lock_mode, y.row_lock_mode);
    EXPECT_EQ(x.mdl_exclusive, y.mdl_exclusive);
    EXPECT_EQ(x.hot_group_limit, y.hot_group_limit);
  }
  ASSERT_EQ(a.clusters.size(), b.clusters.size());
  for (size_t i = 0; i < a.clusters.size(); ++i) {
    EXPECT_EQ(a.clusters[i].name, b.clusters[i].name);
    EXPECT_DOUBLE_EQ(a.clusters[i].base_qps, b.clusters[i].base_qps);
    EXPECT_DOUBLE_EQ(a.clusters[i].osc_period_sec,
                     b.clusters[i].osc_period_sec);
    EXPECT_DOUBLE_EQ(a.clusters[i].osc_phase, b.clusters[i].osc_phase);
  }
}

TEST(TaxonomyTest, AllTypesEnumeratedInOrderWithDistinctNames) {
  const std::vector<AnomalyType>& all = AllAnomalyTypes();
  ASSERT_EQ(all.size(), 10u);
  std::set<std::string> names;
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(static_cast<size_t>(all[i]), i) << "enum order";
    const char* name = AnomalyTypeName(all[i]);
    ASSERT_NE(name, nullptr);
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
  }
  // The paper's original categories and only them are legacy.
  EXPECT_TRUE(IsLegacyAnomalyType(AnomalyType::kBusinessSpike));
  EXPECT_TRUE(IsLegacyAnomalyType(AnomalyType::kPoorSql));
  EXPECT_TRUE(IsLegacyAnomalyType(AnomalyType::kMdlLock));
  EXPECT_TRUE(IsLegacyAnomalyType(AnomalyType::kRowLock));
  for (AnomalyType type :
       {AnomalyType::kFlashSaleFlood, AnomalyType::kSlowDrift,
        AnomalyType::kCacheStampede, AnomalyType::kReplicationLag,
        AnomalyType::kMigrationStorm, AnomalyType::kCompound}) {
    EXPECT_FALSE(IsLegacyAnomalyType(type)) << AnomalyTypeName(type);
  }
}

TEST(TaxonomyTest, EveryCategoryRegeneratesIdenticallyFromSeed) {
  for (AnomalyType type : AllAnomalyTypes()) {
    SCOPED_TRACE(AnomalyTypeName(type));
    const BuiltCase a = Build(type, 1234);
    const BuiltCase b = Build(type, 1234);
    ExpectSameWorkload(a.workload, b.workload);
    EXPECT_EQ(a.injection.type, b.injection.type);
    EXPECT_EQ(a.injection.anomaly_start_sec, b.injection.anomaly_start_sec);
    EXPECT_EQ(a.injection.anomaly_end_sec, b.injection.anomaly_end_sec);
    EXPECT_EQ(a.injection.root_cause_ids, b.injection.root_cause_ids);
    ASSERT_EQ(a.injection.overrides.size(), b.injection.overrides.size());
    for (size_t i = 0; i < a.injection.overrides.size(); ++i) {
      EXPECT_EQ(a.injection.overrides[i].sql_id,
                b.injection.overrides[i].sql_id);
      EXPECT_EQ(a.injection.overrides[i].start_sec,
                b.injection.overrides[i].start_sec);
      EXPECT_EQ(a.injection.overrides[i].end_sec,
                b.injection.overrides[i].end_sec);
      EXPECT_DOUBLE_EQ(a.injection.overrides[i].multiplier,
                       b.injection.overrides[i].multiplier);
      EXPECT_DOUBLE_EQ(a.injection.overrides[i].add_qps,
                       b.injection.overrides[i].add_qps);
    }
    // The downstream arrival stream is a pure function of (workload,
    // overrides, seed): byte-identical regeneration end to end.
    const auto arrivals_a =
        GenerateArrivals(a.workload, a.injection.overrides, kAs - 120,
                         kAs + 120, 77);
    const auto arrivals_b =
        GenerateArrivals(b.workload, b.injection.overrides, kAs - 120,
                         kAs + 120, 77);
    ASSERT_EQ(arrivals_a.size(), arrivals_b.size());
    for (size_t i = 0; i < arrivals_a.size(); ++i) {
      EXPECT_EQ(arrivals_a[i].spec.sql_id, arrivals_b[i].spec.sql_id);
      EXPECT_EQ(arrivals_a[i].arrival_ms, arrivals_b[i].arrival_ms);
    }
  }
}

TEST(TaxonomyTest, EveryCategoryCarriesIntendedGroundTruth) {
  for (AnomalyType type : AllAnomalyTypes()) {
    SCOPED_TRACE(AnomalyTypeName(type));
    const BuiltCase c = Build(type, 99);
    EXPECT_EQ(c.injection.type, type);
    EXPECT_EQ(c.injection.anomaly_start_sec, kAs);
    EXPECT_EQ(c.injection.anomaly_end_sec, kAe);
    ASSERT_FALSE(c.injection.root_cause_ids.empty());
    ASSERT_FALSE(c.injection.overrides.empty());
    // Every labeled root cause is a real template of the mutated workload.
    for (uint64_t id : c.injection.root_cause_ids) {
      EXPECT_NE(c.workload.FindTemplate(id), nullptr)
          << "root cause " << id << " not in workload";
    }
    // Overrides only reference known templates (sql_id 0 = whole-cluster
    // overrides are referenced by the injected templates themselves).
    for (const RateOverride& o : c.injection.overrides) {
      if (o.sql_id != 0) {
        EXPECT_NE(c.workload.FindTemplate(o.sql_id), nullptr);
      }
      EXPECT_LT(o.start_sec, o.end_sec);
    }
  }
  // Compound cases overlap two independent root causes by construction.
  const BuiltCase compound = Build(AnomalyType::kCompound, 7);
  EXPECT_GE(compound.injection.root_cause_ids.size(), 2u);
}

TEST(TaxonomyTest, DistinctSeedsDiversifyTheDraw) {
  // Not a statistical test — just that the generator actually consumes the
  // seed: two seeds must not produce the same injected severity profile.
  bool any_diff = false;
  const BuiltCase a = Build(AnomalyType::kCacheStampede, 1);
  const BuiltCase b = Build(AnomalyType::kCacheStampede, 2);
  if (a.injection.overrides.size() != b.injection.overrides.size()) {
    any_diff = true;
  } else {
    for (size_t i = 0; i < a.injection.overrides.size(); ++i) {
      if (a.injection.overrides[i].multiplier !=
              b.injection.overrides[i].multiplier ||
          a.injection.overrides[i].add_qps !=
              b.injection.overrides[i].add_qps) {
        any_diff = true;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace pinsql::workload
