/// Chaos suite: per-instance fault injection at mixed severities across a
/// fleet. Faults must degrade only the instance they are injected into —
/// a clean instance's fleet result stays byte-identical to (a) the same
/// fleet with every other instance faulted and (b) a solo single-instance
/// replay of the same stream. Severity-0 plans are guaranteed no-ops.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "eval/fleet_cases.h"
#include "faults/fault_injector.h"
#include "fleet/fleet_replay.h"
#include "online/replay.h"

namespace pinsql::fleet {
namespace {

eval::FleetCaseOptions ChaosCaseOptions() {
  eval::FleetCaseOptions options;
  options.num_instances = 8;
  options.instances_per_host = 4;
  options.seed = 77;
  options.duration_sec = 300;
  // Independent incidents only: every instance's stream is self-contained,
  // so solo and fleet deployments are comparable one instance at a time.
  options.inject_noisy_host = false;
  options.anomaly_fraction = 0.5;
  return options;
}

FleetReplayOptions ChaosReplayOptions() {
  FleetReplayOptions options;
  options.fleet.ingestor.num_shards = 4;
  options.fleet.ingestor.window_sec = 900;
  options.fleet.scheduler.cooldown_sec = 120;
  options.fleet.scheduler.top_k = 3;
  options.fleet.pool.pool_size = 4;
  // Correlation off: cross-instance coupling is exactly what this suite
  // must prove absent.
  options.fleet.correlator.storm_min_instances = 0;
  options.fleet.correlator.neighbor_min_cotenants = 0;
  options.num_ingest_workers = 2;
  return options;
}

/// Severity per instance: 0, 0.3, 0.6, 0.9, 0, 0.3, ... — instances 0 and
/// 4 stay clean while their co-tenants degrade.
double SeverityFor(uint32_t instance_id) {
  return 0.3 * static_cast<double>(instance_id % 4);
}

TEST(FleetChaosTest, SeverityZeroPlanIsBitwiseNoOp) {
  const eval::FleetCase fleet_case = eval::GenerateFleetCase(ChaosCaseOptions());
  online::ReplayLog log = fleet_case.logs[0];

  faults::FaultPlan plan;
  plan.seed = 99;
  plan.severity = 0.0;
  const faults::InjectionStats stats = eval::ApplyInstanceFaults(plan, &log);
  EXPECT_EQ(stats.total(), 0u);
  ASSERT_EQ(log.records.size(), fleet_case.logs[0].records.size());
  for (size_t i = 0; i < log.records.size(); ++i) {
    EXPECT_EQ(log.records[i].arrival_ms,
              fleet_case.logs[0].records[i].arrival_ms);
    EXPECT_EQ(log.records[i].sql_id, fleet_case.logs[0].records[i].sql_id);
    EXPECT_EQ(log.records[i].response_ms,
              fleet_case.logs[0].records[i].response_ms);
  }
  ASSERT_EQ(log.samples.size(), fleet_case.logs[0].samples.size());
  for (size_t i = 0; i < log.samples.size(); ++i) {
    EXPECT_EQ(log.samples[i].active_session,
              fleet_case.logs[0].samples[i].active_session);
    EXPECT_EQ(log.samples[i].cpu_usage,
              fleet_case.logs[0].samples[i].cpu_usage);
  }
}

TEST(FleetChaosTest, FaultsDoNotContaminateCleanCoTenants) {
  const eval::FleetCase fleet_case = eval::GenerateFleetCase(ChaosCaseOptions());
  const FleetReplayOptions options = ChaosReplayOptions();

  // Mixed-severity fleet: perturb every instance by its own plan.
  std::vector<online::ReplayLog> faulted = fleet_case.logs;
  size_t perturbed_streams = 0;
  for (size_t i = 0; i < faulted.size(); ++i) {
    faults::FaultPlan plan;
    plan.seed = 500 + i;
    plan.severity = SeverityFor(static_cast<uint32_t>(i));
    const faults::InjectionStats stats =
        eval::ApplyInstanceFaults(plan, &faulted[i]);
    if (plan.severity == 0.0) {
      EXPECT_EQ(stats.total(), 0u) << "severity-0 instance " << i;
    } else if (stats.total() > 0) {
      ++perturbed_streams;
    }
  }
  ASSERT_GT(perturbed_streams, 0u) << "chaos run is vacuous";

  const FleetResult clean = RunFleetReplay(
      fleet_case.specs, fleet_case.logs, fleet_case.catalog, options);
  const FleetResult chaotic =
      RunFleetReplay(fleet_case.specs, faulted, fleet_case.catalog, options);
  ASSERT_GT(clean.stats.triggers_accepted, 0u);

  for (const auto& spec : fleet_case.specs) {
    if (SeverityFor(spec.instance_id) != 0.0) continue;
    EXPECT_EQ(chaotic.InstanceFingerprint(spec.instance_id),
              clean.InstanceFingerprint(spec.instance_id))
        << "faulted co-tenants contaminated clean instance "
        << spec.instance_id;
  }
}

TEST(FleetChaosTest, CleanInstanceMatchesSoloReplayBitForBit) {
  const eval::FleetCase fleet_case = eval::GenerateFleetCase(ChaosCaseOptions());
  const FleetReplayOptions options = ChaosReplayOptions();

  std::vector<online::ReplayLog> faulted = fleet_case.logs;
  for (size_t i = 0; i < faulted.size(); ++i) {
    faults::FaultPlan plan;
    plan.seed = 500 + i;
    plan.severity = SeverityFor(static_cast<uint32_t>(i));
    eval::ApplyInstanceFaults(plan, &faulted[i]);
  }
  const FleetResult fleet_result =
      RunFleetReplay(fleet_case.specs, faulted, fleet_case.catalog, options);

  online::ReplayOptions solo;
  solo.service.ingestor = options.fleet.ingestor;
  solo.service.detector = options.fleet.detector;
  solo.service.scheduler = options.fleet.scheduler;
  solo.service.scheduler.zero_timings = true;

  size_t compared = 0;
  size_t with_outcomes = 0;
  for (const auto& spec : fleet_case.specs) {
    if (SeverityFor(spec.instance_id) != 0.0) continue;
    const online::ReplayResult solo_result =
        online::RunReplay(fleet_case.logs[spec.instance_id],
                          fleet_case.catalog, solo);
    EXPECT_EQ(fleet_result.InstanceFingerprint(spec.instance_id),
              solo_result.Fingerprint())
        << "fleet deployment changed instance " << spec.instance_id;
    ++compared;
    if (!solo_result.outcomes.empty()) ++with_outcomes;
  }
  ASSERT_GT(compared, 0u);
  // At least one clean instance must carry a real incident, or the
  // bit-equality above only compared empty digests.
  EXPECT_GT(with_outcomes, 0u) << "solo-vs-fleet comparison is vacuous";
}

}  // namespace
}  // namespace pinsql::fleet
