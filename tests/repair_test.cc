#include <gtest/gtest.h>

#include "dbsim/engine.h"
#include "repair/actions.h"
#include "repair/rule_engine.h"
#include "util/rng.h"

namespace pinsql::repair {
namespace {

dbsim::QueryArrival MakeArrival(int64_t t_ms, uint64_t sql_id,
                                double cpu_ms) {
  dbsim::QueryArrival a;
  a.arrival_ms = t_ms;
  a.spec.sql_id = sql_id;
  a.spec.cpu_ms = cpu_ms;
  a.spec.examined_rows = 1000;
  return a;
}

// ----------------------------------------------------------------- Actions

TEST(ActionsTest, ThrottleAppliesAndExpires) {
  dbsim::Engine engine(dbsim::SimConfig{});
  ActionExecutor executor(&engine);
  RepairAction action;
  action.type = ActionType::kThrottle;
  action.sql_id = 7;
  action.throttle_max_qps = 1.0;
  action.throttle_duration_sec = 10;
  executor.Execute(action, 0.0);

  engine.AddArrival(MakeArrival(100, 7, 1.0));
  engine.AddArrival(MakeArrival(200, 7, 1.0));
  engine.RunToCompletion();
  EXPECT_EQ(engine.throttled_count(), 1u);

  executor.ExpireThrottles(11'000.0);
  engine.AddArrival(MakeArrival(20'000, 7, 1.0));
  engine.AddArrival(MakeArrival(20'100, 7, 1.0));
  engine.RunToCompletion();
  EXPECT_EQ(engine.throttled_count(), 1u);  // throttle lifted
}

TEST(ActionsTest, ExpireKeepsUnexpiredThrottles) {
  dbsim::Engine engine(dbsim::SimConfig{});
  ActionExecutor executor(&engine);
  RepairAction action;
  action.type = ActionType::kThrottle;
  action.sql_id = 7;
  action.throttle_max_qps = 0.0;
  action.throttle_duration_sec = 100;
  executor.Execute(action, 0.0);
  executor.ExpireThrottles(50'000.0);  // not yet expired
  engine.AddArrival(MakeArrival(60'000, 7, 1.0));
  engine.RunToCompletion();
  EXPECT_EQ(engine.throttled_count(), 1u);
}

TEST(ActionsTest, OptimizeReducesCost) {
  dbsim::Engine engine(dbsim::SimConfig{});
  ActionExecutor executor(&engine);
  RepairAction action;
  action.type = ActionType::kOptimize;
  action.sql_id = 7;
  action.optimize_cpu_factor = 0.2;
  action.optimize_rows_factor = 0.1;
  executor.Execute(action, 0.0);
  engine.AddArrival(MakeArrival(0, 7, 100.0));
  engine.RunToCompletion();
  ASSERT_EQ(engine.completed().size(), 1u);
  EXPECT_NEAR(engine.completed()[0].response_ms(), 20.0, 1.0);
  EXPECT_EQ(engine.completed()[0].examined_rows, 100);
}

TEST(ActionsTest, AutoScaleAddsCores) {
  dbsim::Engine engine(dbsim::SimConfig{});
  const double before = engine.cpu_cores();
  ActionExecutor executor(&engine);
  RepairAction action;
  action.type = ActionType::kAutoScale;
  action.autoscale_add_cores = 8.0;
  executor.Execute(action, 0.0);
  EXPECT_DOUBLE_EQ(engine.cpu_cores(), before + 8.0);
}

TEST(ActionsTest, AuditLogRecordsEverything) {
  dbsim::Engine engine(dbsim::SimConfig{});
  ActionExecutor executor(&engine);
  RepairAction throttle;
  throttle.type = ActionType::kThrottle;
  throttle.sql_id = 1;
  throttle.throttle_duration_sec = 1;
  executor.Execute(throttle, 0.0);
  executor.ExpireThrottles(5'000.0);
  ASSERT_EQ(executor.audit_log().size(), 2u);
  EXPECT_NE(executor.audit_log()[0].find("throttle"), std::string::npos);
  EXPECT_NE(executor.audit_log()[1].find("unthrottle"), std::string::npos);
}

TEST(ActionsTest, ToStringMentionsParameters) {
  RepairAction action;
  action.type = ActionType::kOptimize;
  action.sql_id = 0xAB;
  EXPECT_NE(action.ToString().find("optimize"), std::string::npos);
  EXPECT_NE(action.ToString().find("00000000000000AB"), std::string::npos);
}

// -------------------------------------------------------------- RuleEngine

TemplateMetricsStore MetricsWithSurge(uint64_t sql_id, bool rows_surge) {
  TemplateMetricsStore metrics(0, 200);
  Rng rng(3);
  for (int64_t t = 0; t < 200; ++t) {
    const bool anomalous = t >= 100 && t < 150;
    QueryLogRecord rec;
    rec.arrival_ms = t * 1000 + 500;
    rec.sql_id = sql_id;
    rec.response_ms = 5.0;
    rec.examined_rows =
        (rows_surge && anomalous) ? 100'000 : rng.UniformInt(50, 150);
    metrics.Accumulate(rec);
  }
  return metrics;
}

std::vector<anomaly::Phenomenon> CpuSpike() {
  return {{"cpu_usage.spike", 100, 150, 20.0}};
}

TEST(RuleEngineTest, DefaultConfigSuggestsOptimizeOnCpuSpike) {
  const RepairRuleEngine rules = RepairRuleEngine::Default();
  const TemplateMetricsStore metrics = MetricsWithSurge(7, true);
  const auto suggestions =
      rules.Suggest(CpuSpike(), {7}, metrics, 100, 150);
  ASSERT_EQ(suggestions.size(), 1u);
  EXPECT_EQ(suggestions[0].action.type, ActionType::kOptimize);
  EXPECT_EQ(suggestions[0].sql_id, 7u);
  EXPECT_FALSE(suggestions[0].auto_execute);
}

TEST(RuleEngineTest, TemplateFeatureGateBlocksWithoutSurge) {
  const RepairRuleEngine rules = RepairRuleEngine::Default();
  const TemplateMetricsStore metrics = MetricsWithSurge(7, false);
  const auto suggestions =
      rules.Suggest(CpuSpike(), {7}, metrics, 100, 150);
  EXPECT_TRUE(suggestions.empty());
}

TEST(RuleEngineTest, NoMatchingPhenomenonNoSuggestions) {
  const RepairRuleEngine rules = RepairRuleEngine::Default();
  const TemplateMetricsStore metrics = MetricsWithSurge(7, true);
  const std::vector<anomaly::Phenomenon> phenomena = {
      {"iops_usage.level_shift", 100, 150, 5.0}};
  EXPECT_TRUE(rules.Suggest(phenomena, {7}, metrics, 100, 150).empty());
}

TEST(RuleEngineTest, FromJsonFullConfig) {
  // The shape of paper Fig. 5.
  auto rules = RepairRuleEngine::FromJsonText(R"({
    "rules": [
      {"anomaly": "cpu_usage.spike",
       "template_feature": "examined_rows.sudden_increase",
       "action": "optimize",
       "params": {"cpu_factor": 0.25, "rows_factor": 0.2},
       "auto_execute": true,
       "notify": ["dingtalk", "sms"]},
      {"anomaly": "active_session.spike",
       "action": "throttle",
       "params": {"max_qps": 5, "duration_sec": 120}},
      {"anomaly": "*", "action": "autoscale",
       "params": {"add_cores": 16}}
    ]})");
  ASSERT_TRUE(rules.ok());
  ASSERT_EQ(rules->rules().size(), 3u);
  EXPECT_DOUBLE_EQ(rules->rules()[0].action.optimize_cpu_factor, 0.25);
  EXPECT_TRUE(rules->rules()[0].auto_execute);
  EXPECT_EQ(rules->rules()[0].notify,
            (std::vector<std::string>{"dingtalk", "sms"}));
  EXPECT_DOUBLE_EQ(rules->rules()[1].action.throttle_max_qps, 5.0);
  EXPECT_EQ(rules->rules()[1].action.throttle_duration_sec, 120);
  EXPECT_EQ(rules->rules()[2].action.type, ActionType::kAutoScale);
}

TEST(RuleEngineTest, FromJsonRejectsBadConfigs) {
  EXPECT_FALSE(RepairRuleEngine::FromJsonText("[]").ok());
  EXPECT_FALSE(RepairRuleEngine::FromJsonText(R"({"rules": [{}]})").ok());
  EXPECT_FALSE(RepairRuleEngine::FromJsonText(
                   R"({"rules": [{"action": "reboot"}]})")
                   .ok());
  EXPECT_FALSE(RepairRuleEngine::FromJsonText("{nonsense").ok());
}

TEST(RuleEngineTest, AutoScaleSuggestionHasNoTarget) {
  auto rules = RepairRuleEngine::FromJsonText(
      R"({"rules": [{"anomaly": "*", "action": "autoscale"}]})");
  ASSERT_TRUE(rules.ok());
  const TemplateMetricsStore metrics = MetricsWithSurge(7, true);
  const auto suggestions =
      rules->Suggest(CpuSpike(), {7}, metrics, 100, 150);
  ASSERT_EQ(suggestions.size(), 1u);
  EXPECT_EQ(suggestions[0].sql_id, 0u);
}

TEST(RuleEngineTest, MaxRsqlsBoundsSuggestions) {
  auto rules = RepairRuleEngine::FromJsonText(
      R"({"rules": [{"anomaly": "*", "action": "throttle"}]})");
  ASSERT_TRUE(rules.ok());
  TemplateMetricsStore metrics(0, 200);
  for (uint64_t id = 1; id <= 10; ++id) {
    QueryLogRecord rec;
    rec.arrival_ms = 500;
    rec.sql_id = id;
    rec.response_ms = 1.0;
    metrics.Accumulate(rec);
  }
  std::vector<uint64_t> ranking = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const auto suggestions =
      rules->Suggest(CpuSpike(), ranking, metrics, 100, 150,
                     /*max_rsqls=*/2);
  EXPECT_EQ(suggestions.size(), 2u);
}

TEST(RuleEngineTest, ExecutionCountFeature) {
  auto rules = RepairRuleEngine::FromJsonText(R"({
    "rules": [{"anomaly": "*",
               "template_feature": "execution_count.sudden_increase",
               "action": "throttle"}]})");
  ASSERT_TRUE(rules.ok());
  // Build metrics where executions surge during the anomaly.
  TemplateMetricsStore metrics(0, 200);
  Rng rng(5);
  for (int64_t t = 0; t < 200; ++t) {
    const int count = (t >= 100 && t < 150) ? 50 : 2;
    for (int k = 0; k < count; ++k) {
      QueryLogRecord rec;
      rec.arrival_ms = t * 1000 + rng.UniformInt(0, 999);
      rec.sql_id = 7;
      rec.response_ms = 1.0;
      metrics.Accumulate(rec);
    }
  }
  EXPECT_EQ(rules->Suggest(CpuSpike(), {7}, metrics, 100, 150).size(), 1u);
}

}  // namespace
}  // namespace pinsql::repair
