#include <gtest/gtest.h>

#include "dbsim/engine.h"
#include "repair/actions.h"
#include "repair/rule_engine.h"
#include "util/rng.h"

namespace pinsql::repair {
namespace {

dbsim::QueryArrival MakeArrival(int64_t t_ms, uint64_t sql_id,
                                double cpu_ms) {
  dbsim::QueryArrival a;
  a.arrival_ms = t_ms;
  a.spec.sql_id = sql_id;
  a.spec.cpu_ms = cpu_ms;
  a.spec.examined_rows = 1000;
  return a;
}

// ----------------------------------------------------------------- Actions

TEST(ActionsTest, ThrottleAppliesAndExpires) {
  dbsim::Engine engine(dbsim::SimConfig{});
  ActionExecutor executor(&engine);
  RepairAction action;
  action.type = ActionType::kThrottle;
  action.sql_id = 7;
  action.throttle_max_qps = 1.0;
  action.throttle_duration_sec = 10;
  executor.Execute(action, 0.0);

  engine.AddArrival(MakeArrival(100, 7, 1.0));
  engine.AddArrival(MakeArrival(200, 7, 1.0));
  engine.RunToCompletion();
  EXPECT_EQ(engine.throttled_count(), 1u);

  executor.ExpireThrottles(11'000.0);
  engine.AddArrival(MakeArrival(20'000, 7, 1.0));
  engine.AddArrival(MakeArrival(20'100, 7, 1.0));
  engine.RunToCompletion();
  EXPECT_EQ(engine.throttled_count(), 1u);  // throttle lifted
}

TEST(ActionsTest, ExpireKeepsUnexpiredThrottles) {
  dbsim::Engine engine(dbsim::SimConfig{});
  ActionExecutor executor(&engine);
  RepairAction action;
  action.type = ActionType::kThrottle;
  action.sql_id = 7;
  action.throttle_max_qps = 0.0;
  action.throttle_duration_sec = 100;
  executor.Execute(action, 0.0);
  executor.ExpireThrottles(50'000.0);  // not yet expired
  engine.AddArrival(MakeArrival(60'000, 7, 1.0));
  engine.RunToCompletion();
  EXPECT_EQ(engine.throttled_count(), 1u);
}

TEST(ActionsTest, OptimizeReducesCost) {
  dbsim::Engine engine(dbsim::SimConfig{});
  ActionExecutor executor(&engine);
  RepairAction action;
  action.type = ActionType::kOptimize;
  action.sql_id = 7;
  action.optimize_cpu_factor = 0.2;
  action.optimize_rows_factor = 0.1;
  executor.Execute(action, 0.0);
  engine.AddArrival(MakeArrival(0, 7, 100.0));
  engine.RunToCompletion();
  ASSERT_EQ(engine.completed().size(), 1u);
  EXPECT_NEAR(engine.completed()[0].response_ms(), 20.0, 1.0);
  EXPECT_EQ(engine.completed()[0].examined_rows, 100);
}

TEST(ActionsTest, AutoScaleAddsCores) {
  dbsim::Engine engine(dbsim::SimConfig{});
  const double before = engine.cpu_cores();
  ActionExecutor executor(&engine);
  RepairAction action;
  action.type = ActionType::kAutoScale;
  action.autoscale_add_cores = 8.0;
  executor.Execute(action, 0.0);
  EXPECT_DOUBLE_EQ(engine.cpu_cores(), before + 8.0);
}

TEST(ActionsTest, ReThrottleReplacesExistingEntry) {
  // Regression: re-throttling a template used to stack a second entry, so
  // the older entry's earlier expiry lifted the extended throttle early.
  dbsim::Engine engine(dbsim::SimConfig{});
  ActionExecutor executor(&engine);
  RepairAction action;
  action.type = ActionType::kThrottle;
  action.sql_id = 7;
  action.throttle_max_qps = 0.0;
  action.throttle_duration_sec = 10;
  executor.Execute(action, 0.0);       // expires at t=10s
  executor.Execute(action, 5'000.0);   // extended: expires at t=15s
  EXPECT_EQ(executor.ActiveThrottleCount(), 1u);

  // The original expiry must not lift the extended throttle.
  EXPECT_TRUE(executor.ExpireThrottles(11'000.0).empty());
  engine.AddArrival(MakeArrival(12'000, 7, 1.0));
  engine.RunToCompletion();
  EXPECT_EQ(engine.throttled_count(), 1u);

  const auto expired = executor.ExpireThrottles(15'000.0);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], 7u);
  EXPECT_EQ(executor.ActiveThrottleCount(), 0u);
}

TEST(ActionsTest, CancelThrottleLiftsEarly) {
  dbsim::Engine engine(dbsim::SimConfig{});
  ActionExecutor executor(&engine);
  RepairAction action;
  action.type = ActionType::kThrottle;
  action.sql_id = 7;
  action.throttle_max_qps = 0.0;
  action.throttle_duration_sec = 600;
  executor.Execute(action, 0.0);
  EXPECT_TRUE(executor.CancelThrottle(7, 1'000.0));
  EXPECT_EQ(executor.ActiveThrottleCount(), 0u);
  EXPECT_FALSE(executor.CancelThrottle(7, 1'000.0));  // already lifted
  engine.AddArrival(MakeArrival(2'000, 7, 1.0));
  engine.RunToCompletion();
  EXPECT_EQ(engine.throttled_count(), 0u);
}

TEST(ActionsTest, OptimizeIoFactorFollowsCpuByDefault) {
  RepairAction action;
  action.type = ActionType::kOptimize;
  action.optimize_cpu_factor = 0.3;
  EXPECT_DOUBLE_EQ(action.effective_io_factor(), 0.3);

  dbsim::Engine engine(dbsim::SimConfig{});
  ActionExecutor executor(&engine);
  action.sql_id = 7;
  executor.Execute(action, 0.0);
  const auto factors = engine.GetCostMultiplier(7);
  EXPECT_DOUBLE_EQ(factors.cpu, 0.3);
  EXPECT_DOUBLE_EQ(factors.io, 0.3);
}

TEST(ActionsTest, OptimizeIoFactorDistinctFromCpu) {
  RepairAction action;
  action.type = ActionType::kOptimize;
  action.sql_id = 7;
  action.optimize_cpu_factor = 0.5;
  action.optimize_io_factor = 0.1;  // IO-bound plan: index fixes the scan
  EXPECT_DOUBLE_EQ(action.effective_io_factor(), 0.1);

  dbsim::Engine engine(dbsim::SimConfig{});
  ActionExecutor executor(&engine);
  executor.Execute(action, 0.0);
  const auto factors = engine.GetCostMultiplier(7);
  EXPECT_DOUBLE_EQ(factors.cpu, 0.5);
  EXPECT_DOUBLE_EQ(factors.io, 0.1);
  EXPECT_NE(action.ToString().find("io_factor=0.10"), std::string::npos);
}

TEST(ActionsTest, ScaleActionEffectWeakensEachType) {
  RepairAction throttle;
  throttle.type = ActionType::kThrottle;
  throttle.throttle_max_qps = 2.0;
  // Full-strength application is the identity.
  EXPECT_DOUBLE_EQ(ScaleActionEffect(throttle, 1.0).throttle_max_qps, 2.0);
  // A half-strength throttle admits twice the traffic.
  EXPECT_DOUBLE_EQ(ScaleActionEffect(throttle, 0.5).throttle_max_qps, 4.0);

  RepairAction optimize;
  optimize.type = ActionType::kOptimize;
  optimize.optimize_cpu_factor = 0.2;
  optimize.optimize_rows_factor = 0.2;
  const RepairAction half = ScaleActionEffect(optimize, 0.5);
  // Cost fraction interpolates halfway toward 1 (no optimization).
  EXPECT_DOUBLE_EQ(half.optimize_cpu_factor, 0.6);
  EXPECT_DOUBLE_EQ(half.effective_io_factor(), 0.6);
  EXPECT_DOUBLE_EQ(half.optimize_rows_factor, 0.6);

  RepairAction scale;
  scale.type = ActionType::kAutoScale;
  scale.autoscale_add_cores = 8.0;
  scale.autoscale_io_factor = 2.0;
  const RepairAction quarter = ScaleActionEffect(scale, 0.25);
  EXPECT_DOUBLE_EQ(quarter.autoscale_add_cores, 2.0);
  EXPECT_DOUBLE_EQ(quarter.autoscale_io_factor, 1.25);
}

TEST(ActionsTest, AuditLogRecordsEverything) {
  dbsim::Engine engine(dbsim::SimConfig{});
  ActionExecutor executor(&engine);
  RepairAction throttle;
  throttle.type = ActionType::kThrottle;
  throttle.sql_id = 1;
  throttle.throttle_duration_sec = 1;
  executor.Execute(throttle, 0.0);
  executor.ExpireThrottles(5'000.0);
  ASSERT_EQ(executor.audit_log().size(), 2u);
  EXPECT_NE(executor.audit_log()[0].find("throttle"), std::string::npos);
  EXPECT_NE(executor.audit_log()[1].find("unthrottle"), std::string::npos);
}

TEST(ActionsTest, ToStringMentionsParameters) {
  RepairAction action;
  action.type = ActionType::kOptimize;
  action.sql_id = 0xAB;
  EXPECT_NE(action.ToString().find("optimize"), std::string::npos);
  EXPECT_NE(action.ToString().find("00000000000000AB"), std::string::npos);
}

// -------------------------------------------------------------- RuleEngine

TemplateMetricsStore MetricsWithSurge(uint64_t sql_id, bool rows_surge) {
  TemplateMetricsStore metrics(0, 200);
  Rng rng(3);
  for (int64_t t = 0; t < 200; ++t) {
    const bool anomalous = t >= 100 && t < 150;
    QueryLogRecord rec;
    rec.arrival_ms = t * 1000 + 500;
    rec.sql_id = sql_id;
    rec.response_ms = 5.0;
    rec.examined_rows =
        (rows_surge && anomalous) ? 100'000 : rng.UniformInt(50, 150);
    metrics.Accumulate(rec);
  }
  return metrics;
}

std::vector<anomaly::Phenomenon> CpuSpike() {
  return {{"cpu_usage.spike", 100, 150, 20.0}};
}

TEST(RuleEngineTest, DefaultConfigSuggestsOptimizeOnCpuSpike) {
  const RepairRuleEngine rules = RepairRuleEngine::Default();
  const TemplateMetricsStore metrics = MetricsWithSurge(7, true);
  const auto suggestions =
      rules.Suggest(CpuSpike(), {7}, metrics, 100, 150);
  ASSERT_EQ(suggestions.size(), 1u);
  EXPECT_EQ(suggestions[0].action.type, ActionType::kOptimize);
  EXPECT_EQ(suggestions[0].sql_id, 7u);
  EXPECT_FALSE(suggestions[0].auto_execute);
}

TEST(RuleEngineTest, TemplateFeatureGateBlocksWithoutSurge) {
  const RepairRuleEngine rules = RepairRuleEngine::Default();
  const TemplateMetricsStore metrics = MetricsWithSurge(7, false);
  const auto suggestions =
      rules.Suggest(CpuSpike(), {7}, metrics, 100, 150);
  EXPECT_TRUE(suggestions.empty());
}

TEST(RuleEngineTest, NoMatchingPhenomenonNoSuggestions) {
  const RepairRuleEngine rules = RepairRuleEngine::Default();
  const TemplateMetricsStore metrics = MetricsWithSurge(7, true);
  const std::vector<anomaly::Phenomenon> phenomena = {
      {"iops_usage.level_shift", 100, 150, 5.0}};
  EXPECT_TRUE(rules.Suggest(phenomena, {7}, metrics, 100, 150).empty());
}

TEST(RuleEngineTest, FromJsonFullConfig) {
  // The shape of paper Fig. 5.
  auto rules = RepairRuleEngine::FromJsonText(R"({
    "rules": [
      {"anomaly": "cpu_usage.spike",
       "template_feature": "examined_rows.sudden_increase",
       "action": "optimize",
       "params": {"cpu_factor": 0.25, "rows_factor": 0.2},
       "auto_execute": true,
       "notify": ["dingtalk", "sms"]},
      {"anomaly": "active_session.spike",
       "action": "throttle",
       "params": {"max_qps": 5, "duration_sec": 120}},
      {"anomaly": "*", "action": "autoscale",
       "params": {"add_cores": 16}}
    ]})");
  ASSERT_TRUE(rules.ok());
  ASSERT_EQ(rules->rules().size(), 3u);
  EXPECT_DOUBLE_EQ(rules->rules()[0].action.optimize_cpu_factor, 0.25);
  EXPECT_TRUE(rules->rules()[0].auto_execute);
  EXPECT_EQ(rules->rules()[0].notify,
            (std::vector<std::string>{"dingtalk", "sms"}));
  EXPECT_DOUBLE_EQ(rules->rules()[1].action.throttle_max_qps, 5.0);
  EXPECT_EQ(rules->rules()[1].action.throttle_duration_sec, 120);
  EXPECT_EQ(rules->rules()[2].action.type, ActionType::kAutoScale);
}

TEST(RuleEngineTest, FromJsonRejectsBadConfigs) {
  EXPECT_FALSE(RepairRuleEngine::FromJsonText("[]").ok());
  EXPECT_FALSE(RepairRuleEngine::FromJsonText(R"({"rules": [{}]})").ok());
  EXPECT_FALSE(RepairRuleEngine::FromJsonText(
                   R"({"rules": [{"action": "reboot"}]})")
                   .ok());
  EXPECT_FALSE(RepairRuleEngine::FromJsonText("{nonsense").ok());
}

TEST(RuleEngineTest, FromJsonRejectsOutOfRangeParams) {
  // Negative throttle cap.
  auto bad_qps = RepairRuleEngine::FromJsonText(
      R"({"rules": [{"anomaly": "*", "action": "throttle",
                     "params": {"max_qps": -1}}]})");
  ASSERT_FALSE(bad_qps.ok());
  EXPECT_EQ(bad_qps.status().code(), StatusCode::kOutOfRange);
  EXPECT_NE(bad_qps.status().message().find("max_qps"), std::string::npos);

  // Zero / negative throttle duration.
  auto bad_duration = RepairRuleEngine::FromJsonText(
      R"({"rules": [{"anomaly": "*", "action": "throttle",
                     "params": {"duration_sec": 0}}]})");
  ASSERT_FALSE(bad_duration.ok());
  EXPECT_EQ(bad_duration.status().code(), StatusCode::kOutOfRange);

  // Optimize cost fractions outside (0, 1].
  EXPECT_FALSE(RepairRuleEngine::FromJsonText(
                   R"({"rules": [{"anomaly": "*", "action": "optimize",
                                  "params": {"cpu_factor": 0}}]})")
                   .ok());
  EXPECT_FALSE(RepairRuleEngine::FromJsonText(
                   R"({"rules": [{"anomaly": "*", "action": "optimize",
                                  "params": {"cpu_factor": 1.5}}]})")
                   .ok());
  EXPECT_FALSE(RepairRuleEngine::FromJsonText(
                   R"({"rules": [{"anomaly": "*", "action": "optimize",
                                  "params": {"io_factor": -0.5}}]})")
                   .ok());

  // Autoscale must add cores and keep a positive IO factor.
  EXPECT_FALSE(RepairRuleEngine::FromJsonText(
                   R"({"rules": [{"anomaly": "*", "action": "autoscale",
                                  "params": {"add_cores": -4}}]})")
                   .ok());
  EXPECT_FALSE(RepairRuleEngine::FromJsonText(
                   R"({"rules": [{"anomaly": "*", "action": "autoscale",
                                  "params": {"io_factor": 0}}]})")
                   .ok());
}

TEST(RuleEngineTest, FromJsonParsesOptimizeIoFactor) {
  auto rules = RepairRuleEngine::FromJsonText(
      R"({"rules": [{"anomaly": "*", "action": "optimize",
                     "params": {"cpu_factor": 0.5, "io_factor": 0.1}}]})");
  ASSERT_TRUE(rules.ok());
  EXPECT_DOUBLE_EQ(rules->rules()[0].action.optimize_cpu_factor, 0.5);
  EXPECT_DOUBLE_EQ(rules->rules()[0].action.effective_io_factor(), 0.1);

  // Omitted io_factor follows cpu_factor (back-compat with old configs).
  auto legacy = RepairRuleEngine::FromJsonText(
      R"({"rules": [{"anomaly": "*", "action": "optimize",
                     "params": {"cpu_factor": 0.5}}]})");
  ASSERT_TRUE(legacy.ok());
  EXPECT_DOUBLE_EQ(legacy->rules()[0].action.effective_io_factor(), 0.5);
}

TEST(RuleEngineTest, DefaultPolicyRoundTripsThroughJson) {
  const RepairRuleEngine original = RepairRuleEngine::Default();
  const Json serialized = original.ToJson();
  auto reparsed = RepairRuleEngine::FromJson(serialized);
  ASSERT_TRUE(reparsed.ok());
  ASSERT_EQ(reparsed->rules().size(), original.rules().size());
  for (size_t i = 0; i < original.rules().size(); ++i) {
    const RepairRule& a = original.rules()[i];
    const RepairRule& b = reparsed->rules()[i];
    EXPECT_EQ(a.anomaly, b.anomaly);
    EXPECT_EQ(a.template_feature, b.template_feature);
    EXPECT_EQ(a.action.type, b.action.type);
    EXPECT_EQ(a.auto_execute, b.auto_execute);
    EXPECT_EQ(a.notify, b.notify);
    EXPECT_DOUBLE_EQ(a.action.throttle_max_qps, b.action.throttle_max_qps);
    EXPECT_EQ(a.action.throttle_duration_sec, b.action.throttle_duration_sec);
    EXPECT_DOUBLE_EQ(a.action.optimize_cpu_factor,
                     b.action.optimize_cpu_factor);
    EXPECT_DOUBLE_EQ(a.action.effective_io_factor(),
                     b.action.effective_io_factor());
    EXPECT_DOUBLE_EQ(a.action.optimize_rows_factor,
                     b.action.optimize_rows_factor);
  }
  // A second serialization is textually identical (stable round-trip).
  EXPECT_EQ(serialized.Dump(), reparsed->ToJson().Dump());
}

TEST(RuleEngineTest, AutoScaleSuggestionHasNoTarget) {
  auto rules = RepairRuleEngine::FromJsonText(
      R"({"rules": [{"anomaly": "*", "action": "autoscale"}]})");
  ASSERT_TRUE(rules.ok());
  const TemplateMetricsStore metrics = MetricsWithSurge(7, true);
  const auto suggestions =
      rules->Suggest(CpuSpike(), {7}, metrics, 100, 150);
  ASSERT_EQ(suggestions.size(), 1u);
  EXPECT_EQ(suggestions[0].sql_id, 0u);
}

TEST(RuleEngineTest, MaxRsqlsBoundsSuggestions) {
  auto rules = RepairRuleEngine::FromJsonText(
      R"({"rules": [{"anomaly": "*", "action": "throttle"}]})");
  ASSERT_TRUE(rules.ok());
  TemplateMetricsStore metrics(0, 200);
  for (uint64_t id = 1; id <= 10; ++id) {
    QueryLogRecord rec;
    rec.arrival_ms = 500;
    rec.sql_id = id;
    rec.response_ms = 1.0;
    metrics.Accumulate(rec);
  }
  std::vector<uint64_t> ranking = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const auto suggestions =
      rules->Suggest(CpuSpike(), ranking, metrics, 100, 150,
                     /*max_rsqls=*/2);
  EXPECT_EQ(suggestions.size(), 2u);
}

TEST(RuleEngineTest, ExecutionCountFeature) {
  auto rules = RepairRuleEngine::FromJsonText(R"({
    "rules": [{"anomaly": "*",
               "template_feature": "execution_count.sudden_increase",
               "action": "throttle"}]})");
  ASSERT_TRUE(rules.ok());
  // Build metrics where executions surge during the anomaly.
  TemplateMetricsStore metrics(0, 200);
  Rng rng(5);
  for (int64_t t = 0; t < 200; ++t) {
    const int count = (t >= 100 && t < 150) ? 50 : 2;
    for (int k = 0; k < count; ++k) {
      QueryLogRecord rec;
      rec.arrival_ms = t * 1000 + rng.UniformInt(0, 999);
      rec.sql_id = 7;
      rec.response_ms = 1.0;
      metrics.Accumulate(rec);
    }
  }
  EXPECT_EQ(rules->Suggest(CpuSpike(), {7}, metrics, 100, 150).size(), 1u);
}

}  // namespace
}  // namespace pinsql::repair
