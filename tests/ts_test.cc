#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "ts/stats.h"
#include "ts/time_series.h"
#include "ts/tukey.h"
#include "util/rng.h"

namespace pinsql {
namespace {

// ------------------------------------------------------------- TimeSeries

TEST(TimeSeriesTest, ConstructionAndIndexing) {
  TimeSeries ts(100, 1, 5);
  EXPECT_EQ(ts.size(), 5u);
  EXPECT_EQ(ts.start_time(), 100);
  EXPECT_EQ(ts.end_time(), 105);
  EXPECT_TRUE(ts.Covers(100));
  EXPECT_TRUE(ts.Covers(104));
  EXPECT_FALSE(ts.Covers(105));
  EXPECT_FALSE(ts.Covers(99));
}

TEST(TimeSeriesTest, TimestampAndIndexAccessAgree) {
  // Paper Definition II.1: X_{t1} == X_1.
  TimeSeries ts(100, 1, {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(ts.AtTime(101), ts[1]);
  ts.AtTime(102) = 9.0;
  EXPECT_DOUBLE_EQ(ts[2], 9.0);
  EXPECT_EQ(ts.IndexForTime(102), 2u);
  EXPECT_EQ(ts.TimeForIndex(2), 102);
}

TEST(TimeSeriesTest, MinuteInterval) {
  TimeSeries ts(600, 60, 3);
  EXPECT_EQ(ts.end_time(), 780);
  EXPECT_EQ(ts.IndexForTime(659), 0u);
  EXPECT_EQ(ts.IndexForTime(660), 1u);
}

TEST(TimeSeriesTest, AccumulateAtIgnoresOutOfRange) {
  TimeSeries ts(0, 1, 3);
  ts.AccumulateAt(1, 2.0);
  ts.AccumulateAt(1, 3.0);
  ts.AccumulateAt(-5, 100.0);
  ts.AccumulateAt(3, 100.0);
  EXPECT_DOUBLE_EQ(ts[1], 5.0);
  EXPECT_DOUBLE_EQ(ts.Sum(), 5.0);
}

TEST(TimeSeriesTest, SliceClampsToRange) {
  TimeSeries ts(10, 1, {0, 1, 2, 3, 4});
  TimeSeries mid = ts.Slice(11, 14);
  EXPECT_EQ(mid.size(), 3u);
  EXPECT_EQ(mid.start_time(), 11);
  EXPECT_DOUBLE_EQ(mid[0], 1.0);
  EXPECT_DOUBLE_EQ(mid[2], 3.0);

  TimeSeries all = ts.Slice(0, 100);
  EXPECT_EQ(all.size(), 5u);

  TimeSeries empty = ts.Slice(14, 14);
  EXPECT_TRUE(empty.empty());
}

TEST(TimeSeriesTest, ResampleSumMeanMax) {
  TimeSeries ts(0, 1, {1, 2, 3, 4, 5, 6});
  TimeSeries sum = ts.Resample(2, TimeSeries::Agg::kSum);
  EXPECT_EQ(sum.size(), 3u);
  EXPECT_EQ(sum.interval_sec(), 2);
  EXPECT_DOUBLE_EQ(sum[0], 3.0);
  EXPECT_DOUBLE_EQ(sum[2], 11.0);

  TimeSeries mean = ts.Resample(3, TimeSeries::Agg::kMean);
  EXPECT_DOUBLE_EQ(mean[0], 2.0);
  EXPECT_DOUBLE_EQ(mean[1], 5.0);

  TimeSeries mx = ts.Resample(6, TimeSeries::Agg::kMax);
  EXPECT_DOUBLE_EQ(mx[0], 6.0);
}

TEST(TimeSeriesTest, ResampleHandlesPartialTrailingBucket) {
  TimeSeries ts(0, 1, {1, 1, 1, 1, 1});
  TimeSeries sum = ts.Resample(2, TimeSeries::Agg::kSum);
  EXPECT_EQ(sum.size(), 3u);
  EXPECT_DOUBLE_EQ(sum[2], 1.0);  // last bucket has one point
  TimeSeries mean = ts.Resample(2, TimeSeries::Agg::kMean);
  EXPECT_DOUBLE_EQ(mean[2], 1.0);
}

TEST(TimeSeriesTest, AddInPlaceAndDivide) {
  TimeSeries a(0, 1, {1, 2, 3});
  TimeSeries b(0, 1, {10, 0, 30});
  a.AddInPlace(b);
  EXPECT_DOUBLE_EQ(a[0], 11.0);
  TimeSeries ratio = a.DivideBy(b);
  EXPECT_DOUBLE_EQ(ratio[0], 1.1);
  EXPECT_DOUBLE_EQ(ratio[1], 0.0);  // zero denominator -> 0
  EXPECT_DOUBLE_EQ(ratio[2], 1.1);
}

TEST(TimeSeriesTest, SummaryStats) {
  TimeSeries ts(0, 1, {2, 4, 6});
  EXPECT_DOUBLE_EQ(ts.Sum(), 12.0);
  EXPECT_DOUBLE_EQ(ts.Max(), 6.0);
  EXPECT_DOUBLE_EQ(ts.Mean(), 4.0);
  TimeSeries empty;
  EXPECT_DOUBLE_EQ(empty.Mean(), 0.0);
}

// ------------------------------------------------------------------ Stats

TEST(StatsTest, MeanVarianceStddev) {
  const std::vector<double> x = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(x), 5.0);
  EXPECT_DOUBLE_EQ(Variance(x), 4.0);
  EXPECT_DOUBLE_EQ(Stddev(x), 2.0);
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {2, 4, 6, 8};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  const std::vector<double> neg = {8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, neg), -1.0, 1e-12);
}

TEST(StatsTest, PearsonConstantInputIsZero) {
  const std::vector<double> x = {1, 1, 1, 1};
  const std::vector<double> y = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, y), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation(y, x), 0.0);
}

TEST(StatsTest, PearsonIsScaleAndShiftInvariant) {
  Rng rng(11);
  std::vector<double> x(200);
  std::vector<double> y(200);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.Normal(0, 1);
    y[i] = 3.0 * x[i] + rng.Normal(0, 0.5);
  }
  const double base = PearsonCorrelation(x, y);
  std::vector<double> scaled = y;
  for (double& v : scaled) v = 100.0 + 7.0 * v;
  EXPECT_NEAR(PearsonCorrelation(x, scaled), base, 1e-12);
}

TEST(StatsTest, WeightedPearsonReducesToPlainWithUnitWeights) {
  Rng rng(5);
  std::vector<double> x(100);
  std::vector<double> y(100);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.Uniform01();
    y[i] = x[i] + rng.Normal(0, 0.2);
  }
  const std::vector<double> w(100, 1.0);
  EXPECT_NEAR(WeightedPearsonCorrelation(x, y, w), PearsonCorrelation(x, y),
              1e-12);
}

TEST(StatsTest, WeightedPearsonFocusesOnHighWeightRegion) {
  // x and y agree on the first half and disagree on the second half.
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(i);
  }
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(50 - i);
  }
  std::vector<double> first_half(100, 0.0);
  std::fill(first_half.begin(), first_half.begin() + 50, 1.0);
  std::vector<double> second_half(100, 0.0);
  std::fill(second_half.begin() + 50, second_half.end(), 1.0);
  EXPECT_GT(WeightedPearsonCorrelation(x, y, first_half), 0.99);
  EXPECT_LT(WeightedPearsonCorrelation(x, y, second_half), -0.99);
}

TEST(StatsTest, WeightedPearsonZeroWeightsReturnsZero) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> w(3, 0.0);
  EXPECT_DOUBLE_EQ(WeightedPearsonCorrelation(x, x, w), 0.0);
}

TEST(StatsTest, SigmoidSymmetry) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(100.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-100.0), 0.0, 1e-12);
  EXPECT_NEAR(Sigmoid(2.0) + Sigmoid(-2.0), 1.0, 1e-12);
}

TEST(StatsTest, SigmoidWeightsPeakInsideAnomalyPeriod) {
  // Paper Eq. (1): weights ~1 inside [as, ae), lower outside.
  const auto w = SigmoidAnomalyWeights(0, 200, 1, 100, 150, 10.0);
  ASSERT_EQ(w.size(), 200u);
  EXPECT_LT(w[0], 0.01);
  EXPECT_GT(w[125], 0.8);  // sigma(2.5) + sigma(2.5) - 1 ~ 0.848
  EXPECT_LT(w[199], 0.05);
  // Smooth growth around the boundary: sigma(0) + sigma(5) - 1 ~ 0.49.
  EXPECT_NEAR(w[100], 0.5, 0.02);
  // Weights are non-negative whenever a_e > a_s.
  for (double v : w) EXPECT_GE(v, 0.0);
}

TEST(StatsTest, SigmoidWeightsLimitBehaviour) {
  // k_s -> 0: indicator of the anomaly period.
  const auto sharp = SigmoidAnomalyWeights(0, 100, 1, 40, 60, 1e-3);
  EXPECT_NEAR(sharp[39], 0.0, 1e-6);
  EXPECT_NEAR(sharp[41], 1.0, 1e-6);
  // k_s -> inf: all weights become equal (so the weighted Pearson reduces
  // to the naive Pearson, which is the property the paper's Eq. (1) is
  // really after — the pointwise limit is sigma(0)+sigma(0)-1 = 0).
  const auto flat = SigmoidAnomalyWeights(0, 100, 1, 40, 60, 1e9);
  for (double v : flat) EXPECT_NEAR(v, flat[0], 1e-9);
}

TEST(StatsTest, MinMaxNormalize) {
  const auto out = MinMaxNormalize({2, 4, 6});
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 0.5);
  EXPECT_DOUBLE_EQ(out[2], 1.0);
  const auto constant = MinMaxNormalize({3, 3, 3});
  for (double v : constant) EXPECT_DOUBLE_EQ(v, 0.5);
  EXPECT_TRUE(MinMaxNormalize({}).empty());
}

TEST(StatsTest, MeanSquaredError) {
  EXPECT_DOUBLE_EQ(MeanSquaredError({1, 2, 3}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(MeanSquaredError({0, 0}, {3, 4}), 12.5);
}

// ------------------------------------------------------------------ Tukey

TEST(TukeyTest, QuantileInterpolation) {
  std::vector<double> x = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Quantile(x, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(x, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(x, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Quantile({5}, 0.75), 5.0);
}

TEST(TukeyTest, FencesClassicExample) {
  // Q1 = 2.5, Q3 = 7.5 -> IQR = 5; k = 1.5 -> [-5, 15].
  const std::vector<double> x = {1, 2, 3, 4, 6, 7, 8, 9};
  const TukeyFences f = ComputeTukeyFences(x, 1.5);
  EXPECT_NEAR(f.lower, 2.75 - 1.5 * 4.5, 1e-9);
  EXPECT_NEAR(f.upper, 7.25 + 1.5 * 4.5, 1e-9);
}

TEST(TukeyTest, OutlierIndices) {
  std::vector<double> x(50, 10.0);
  x[20] = 100.0;
  x[30] = -80.0;
  const auto idx = TukeyOutlierIndices(x, 1.5);
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], 20u);
  EXPECT_EQ(idx[1], 30u);
}

TEST(TukeyTest, UpwardOnlyDetection) {
  std::vector<double> x(50, 10.0);
  x[5] = -100.0;  // downward excursion only
  EXPECT_FALSE(HasUpwardTukeyAnomaly(x, 1.5));
  x[6] = 200.0;
  EXPECT_TRUE(HasUpwardTukeyAnomaly(x, 1.5));
}

TEST(TukeyTest, AllZeroSeriesFlagsAnySpike) {
  // The degenerate case that matters for one-shot DDL templates: an
  // all-zero history makes any execution an upward anomaly.
  std::vector<double> x(100, 0.0);
  EXPECT_FALSE(HasUpwardTukeyAnomaly(x, 3.0));
  x[50] = 1.0;
  EXPECT_TRUE(HasUpwardTukeyAnomaly(x, 3.0));
}

TEST(TukeyTest, WindowExceedsReferenceFences) {
  std::vector<double> reference(100, 5.0);
  for (size_t i = 0; i < reference.size(); i += 3) reference[i] = 6.0;
  EXPECT_FALSE(
      WindowExceedsReferenceFences(reference, {5.0, 6.0, 5.5}, 1.5));
  EXPECT_TRUE(WindowExceedsReferenceFences(reference, {5.0, 60.0}, 1.5));
  EXPECT_FALSE(WindowExceedsReferenceFences({}, {1.0}, 1.5));
  EXPECT_FALSE(WindowExceedsReferenceFences({1.0}, {}, 1.5));
}

TEST(TukeyTest, DegenerateInputsYieldOpenFences) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // All-gap and too-short baselines must not produce fences at all: the
  // old [0, 0] fences from an all-NaN series flagged every positive value.
  for (const std::vector<double>& x :
       {std::vector<double>{}, std::vector<double>{nan, nan, nan, nan},
        std::vector<double>{1.0, 2.0, 3.0},
        std::vector<double>{5.0, nan, 6.0, nan}}) {
    const TukeyFences f = ComputeTukeyFences(x, 1.5);
    EXPECT_FALSE(f.valid);
    EXPECT_EQ(f.lower, -std::numeric_limits<double>::infinity());
    EXPECT_EQ(f.upper, std::numeric_limits<double>::infinity());
  }
  const TukeyFences ok = ComputeTukeyFences({1, 2, 3, 4}, 1.5);
  EXPECT_TRUE(ok.valid);
  EXPECT_EQ(ok.finite_points, 4u);
}

TEST(TukeyTest, AllGapReferenceNeverFlagsTheWindow) {
  // Regression: a history window that survived retrieval but is all
  // telemetry gaps used to produce [0, 0] fences, making any execution
  // count look like an upward anomaly and vetoing valid R-SQL candidates.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> all_gaps(20, nan);
  EXPECT_FALSE(WindowExceedsReferenceFences(all_gaps, {5.0}, 1.5));
  EXPECT_FALSE(WindowExceedsReferenceFences({nan, nan, 3.0}, {5.0}, 1.5));
}

TEST(TukeyTest, ShortSeriesHasNoUpwardAnomaly) {
  // Quartiles of 3 points are noise; {1, 2, 100} used to flag 100.
  EXPECT_FALSE(HasUpwardTukeyAnomaly(std::vector<double>{1.0, 2.0, 100.0},
                                     1.5));
  EXPECT_TRUE(TukeyOutlierIndices({1.0, 2.0, 100.0}, 1.5).empty());
}

TEST(TukeyTest, ConstantSeriesWithEnoughPointsKeepsPinnedFences) {
  // Deliberately NOT degenerate: an all-constant baseline of >= 4 points
  // carries real information (one-shot DDL templates have all-zero
  // history), so its [c, c] fences must survive the degenerate-input
  // guard.
  const TukeyFences f = ComputeTukeyFences(std::vector<double>(10, 7.0), 3.0);
  EXPECT_TRUE(f.valid);
  EXPECT_DOUBLE_EQ(f.lower, 7.0);
  EXPECT_DOUBLE_EQ(f.upper, 7.0);
}

// Property sweep: for Gaussian data, Tukey k=3 should flag (almost)
// nothing; a large injected spike is always flagged.
class TukeyPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TukeyPropertyTest, GaussianCleanSpikedFlagged) {
  Rng rng(GetParam());
  std::vector<double> x(300);
  for (double& v : x) v = rng.Normal(50.0, 5.0);
  EXPECT_FALSE(HasUpwardTukeyAnomaly(x, 3.0));
  x[137] = 50.0 + 5.0 * 40.0;
  EXPECT_TRUE(HasUpwardTukeyAnomaly(x, 3.0));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TukeyPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// Property sweep: weighted Pearson with sigmoid weights recovers the
// correlation of the emphasized window.
class SigmoidWeightPropertyTest
    : public ::testing::TestWithParam<double> {};

TEST_P(SigmoidWeightPropertyTest, EmphasisInterpolatesBetweenLimits) {
  const double ks = GetParam();
  const auto w = SigmoidAnomalyWeights(0, 300, 1, 100, 200, ks);
  // Weights are in [-1, 1] shifted: actually in (-1, 1]; inside the
  // anomaly they must dominate the outside.
  double inside = 0.0;
  double outside = 0.0;
  for (size_t i = 0; i < w.size(); ++i) {
    if (i >= 100 && i < 200) {
      inside += w[i];
    } else {
      outside += w[i];
    }
  }
  EXPECT_GT(inside / 100.0, outside / 200.0);
}

INSTANTIATE_TEST_SUITE_P(SmoothFactors, SigmoidWeightPropertyTest,
                         ::testing::Values(1.0, 5.0, 30.0, 120.0));

}  // namespace
}  // namespace pinsql
