// Tentpole suite for the telemetry fault-injection subsystem and the
// diagnosis chain's graceful degradation. The two contracts under test:
//
//  1. Severity 0 is a guaranteed no-op: for every fault class, injection
//     leaves metrics/logs/history bit-identical and the diagnosis output
//     matches the unfaulted run exactly.
//  2. Any non-zero severity degrades, never crashes: Diagnose returns ok
//     (with DataQuality populated) or a clean error Status — for every
//     fault class, severity in {0.1, 0.3, 0.5}, anomaly type, and
//     num_threads in {1, 4}. The suite runs under ASan and TSan in CI.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <tuple>
#include <vector>

#include "core/diagnoser.h"
#include "eval/case_generator.h"
#include "eval/chaos.h"
#include "eval/runner.h"
#include "faults/fault_injector.h"

namespace pinsql {
namespace {

eval::CaseGenOptions SmallCase(workload::AnomalyType type) {
  eval::CaseGenOptions options;
  options.seed = 20260807;
  options.type = type;
  options.pre_anomaly_sec = 300;
  options.anomaly_duration_sec = 150;
  options.post_anomaly_sec = 30;
  options.scenario.num_clusters = 4;
  return options;
}

/// Case generation is the expensive part of every test here; cache one
/// pristine case per anomaly type and hand out copies.
const eval::AnomalyCaseData& CachedCase(workload::AnomalyType type) {
  static std::map<workload::AnomalyType, eval::AnomalyCaseData> cache;
  auto it = cache.find(type);
  if (it == cache.end()) {
    it = cache.emplace(type, eval::GenerateCase(SmallCase(type))).first;
  }
  return it->second;
}

void ExpectSeriesIdentical(const TimeSeries& a, const TimeSeries& b) {
  ASSERT_EQ(a.start_time(), b.start_time());
  ASSERT_EQ(a.interval_sec(), b.interval_sec());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    // Bit-identical, including NaN-ness (none expected on clean input).
    ASSERT_EQ(std::isnan(a[i]), std::isnan(b[i])) << "index " << i;
    if (!std::isnan(a[i])) ASSERT_EQ(a[i], b[i]) << "index " << i;
  }
}

void ExpectRecordsIdentical(const std::vector<QueryLogRecord>& a,
                            const std::vector<QueryLogRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].arrival_ms, b[i].arrival_ms) << "record " << i;
    ASSERT_EQ(a[i].sql_id, b[i].sql_id) << "record " << i;
    ASSERT_EQ(a[i].response_ms, b[i].response_ms) << "record " << i;
    ASSERT_EQ(a[i].examined_rows, b[i].examined_rows) << "record " << i;
  }
}

std::vector<std::tuple<uint64_t, int, std::vector<double>>> HistorySnapshot(
    const core::MapHistoryProvider& history) {
  std::vector<std::tuple<uint64_t, int, std::vector<double>>> out;
  history.ForEach([&](uint64_t sql_id, int days_ago, const TimeSeries& s) {
    out.emplace_back(sql_id, days_ago, s.values());
  });
  return out;
}

// ------------------------------------------------------ severity-0 no-op

class SeverityZeroTest : public ::testing::TestWithParam<faults::FaultClass> {
};

TEST_P(SeverityZeroTest, InjectionIsBitIdenticalNoOp) {
  eval::AnomalyCaseData data = CachedCase(workload::AnomalyType::kRowLock);
  const eval::AnomalyCaseData& pristine =
      CachedCase(workload::AnomalyType::kRowLock);

  faults::FaultPlan plan;
  plan.seed = 99;
  plan.severity = 0.0;
  plan = plan.Only(GetParam());

  const faults::InjectionStats stats = eval::ApplyCaseFaults(plan, &data);
  EXPECT_EQ(stats.total(), 0u);
  ExpectSeriesIdentical(data.metrics.active_session,
                        pristine.metrics.active_session);
  ExpectSeriesIdentical(data.metrics.cpu_usage, pristine.metrics.cpu_usage);
  ExpectRecordsIdentical(data.logs.SortedRecords(),
                         pristine.logs.SortedRecords());
  EXPECT_EQ(HistorySnapshot(data.history), HistorySnapshot(pristine.history));
}

TEST_P(SeverityZeroTest, DiagnosisMatchesUnfaultedRunExactly) {
  eval::AnomalyCaseData faulted = CachedCase(workload::AnomalyType::kPoorSql);
  faults::FaultPlan plan;
  plan.seed = 7;
  plan.severity = 0.0;
  plan = plan.Only(GetParam());
  eval::ApplyCaseFaults(plan, &faulted);

  const core::DiagnoserOptions options;
  const StatusOr<core::DiagnosisResult> clean = core::Diagnose(
      eval::MakeDiagnosisInput(CachedCase(workload::AnomalyType::kPoorSql)),
      options);
  const StatusOr<core::DiagnosisResult> after =
      core::Diagnose(eval::MakeDiagnosisInput(faulted), options);
  ASSERT_TRUE(clean.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(clean->rsql.ranking, after->rsql.ranking);
  ASSERT_EQ(clean->hsql_ranking.size(), after->hsql_ranking.size());
  for (size_t i = 0; i < clean->hsql_ranking.size(); ++i) {
    EXPECT_EQ(clean->hsql_ranking[i].sql_id, after->hsql_ranking[i].sql_id);
    EXPECT_EQ(clean->hsql_ranking[i].impact, after->hsql_ranking[i].impact);
  }
  EXPECT_EQ(clean->data_quality.confidence, after->data_quality.confidence);
  EXPECT_EQ(clean->data_quality.notes, after->data_quality.notes);
}

INSTANTIATE_TEST_SUITE_P(AllFaultClasses, SeverityZeroTest,
                         ::testing::ValuesIn(std::begin(
                                                 faults::kAllFaultClasses),
                                             std::end(
                                                 faults::kAllFaultClasses)));

// ------------------------------------------------- injector determinism

TEST(FaultInjectorTest, SamePlanPerturbsIdentically) {
  eval::AnomalyCaseData a = CachedCase(workload::AnomalyType::kMdlLock);
  eval::AnomalyCaseData b = CachedCase(workload::AnomalyType::kMdlLock);
  faults::FaultPlan plan;
  plan.seed = 31337;
  plan.severity = 0.4;
  const faults::InjectionStats sa = eval::ApplyCaseFaults(plan, &a);
  const faults::InjectionStats sb = eval::ApplyCaseFaults(plan, &b);
  EXPECT_EQ(sa.total(), sb.total());
  EXPECT_EQ(sa.ToString(), sb.ToString());
  ExpectRecordsIdentical(a.logs.SortedRecords(), b.logs.SortedRecords());
  ASSERT_EQ(a.metrics.active_session.size(), b.metrics.active_session.size());
  for (size_t i = 0; i < a.metrics.active_session.size(); ++i) {
    const double va = a.metrics.active_session[i];
    const double vb = b.metrics.active_session[i];
    ASSERT_EQ(std::isnan(va), std::isnan(vb)) << "index " << i;
    if (!std::isnan(va)) ASSERT_EQ(va, vb) << "index " << i;
  }
}

TEST(FaultInjectorTest, LogFaultStatsMatchRecordCounts) {
  const eval::AnomalyCaseData& data =
      CachedCase(workload::AnomalyType::kRowLock);
  std::vector<QueryLogRecord> records = data.logs.SortedRecords();
  const size_t before = records.size();

  faults::FaultPlan plan;
  plan.seed = 5;
  plan.severity = 0.5;
  faults::InjectionStats stats;
  const std::vector<QueryLogRecord> after =
      faults::InjectLogFaults(plan, std::move(records), &stats);
  EXPECT_EQ(after.size(),
            before - stats.log_records_dropped + stats.log_records_duplicated);
  EXPECT_GT(stats.log_records_dropped, 0u);
  EXPECT_GT(stats.log_records_duplicated, 0u);
}

TEST(FaultInjectorTest, HistoryFaultsDropAndTruncateWindows) {
  eval::AnomalyCaseData data = CachedCase(workload::AnomalyType::kPoorSql);
  const size_t windows_before = data.history.size();
  ASSERT_GT(windows_before, 0u);
  const auto pristine = HistorySnapshot(data.history);

  faults::FaultPlan plan;
  plan.seed = 11;
  plan.severity = 0.6;
  faults::InjectionStats stats;
  faults::InjectHistoryFaults(plan, &data.history, &stats);
  EXPECT_EQ(data.history.size(), windows_before - stats.history_windows_dropped);
  EXPECT_GT(stats.history_windows_dropped, 0u);
  EXPECT_GT(stats.history_windows_truncated, 0u);

  // Every surviving window is a prefix of its pristine self.
  size_t shorter = 0;
  for (const auto& [sql_id, days_ago, values] : pristine) {
    const TimeSeries* now = data.history.ExecutionHistory(sql_id, days_ago);
    if (now == nullptr) continue;
    ASSERT_LE(now->size(), values.size());
    for (size_t i = 0; i < now->size(); ++i) {
      ASSERT_EQ((*now)[i], values[i]);
    }
    if (now->size() < values.size()) ++shorter;
  }
  EXPECT_EQ(shorter, stats.history_windows_truncated);
}

TEST(FaultInjectorTest, SeverityScalesPerturbationVolume) {
  faults::FaultPlan mild;
  mild.seed = 21;
  mild.severity = 0.1;
  faults::FaultPlan harsh = mild.WithSeverity(0.8);

  eval::AnomalyCaseData a = CachedCase(workload::AnomalyType::kBusinessSpike);
  eval::AnomalyCaseData b = CachedCase(workload::AnomalyType::kBusinessSpike);
  const faults::InjectionStats sa = eval::ApplyCaseFaults(mild, &a);
  const faults::InjectionStats sb = eval::ApplyCaseFaults(harsh, &b);
  EXPECT_GT(sa.total(), 0u);
  EXPECT_GT(sb.total(), sa.total());
  EXPECT_GT(sb.log_records_dropped, sa.log_records_dropped);
  EXPECT_GT(sb.metric_points_gapped, sa.metric_points_gapped);
}

// ------------------------------------------- graceful degradation sweep

struct DegradationParam {
  workload::AnomalyType type;
  double severity;
  int num_threads;
};

class DegradationTest : public ::testing::TestWithParam<DegradationParam> {};

TEST_P(DegradationTest, AllClassesEnabledNeverCrashes) {
  const DegradationParam& p = GetParam();
  eval::AnomalyCaseData data = CachedCase(p.type);
  faults::FaultPlan plan;
  plan.seed = 404;
  plan.severity = p.severity;
  const faults::InjectionStats stats = eval::ApplyCaseFaults(plan, &data);
  EXPECT_GT(stats.total(), 0u);

  core::DiagnoserOptions options;
  options.num_threads = p.num_threads;
  const StatusOr<core::DiagnosisResult> result =
      core::Diagnose(eval::MakeDiagnosisInput(data), options);
  if (!result.ok()) {
    // A clean refusal is an acceptable degradation outcome; an empty
    // message or an OK code here would mean a malformed Status.
    EXPECT_NE(result.status().code(), StatusCode::kOk);
    EXPECT_FALSE(result.status().message().empty());
    return;
  }
  const core::DataQuality& dq = result->data_quality;
  EXPECT_TRUE(dq.degraded());
  EXPECT_GT(dq.session_points, 0u);
  EXPECT_GE(dq.confidence, 0.0);
  EXPECT_LT(dq.confidence, 1.0);
  // Injected gaps must be visible in the accounting (gap points, garbage
  // sanitization, dropped helpers or truncated history — at least one).
  EXPECT_GT(dq.session_gap_points + dq.helper_gap_points +
                dq.metric_points_sanitized + dq.history_windows_missing +
                dq.history_windows_truncated,
            0u);
}

std::vector<DegradationParam> DegradationGrid() {
  std::vector<DegradationParam> grid;
  for (workload::AnomalyType type :
       {workload::AnomalyType::kBusinessSpike, workload::AnomalyType::kPoorSql,
        workload::AnomalyType::kMdlLock, workload::AnomalyType::kRowLock}) {
    for (double severity : {0.1, 0.3, 0.5}) {
      for (int threads : {1, 4}) {
        grid.push_back({type, severity, threads});
      }
    }
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(Sweep, DegradationTest,
                         ::testing::ValuesIn(DegradationGrid()));

class PerClassDegradationTest
    : public ::testing::TestWithParam<faults::FaultClass> {};

TEST_P(PerClassDegradationTest, SingleClassAtMidSeverityNeverCrashes) {
  for (const int threads : {1, 4}) {
    SCOPED_TRACE("num_threads=" + std::to_string(threads));
    eval::AnomalyCaseData data = CachedCase(workload::AnomalyType::kMdlLock);
    faults::FaultPlan plan;
    plan.seed = 17;
    plan.severity = 0.3;
    plan = plan.Only(GetParam());
    eval::ApplyCaseFaults(plan, &data);

    core::DiagnoserOptions options;
    options.num_threads = threads;
    const StatusOr<core::DiagnosisResult> result =
        core::Diagnose(eval::MakeDiagnosisInput(data), options);
    if (result.ok()) {
      EXPECT_GE(result->data_quality.confidence, 0.0);
      EXPECT_LE(result->data_quality.confidence, 1.0);
    } else {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFaultClasses, PerClassDegradationTest,
                         ::testing::ValuesIn(std::begin(
                                                 faults::kAllFaultClasses),
                                             std::end(
                                                 faults::kAllFaultClasses)));

// --------------------------------------------------- extreme blackouts

TEST(DegradationExtremesTest, FullyGappedSessionSeriesDoesNotCrash) {
  eval::AnomalyCaseData data = CachedCase(workload::AnomalyType::kRowLock);
  for (size_t i = 0; i < data.metrics.active_session.size(); ++i) {
    data.metrics.active_session[i] = std::nan("");
  }
  const StatusOr<core::DiagnosisResult> result =
      core::Diagnose(eval::MakeDiagnosisInput(data),
                     core::DiagnoserOptions{});
  if (result.ok()) {
    EXPECT_TRUE(result->data_quality.degraded());
    EXPECT_EQ(result->data_quality.session_gap_points,
              result->data_quality.session_points);
  } else {
    EXPECT_FALSE(result.status().message().empty());
  }
}

TEST(DegradationExtremesTest, SeverityOneEverythingEnabledDoesNotCrash) {
  for (workload::AnomalyType type :
       {workload::AnomalyType::kBusinessSpike,
        workload::AnomalyType::kMdlLock}) {
    eval::AnomalyCaseData data = CachedCase(type);
    faults::FaultPlan plan;
    plan.seed = 1;
    plan.severity = 1.0;
    eval::ApplyCaseFaults(plan, &data);
    const StatusOr<core::DiagnosisResult> result =
        core::Diagnose(eval::MakeDiagnosisInput(data),
                       core::DiagnoserOptions{});
    if (result.ok()) {
      EXPECT_TRUE(result->data_quality.degraded());
      EXPECT_LT(result->data_quality.confidence, 1.0);
    } else {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

// --------------------------------------------------------- chaos harness

TEST(ChaosEvaluationTest, SeverityZeroPointMatchesCleanEvaluation) {
  eval::ChaosOptions chaos;
  chaos.eval.num_cases = 3;
  chaos.eval.seed = 7;
  chaos.eval.case_options = SmallCase(workload::AnomalyType::kRowLock);
  chaos.severities = {0.0};

  const std::vector<eval::ChaosPoint> curve =
      eval::RunChaosEvaluation(chaos, core::DiagnoserOptions{});
  ASSERT_EQ(curve.size(), 1u);
  EXPECT_EQ(curve[0].injected.total(), 0u);
  EXPECT_EQ(curve[0].failed, 0u);

  const std::vector<eval::MethodScores> clean =
      eval::RunOverallEvaluation(chaos.eval, core::DiagnoserOptions{});
  EXPECT_EQ(curve[0].rsql.hits_at_1, clean[0].rsql.hits_at_1);
  EXPECT_EQ(curve[0].rsql.mrr, clean[0].rsql.mrr);
  EXPECT_EQ(curve[0].hsql.hits_at_1, clean[0].hsql.hits_at_1);
}

TEST(ChaosEvaluationTest, FleetModeMatchesSerial) {
  eval::ChaosOptions serial;
  serial.eval.num_cases = 3;
  serial.eval.seed = 13;
  serial.eval.case_options = SmallCase(workload::AnomalyType::kMdlLock);
  serial.eval.num_threads = 1;
  serial.severities = {0.3};
  eval::ChaosOptions fleet = serial;
  fleet.eval.num_threads = 4;

  const auto a = eval::RunChaosEvaluation(serial, core::DiagnoserOptions{});
  const auto b = eval::RunChaosEvaluation(fleet, core::DiagnoserOptions{});
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0].rsql.hits_at_1, b[0].rsql.hits_at_1);
  EXPECT_EQ(a[0].rsql.mrr, b[0].rsql.mrr);
  EXPECT_EQ(a[0].failed, b[0].failed);
  EXPECT_EQ(a[0].degraded, b[0].degraded);
  EXPECT_EQ(a[0].injected.ToString(), b[0].injected.ToString());
}

}  // namespace
}  // namespace pinsql
