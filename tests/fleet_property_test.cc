/// Property/fuzz suite for the fleet diagnosis scheduler: random trigger
/// streams over random pool sizes must preserve the priority-aging
/// invariants — conservation (nothing lost, nothing duplicated), the
/// concurrency bound, per-wave instance uniqueness, FIFO within equal
/// priority on one instance, and aging-bounded waits (no starvation).

#include <algorithm>
#include <atomic>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "fleet/fleet_scheduler.h"
#include "util/rng.h"

namespace pinsql::fleet {
namespace {

online::AnomalyTrigger MakeTrigger(uint32_t instance_id, int64_t trigger_sec,
                                   double severity) {
  online::AnomalyTrigger trigger;
  trigger.instance_id = instance_id;
  trigger.onset_sec = trigger_sec - 2;
  trigger.trigger_sec = trigger_sec;
  trigger.severity = severity;
  trigger.pettitt_p = 0.01;
  return trigger;
}

/// Stub runner: no real diagnosis, but it checks the concurrency bound
/// itself with its own atomics (independent of the scheduler's own
/// accounting) and records which seqs actually ran.
struct StubRunner {
  explicit StubRunner(size_t bound) : bound(bound) {}

  online::DiagnosisOutcome operator()(const QueuedTrigger& entry) {
    const int now = ++running;
    int high = high_water.load();
    while (now > high && !high_water.compare_exchange_weak(high, now)) {
    }
    online::DiagnosisOutcome outcome;
    outcome.trigger = entry.trigger;
    outcome.ok = true;
    --running;
    return outcome;
  }

  size_t bound;
  std::atomic<int> running{0};
  std::atomic<int> high_water{0};
};

class FleetSchedulerPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(FleetSchedulerPropertyTest, RandomStreamsPreserveInvariants) {
  Rng rng(GetParam());
  FleetSchedulerOptions options;
  options.pool_size = static_cast<size_t>(rng.UniformInt(1, 8));
  options.age_weight = rng.Bernoulli(0.75) ? rng.Uniform(0.01, 1.0) : 0.0;

  auto runner = std::make_shared<StubRunner>(options.pool_size);
  FleetScheduler scheduler(options,
                           [runner](const QueuedTrigger& entry) {
                             return (*runner)(entry);
                           });

  const int num_instances = static_cast<int>(rng.UniformInt(2, 10));
  const int64_t arrival_span = rng.UniformInt(20, 60);
  struct Expected {
    uint64_t seq;
    int64_t enqueue_sec;
    int64_t due_sec;
  };
  std::vector<Expected> expected;
  std::map<uint64_t, online::DiagnosisOutcome> completions;

  int64_t sec = 0;
  const auto tick = [&](int64_t now) {
    for (auto& [entry, outcome] : scheduler.Tick(now)) {
      ASSERT_TRUE(completions.emplace(entry.seq, outcome).second)
          << "seq " << entry.seq << " completed twice";
    }
  };
  for (; sec < arrival_span; ++sec) {
    const int64_t arrivals = rng.Poisson(2.0);
    for (int64_t k = 0; k < arrivals; ++k) {
      const auto trigger = MakeTrigger(
          static_cast<uint32_t>(rng.UniformInt(0, num_instances - 1)), sec,
          rng.Uniform(1.0, 10.0));
      const int64_t due = sec + rng.UniformInt(0, 5);
      const uint64_t seq =
          scheduler.Enqueue(trigger, sec, due, trigger.severity);
      expected.push_back({seq, sec, due});
    }
    tick(sec);
  }
  // Everything has arrived; keep ticking until the queue drains. One wave
  // per tick dispatches at least one due entry, so this terminates.
  const int64_t deadline = sec + static_cast<int64_t>(expected.size()) + 10;
  for (; scheduler.pending() > 0 && sec < deadline; ++sec) tick(sec);
  ASSERT_EQ(scheduler.pending(), 0u) << "queue failed to drain";

  // Conservation: every enqueued entry completed exactly once, dispatch
  // log covers exactly the enqueued seqs.
  const FleetSchedulerStats& stats = scheduler.stats();
  EXPECT_EQ(stats.enqueued, expected.size());
  EXPECT_EQ(stats.completed, expected.size());
  EXPECT_EQ(stats.extracted, 0u);
  ASSERT_EQ(completions.size(), expected.size());
  ASSERT_EQ(scheduler.dispatch_log().size(), expected.size());
  std::set<uint64_t> dispatched_seqs;
  for (const DispatchRecord& record : scheduler.dispatch_log()) {
    EXPECT_TRUE(dispatched_seqs.insert(record.entry.seq).second);
  }
  for (const Expected& entry : expected) {
    EXPECT_TRUE(completions.count(entry.seq));
    EXPECT_TRUE(dispatched_seqs.count(entry.seq));
  }

  // Concurrency bound, measured by the runner itself and by the scheduler.
  EXPECT_LE(runner->high_water.load(),
            static_cast<int>(options.pool_size));
  EXPECT_LE(stats.max_observed_concurrency, options.pool_size);
  EXPECT_EQ(runner->running.load(), 0);

  // Wave shape: group the dispatch log by (dispatch_sec): within one
  // wave, at most pool_size entries, no duplicate instance, wave_index
  // contiguous from 0, and no entry ran before it was due or enqueued.
  std::map<int64_t, std::vector<const DispatchRecord*>> waves;
  for (const DispatchRecord& record : scheduler.dispatch_log()) {
    EXPECT_GE(record.dispatch_sec, record.entry.due_sec);
    EXPECT_GE(record.dispatch_sec, record.entry.enqueue_sec);
    waves[record.dispatch_sec].push_back(&record);
  }
  for (auto& [wave_sec, records] : waves) {
    ASSERT_LE(records.size(), options.pool_size);
    std::set<uint32_t> wave_instances;
    std::set<size_t> wave_indices;
    for (const DispatchRecord* record : records) {
      EXPECT_TRUE(wave_instances.insert(record->entry.trigger.instance_id)
                      .second)
          << "two entries of instance " << record->entry.trigger.instance_id
          << " in the same wave (sec " << wave_sec << ")";
      wave_indices.insert(record->wave_index);
    }
    ASSERT_EQ(wave_indices.size(), records.size());
    EXPECT_EQ(*wave_indices.begin(), 0u);
    EXPECT_EQ(*wave_indices.rbegin(), records.size() - 1);
  }

  // FIFO within equal priority on one instance: for two same-instance
  // entries with equal base priority both due when the later one was
  // enqueued, the earlier seq never dispatches after the later one.
  std::map<uint64_t, const DispatchRecord*> by_seq;
  for (const DispatchRecord& record : scheduler.dispatch_log()) {
    by_seq[record.entry.seq] = &record;
  }
  for (const auto& [seq_a, a] : by_seq) {
    for (const auto& [seq_b, b] : by_seq) {
      if (seq_a >= seq_b) continue;
      if (a->entry.trigger.instance_id != b->entry.trigger.instance_id) {
        continue;
      }
      if (a->entry.base_priority != b->entry.base_priority) continue;
      if (a->entry.due_sec > b->entry.enqueue_sec) continue;
      EXPECT_LE(a->dispatch_sec, b->dispatch_sec)
          << "seq " << seq_a << " dispatched after younger equal-priority "
          << "same-instance seq " << seq_b;
    }
  }

  // Bounded wait: after its due second, no entry waits longer than the
  // whole backlog could take at one wave per second plus the arrival span.
  const int64_t wait_bound =
      arrival_span + static_cast<int64_t>(expected.size()) + 10;
  for (const DispatchRecord& record : scheduler.dispatch_log()) {
    EXPECT_LE(record.dispatch_sec -
                  std::max(record.entry.due_sec, record.entry.enqueue_sec),
              wait_bound);
  }
}

TEST_P(FleetSchedulerPropertyTest, ExtractPreservesConservation) {
  Rng rng(GetParam() ^ 0xE47ACULL);
  FleetSchedulerOptions options;
  options.pool_size = static_cast<size_t>(rng.UniformInt(1, 4));
  auto runner = std::make_shared<StubRunner>(options.pool_size);
  FleetScheduler scheduler(options,
                           [runner](const QueuedTrigger& entry) {
                             return (*runner)(entry);
                           });

  const size_t n = static_cast<size_t>(rng.UniformInt(10, 40));
  for (size_t k = 0; k < n; ++k) {
    const auto trigger =
        MakeTrigger(static_cast<uint32_t>(rng.UniformInt(0, 5)), 0,
                    rng.Uniform(1.0, 10.0));
    // Far-future due: nothing dispatches before the Extract below.
    scheduler.Enqueue(trigger, 0, 1000, trigger.severity);
  }
  ASSERT_TRUE(scheduler.Tick(1).empty());

  const std::vector<QueuedTrigger> extracted =
      scheduler.Extract([](const QueuedTrigger& entry) {
        return entry.trigger.instance_id % 2 == 0;
      });
  const std::vector<FleetScheduler::Completion> drained = scheduler.Drain(2);

  EXPECT_EQ(extracted.size() + drained.size(), n);
  EXPECT_EQ(scheduler.stats().extracted, extracted.size());
  EXPECT_EQ(scheduler.stats().completed, drained.size());
  EXPECT_EQ(scheduler.pending(), 0u);
  // Extracted seqs are strictly increasing (queue order preserved) and
  // never reached the pool.
  std::set<uint64_t> ran;
  for (const DispatchRecord& record : scheduler.dispatch_log()) {
    ran.insert(record.entry.seq);
  }
  for (size_t i = 0; i < extracted.size(); ++i) {
    if (i > 0) {
      EXPECT_GT(extracted[i].seq, extracted[i - 1].seq);
    }
    EXPECT_EQ(extracted[i].trigger.instance_id % 2, 0u);
    EXPECT_FALSE(ran.count(extracted[i].seq));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FleetSchedulerPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u));

/// Directed anti-starvation check: with aging on, a low-priority entry
/// overtakes a sustained stream of fresh high-priority arrivals within a
/// handful of waves; with aging off it waits out the entire stream.
TEST(FleetSchedulerAgingTest, AgingBoundsLowPriorityWait) {
  const auto run = [](double age_weight) {
    FleetSchedulerOptions options;
    options.pool_size = 1;
    options.age_weight = age_weight;
    FleetScheduler scheduler(options, [](const QueuedTrigger& entry) {
      online::DiagnosisOutcome outcome;
      outcome.trigger = entry.trigger;
      outcome.ok = true;
      return outcome;
    });
    const uint64_t low_seq =
        scheduler.Enqueue(MakeTrigger(0, 0, 1.0), 0, 0, 0.0);
    // One fresh high-priority trigger per second, from distinct instances,
    // for 50 seconds; the single-slot pool runs one entry per wave.
    for (int64_t sec = 0; sec < 50; ++sec) {
      const auto trigger =
          MakeTrigger(static_cast<uint32_t>(1 + sec), sec, 10.0);
      scheduler.Enqueue(trigger, sec, sec, 5.0);
      scheduler.Tick(sec);
    }
    scheduler.Drain(50);
    for (const DispatchRecord& record : scheduler.dispatch_log()) {
      if (record.entry.seq == low_seq) return record.dispatch_sec;
    }
    return int64_t{-1};
  };

  const int64_t with_aging = run(/*age_weight=*/1.0);
  const int64_t without_aging = run(/*age_weight=*/0.0);
  ASSERT_GE(with_aging, 0);
  ASSERT_GE(without_aging, 0);
  // base 0 + age t outranks base 5 + age (t - a) once a > 5.
  EXPECT_LE(with_aging, 10);
  EXPECT_GE(without_aging, 50);
}

}  // namespace
}  // namespace pinsql::fleet
